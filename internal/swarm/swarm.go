// Package swarm tracks per-video swarm membership, enforces the paper's
// maximal swarm growth bound (f(t+1) ≤ ⌈max{f(t),1}·µ⌉, Section 1.1), and
// maintains the per-video round-robin counters that balance preloading
// requests over stripes (Section 3).
package swarm

import (
	"fmt"
	"math"

	"repro/internal/video"
)

// Tracker follows swarm sizes across rounds. A box is a member of video
// v's swarm for exactly T rounds after entering.
type Tracker struct {
	mu      float64
	t       int // duration of membership (the video length T)
	m       int
	round   int
	sizes   []int   // current swarm size per video
	prev    []int   // swarm size at the end of the previous round
	entered []int   // entries already admitted this round
	counter []int64 // preload round-robin counter per video
	expiry  [][]int // per video, entry rounds of current members (FIFO)
}

// NewTracker creates a tracker for m videos of duration t rounds with
// growth bound mu ≥ 1.
func NewTracker(m, t int, mu float64) *Tracker {
	if m <= 0 || t <= 0 || mu < 1 {
		panic(fmt.Sprintf("swarm: invalid tracker m=%d t=%d µ=%v", m, t, mu))
	}
	return &Tracker{
		mu:      mu,
		t:       t,
		m:       m,
		sizes:   make([]int, m),
		prev:    make([]int, m),
		entered: make([]int, m),
		counter: make([]int64, m),
		expiry:  make([][]int, m),
	}
}

// BeginRound advances the tracker to the given round: it snapshots the
// previous sizes (the f(t) of the growth bound) and expires members whose
// T rounds have elapsed. Rounds must be strictly increasing.
func (tr *Tracker) BeginRound(round int) {
	if round <= tr.round && round != 0 {
		panic(fmt.Sprintf("swarm: BeginRound(%d) after round %d", round, tr.round))
	}
	tr.round = round
	for v := 0; v < tr.m; v++ {
		tr.prev[v] = tr.sizes[v]
		tr.entered[v] = 0
		q := tr.expiry[v]
		for len(q) > 0 && q[0]+tr.t <= round {
			q = q[1:]
			tr.sizes[v]--
		}
		tr.expiry[v] = q
	}
}

// Size returns the current swarm size of video v.
func (tr *Tracker) Size(v video.ID) int { return tr.sizes[v] }

// Allowance returns how many more boxes may enter v's swarm this round
// without violating the growth bound.
func (tr *Tracker) Allowance(v video.ID) int {
	f := tr.prev[v]
	base := f
	if base < 1 {
		base = 1
	}
	limit := int(math.Ceil(float64(base) * tr.mu))
	room := limit - tr.sizes[v]
	if room < 0 {
		return 0
	}
	return room
}

// Enter admits one box into v's swarm and returns the preload stripe index
// assigned by the round-robin counter (Section 3: the p-th box entering
// preloads stripe p mod c). It returns an error when the growth bound
// would be violated.
func (tr *Tracker) Enter(v video.ID, c int) (int, error) {
	if tr.Allowance(v) <= 0 {
		return 0, fmt.Errorf("swarm: growth bound µ=%v reached for video %d at round %d (size %d)",
			tr.mu, v, tr.round, tr.sizes[v])
	}
	idx := int(tr.counter[v] % int64(c))
	tr.counter[v]++
	tr.sizes[v]++
	tr.entered[v]++
	tr.expiry[v] = append(tr.expiry[v], tr.round)
	return idx, nil
}

// EnteredThisRound returns how many boxes entered v's swarm this round.
func (tr *Tracker) EnteredThisRound(v video.ID) int { return tr.entered[v] }

// Counter returns the total number of entries ever admitted to v's swarm.
func (tr *Tracker) Counter(v video.ID) int64 { return tr.counter[v] }

// ActiveSwarms returns the number of videos with a non-empty swarm.
func (tr *Tracker) ActiveSwarms() int {
	n := 0
	for _, s := range tr.sizes {
		if s > 0 {
			n++
		}
	}
	return n
}

// TotalViewers returns the total swarm membership over all videos.
func (tr *Tracker) TotalViewers() int {
	n := 0
	for _, s := range tr.sizes {
		n += s
	}
	return n
}

// MaxSize returns the largest current swarm size.
func (tr *Tracker) MaxSize() int {
	best := 0
	for _, s := range tr.sizes {
		if s > best {
			best = s
		}
	}
	return best
}
