package scenario

import (
	"strings"
	"testing"
)

// errCase is one malformed spec: the parser must fail and the message
// must carry every listed fragment (file:line positions included).
type errCase struct {
	name string
	text string
	want []string
}

func TestMalformedSpecs(t *testing.T) {
	cases := []errCase{
		{
			name: "unknown version",
			text: "scenario: 2\nname: x\nsystem:\n  boxes: 10\n  upload: 1.5\nphases:\n  - name: p\n    rounds: 5\n",
			want: []string{"bad.yaml:1", "unsupported format version 2"},
		},
		{
			name: "missing version",
			text: "name: x\nsystem:\n  boxes: 10\n  upload: 1.5\nphases:\n  - name: p\n    rounds: 5\n",
			want: []string{"spec.scenario", "missing format version"},
		},
		{
			name: "unknown top-level field",
			text: "scenario: 1\nname: x\nbogus: 3\nsystem:\n  boxes: 10\n  upload: 1.5\nphases:\n  - name: p\n    rounds: 5\n",
			want: []string{"bad.yaml:3", "spec.bogus", "unknown field"},
		},
		{
			name: "unknown nested field with line",
			text: "scenario: 1\nname: x\nsystem:\n  boxes: 10\n  upload: 1.5\n  warp: 9\nphases:\n  - name: p\n    rounds: 5\n",
			want: []string{"bad.yaml:6", "spec.system.warp"},
		},
		{
			name: "bad arrival process",
			text: "scenario: 1\nname: x\nsystem:\n  boxes: 10\n  upload: 1.5\nphases:\n  - name: p\n    rounds: 5\n    arrival:\n      process: warp\n",
			want: []string{"bad.yaml:10", "unknown process \"warp\""},
		},
		{
			name: "non-integer rounds",
			text: "scenario: 1\nname: x\nsystem:\n  boxes: 10\n  upload: 1.5\nphases:\n  - name: p\n    rounds: soon\n",
			want: []string{"bad.yaml:8", "expected an integer"},
		},
		{
			name: "rounds disagree with phase sum",
			text: "scenario: 1\nname: x\nrounds: 99\nsystem:\n  boxes: 10\n  upload: 1.5\nphases:\n  - name: p\n    rounds: 5\n",
			want: []string{"bad.yaml:3", "declared 99 but the phases sum to 5"},
		},
		{
			name: "outage region out of range",
			text: "scenario: 1\nname: x\nregions: 2\nsystem:\n  boxes: 10\n  upload: 1.5\nphases:\n  - name: p\n    rounds: 5\n    outage:\n      region: 2\n      down: 3\n",
			want: []string{"region 2 out of range [0,2)"},
		},
		{
			name: "tier fractions do not sum to 1",
			text: "scenario: 1\nname: x\nsystem:\n  boxes: 10\n  tiers:\n    - frac: 0.5\n      upload: 2\n      storage: 4\n    - frac: 0.3\n      upload: 1\n      storage: 2\nphases:\n  - name: p\n    rounds: 5\n",
			want: []string{"fractions must sum to 1"},
		},
		{
			name: "no phases",
			text: "scenario: 1\nname: x\nsystem:\n  boxes: 10\n  upload: 1.5\n",
			want: []string{"at least one phase is required"},
		},
		{
			name: "duplicate phase name",
			text: "scenario: 1\nname: x\nsystem:\n  boxes: 10\n  upload: 1.5\nphases:\n  - name: p\n    rounds: 5\n  - name: p\n    rounds: 5\n",
			want: []string{"duplicate phase name \"p\""},
		},
		{
			name: "tab indentation",
			text: "scenario: 1\nname: x\nsystem:\n\tboxes: 10\n",
			want: []string{"line 4", "tab"},
		},
		{
			name: "duplicate key",
			text: "scenario: 1\nname: x\nname: y\nsystem:\n  boxes: 10\n  upload: 1.5\nphases:\n  - name: p\n    rounds: 5\n",
			want: []string{"duplicate key"},
		},
		{
			name: "flow collection rejected",
			text: "scenario: 1\nname: x\nsystem: {boxes: 10}\nphases:\n  - name: p\n    rounds: 5\n",
			want: []string{"line 3"},
		},
		{
			name: "json unknown version",
			text: `{"scenario": 9, "name": "x", "system": {"boxes": 10, "upload": 1.5}, "phases": [{"name": "p", "rounds": 5}]}`,
			want: []string{"unsupported format version 9"},
		},
		{
			name: "json trailing garbage",
			text: `{"scenario": 1} {"again": true}`,
			want: []string{"trailing"},
		},
		{
			name: "multiple errors reported together",
			text: "scenario: 1\nname: x\nsystem:\n  boxes: -3\n  upload: 0\nphases:\n  - name: p\n    rounds: 0\n",
			want: []string{"spec.system.boxes", "spec.system.upload", "rounds", "must be positive"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.text), "bad.yaml")
			if err == nil {
				t.Fatal("parse accepted a malformed spec")
			}
			msg := err.Error()
			for _, frag := range tc.want {
				if !strings.Contains(msg, frag) {
					t.Errorf("error message missing %q:\n%s", frag, msg)
				}
			}
		})
	}
}

// TestParseValidYAMLAndJSON checks the two front-ends agree on an
// equivalent spec.
func TestParseValidYAMLAndJSON(t *testing.T) {
	yaml := "scenario: 1\nname: pair\nseed: 3\nsystem:\n  boxes: 50\n  upload: 1.5\nphases:\n  - name: p\n    rounds: 4\n    arrival:\n      process: poisson\n      rate: 2.5\n"
	json := `{"scenario": 1, "name": "pair", "seed": 3, "system": {"boxes": 50, "upload": 1.5}, "phases": [{"name": "p", "rounds": 4, "arrival": {"process": "poisson", "rate": 2.5}}]}`
	a, err := Parse([]byte(yaml), "a.yaml")
	if err != nil {
		t.Fatalf("yaml: %v", err)
	}
	b, err := Parse([]byte(json), "b.json")
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	ha, _ := Expand(a, 0)
	hb, _ := Expand(b, 0)
	if ha == nil || hb == nil {
		t.Fatal("expansion failed")
	}
	if CorpusHash(ha.Trace) != CorpusHash(hb.Trace) {
		t.Fatal("equivalent YAML and JSON specs expanded to different corpora")
	}
}
