package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0), …, fn(n-1) on a bounded worker pool and returns the
// first error encountered; once a call fails, no further indices are
// dispatched (in-flight calls finish). It is the shared backbone for the
// Monte-Carlo trial pools and the experiment/replica runners in the cmds.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// RunMany executes the given experiments concurrently on the options'
// worker pool and returns their results in input order. Experiments also
// parallelize their own Monte-Carlo trials over the same worker count, so
// peak goroutine count can reach workers², but trials are short-lived and
// CPU-bound, so the scheduler keeps effective parallelism at GOMAXPROCS.
func RunMany(o Options, exps []Experiment) []Result {
	results := make([]Result, len(exps))
	_ = ForEach(o.workers(), len(exps), func(i int) error {
		results[i] = exps[i].Run(o)
		return nil
	})
	return results
}

// errTrialFailed is parallelAll's internal "stop, a trial came back false"
// signal; it never escapes to callers.
var errTrialFailed = fmt.Errorf("experiments: trial failed")

// parallelAll runs fn(0..trials-1) on a bounded worker pool and reports
// whether every call returned true, failing fast on errors and false
// results. It is the Monte-Carlo backbone of the feasibility searches.
func parallelAll(workers, trials int, fn func(i int) (bool, error)) (bool, error) {
	// A real error must surface even when a plain false result wins the
	// ForEach first-error race, so track it separately.
	var (
		mu      sync.Mutex
		realErr error
	)
	err := ForEach(workers, trials, func(i int) error {
		ok, err := fn(i)
		if err != nil {
			err = fmt.Errorf("trial %d: %w", i, err)
			mu.Lock()
			if realErr == nil {
				realErr = err
			}
			mu.Unlock()
			return err
		}
		if !ok {
			return errTrialFailed
		}
		return nil
	})
	if realErr != nil {
		return false, realErr
	}
	if err == errTrialFailed {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// parallelCount runs fn over trials on the pool and returns how many
// returned true (Monte-Carlo frequency estimation).
func parallelCount(workers, trials int, fn func(i int) (bool, error)) (int, error) {
	var count atomic.Int64
	err := ForEach(workers, trials, func(i int) error {
		ok, err := fn(i)
		if err != nil {
			return fmt.Errorf("trial %d: %w", i, err)
		}
		if ok {
			count.Add(1)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return int(count.Load()), nil
}
