package analysis

import (
	"math"
)

// logBinomial returns ln C(n, k) via log-gamma, or -Inf for invalid args.
func logBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	ln2, _ := math.Lgamma(float64(k + 1))
	ln3, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - ln2 - ln3
}

// Lemma3LogBound returns ln of the Lemma 3 bound (p/n)^{k·i1}: the
// probability that the k·i1 replicas of i1 given distinct stripes all fall
// into p given boxes under a random permutation allocation.
func Lemma3LogBound(p, n, k, i1 int) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= n {
		return 0
	}
	return float64(k*i1) * math.Log(float64(p)/float64(n))
}

// Lemma4LogP returns ln P(σ) per Lemma 4 for a stripe multiset of size i
// with i1 distinct stripes:
//
//	P(σ) ≤ (u′nce/i)^i · (i/(u′cn))^{k·i1},  and P(σ) = 0 when i1 ≤ ν·i.
//
// A return of -Inf means the obstruction is combinatorially impossible
// (the Lemma 2 / preloading-strategy regime).
func Lemma4LogP(p HomogeneousParams, c, k, i, i1 int) float64 {
	nu := Nu(p.U, c, p.Mu)
	if float64(i1) <= nu*float64(i) {
		return math.Inf(-1)
	}
	uPrime := EffectiveUpload(p.U, c)
	unc := uPrime * float64(p.N) * float64(c)
	fi := float64(i)
	logP := fi*(math.Log(unc)+1-math.Log(fi)) + float64(k*i1)*(math.Log(fi)-math.Log(unc))
	return math.Min(logP, 0)
}

// UnionBoundCoarse evaluates the paper's single-sum obstruction bound from
// the Theorem 1 proof:
//
//	P(N_k > 0) ≤ Σ_{i=1}^{nc} (1−ν)·i·φ(i),   φ(i) = (i/(u′nc))^{κi}·δ^i,
//
// with κ = νk−2 and δ = 4d′e²/u′. The value is returned clamped to [0, 1]
// (a bound above 1 is vacuous but still reported as 1).
func UnionBoundCoarse(p HomogeneousParams, c, k int) float64 {
	nu := Nu(p.U, c, p.Mu)
	if nu <= 0 {
		return 1
	}
	uPrime := EffectiveUpload(p.U, c)
	if uPrime <= 0 {
		return 1
	}
	dPrime := DPrime(float64(p.D), p.U)
	kappa := nu*float64(k) - 2
	delta := 4 * dPrime * math.E * math.E / uPrime
	unc := uPrime * float64(p.N) * float64(c)
	nc := p.N * c

	total := 0.0
	logDelta := math.Log(delta)
	logUnc := math.Log(unc)
	for i := 1; i <= nc; i++ {
		fi := float64(i)
		logPhi := kappa*fi*(math.Log(fi)-logUnc) + fi*logDelta
		logTerm := math.Log(1-nu) + math.Log(fi) + logPhi
		if logTerm < -745 { // exp underflows to 0
			continue
		}
		total += math.Exp(logTerm)
		if total >= 1 {
			return 1
		}
	}
	return total
}

// UnionBoundExact evaluates the full double-sum first-moment bound from the
// Theorem 1 proof (Equation 1 with Lemma 4 and the multiset count
// M(i,i1) = C(mc, i1)·C(i−1, i1−1)):
//
//	P(N_k > 0) ≤ Σ_{i=1}^{nc} Σ_{i1=⌈νi⌉}^{min(i, mc)} M(i,i1)·(u′nce/i)^i·(i/(u′nc))^{k·i1}
//
// This is O((nc)²) work; callers should keep n·c below ~20000 (the harness
// uses it for the analytical curve in experiment E4). Clamped to [0, 1].
func UnionBoundExact(p HomogeneousParams, m, c, k int) float64 {
	nu := Nu(p.U, c, p.Mu)
	if nu <= 0 {
		return 1
	}
	uPrime := EffectiveUpload(p.U, c)
	if uPrime <= 0 {
		return 1
	}
	unc := uPrime * float64(p.N) * float64(c)
	logUnc := math.Log(unc)
	nc := p.N * c
	mc := m * c

	total := 0.0
	for i := 1; i <= nc; i++ {
		fi := float64(i)
		logBase := fi * (logUnc + 1 - math.Log(fi)) // ln (u′nce/i)^i
		logRatio := math.Log(fi) - logUnc           // ln (i/(u′nc)) < 0 for i < u′nc
		lo := int(math.Ceil(nu * fi))
		if lo < 1 {
			lo = 1
		}
		hi := i
		if mc < hi {
			hi = mc
		}
		for i1 := lo; i1 <= hi; i1++ {
			logM := logBinomial(mc, i1) + logBinomial(i-1, i1-1)
			logTerm := logM + logBase + float64(k*i1)*logRatio
			if logTerm < -745 {
				// Terms decrease in i1 once logRatio < 0 dominates; keep
				// scanning (binomial term can grow first), but skip work.
				continue
			}
			total += math.Exp(logTerm)
			if total >= 1 {
				return 1
			}
		}
	}
	return total
}

// KForTargetProbability returns the smallest k whose coarse union bound is
// at most target. It searches upward from 1 and gives up at maxK.
func KForTargetProbability(p HomogeneousParams, c int, target float64, maxK int) (int, bool) {
	for k := 1; k <= maxK; k++ {
		if UnionBoundCoarse(p, c, k) <= target {
			return k, true
		}
	}
	return 0, false
}
