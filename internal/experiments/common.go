package experiments

import (
	"repro/internal/adversary"
	"repro/internal/allocation"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/stats"
	"repro/internal/video"
)

// mixSeed derives a trial seed by hashing the master seed with the trial
// coordinates through a splitmix64 finalizer per word. Linear blends like
// seed + i·p + c collide whenever nearby coordinate pairs trade off
// against each other (e.g. (i, c) vs (i, c+p)); hashing makes every
// coordinate tuple an independent stream.
func mixSeed(seed uint64, words ...uint64) uint64 {
	h := seed
	for _, w := range words {
		h += 0x9e3779b97f4a7c15 ^ w
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// homParams describes a homogeneous simulation configuration.
type homParams struct {
	n, d, c, T int
	u, mu      float64
}

// buildHom constructs a homogeneous system with replication k, trimming
// storage so the catalog is the largest m with k·m·c ≤ n·d·c. It returns
// the system and the achieved catalog size. Experiments honoring
// Options.SerialAugment set cfg.SerialAugment in their tweak (see
// tweakFor).
func buildHom(seed uint64, p homParams, k int, tweak func(*core.Config)) (*core.System, int, error) {
	storage := make([]float64, p.n)
	for i := range storage {
		storage[i] = float64(p.d)
	}
	slots, m, err := hetero.AllocationSlots(storage, p.c, k)
	if err != nil {
		return nil, 0, err
	}
	cat, err := video.NewCatalog(m, p.c, p.T)
	if err != nil {
		return nil, 0, err
	}
	alloc, err := allocation.Permutation(stats.NewRNG(seed), cat, slots, k)
	if err != nil {
		return nil, 0, err
	}
	uploads := make([]float64, p.n)
	for i := range uploads {
		uploads[i] = p.u
	}
	cfg := core.Config{Alloc: alloc, Uploads: uploads, Mu: p.mu}
	if tweak != nil {
		tweak(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, 0, err
	}
	return sys, m, nil
}

// tweakFor composes the Options-level config knobs (the SerialAugment
// matcher ablation and the sharded round engine) with an experiment's own
// tweak, so every builder call site honors the global flags with one
// wrapper.
func tweakFor(o Options, extra func(*core.Config)) func(*core.Config) {
	return func(cfg *core.Config) {
		cfg.SerialAugment = o.SerialAugment
		cfg.Shards = o.Shards
		if extra != nil {
			extra(cfg)
		}
	}
}

// namedGen pairs an adversary with a label for reports.
type namedGen struct {
	name string
	make func(seed uint64) core.Generator
}

// attackSuite returns the adversarial generators used by the feasibility
// searches. Each construction is fresh per run (generators carry state).
func attackSuite() []namedGen {
	return []namedGen{
		{"flash", func(uint64) core.Generator { return &adversary.FlashCrowd{Target: 0, Rotate: true} }},
		{"distinct", func(uint64) core.Generator { return &adversary.DistinctVideos{} }},
		{"weakest", func(uint64) core.Generator { return &adversary.WeakestVideos{} }},
		{"avoid", func(uint64) core.Generator { return &adversary.AvoidPossession{} }},
		{"churn", func(uint64) core.Generator { return &adversary.Churn{Period: 2, WaveSize: 8} }},
		{"zipf", func(seed uint64) core.Generator {
			return &adversary.Zipf{RNG: stats.NewRNG(seed ^ 0xa5c3), P: 0.5, S: 0.9}
		}},
	}
}

// survives reports whether the system serves the generator for `rounds`
// rounds without any obstruction.
func survives(sys *core.System, gen core.Generator, rounds int) (bool, error) {
	rep, err := sys.Run(gen, rounds)
	if err != nil {
		return false, err
	}
	return !rep.Failed, nil
}

// feasibleAtK tests replication factor k against the whole attack suite
// over `seeds` allocation seeds; any obstruction anywhere fails it. Trials
// run on a worker pool.
func feasibleAtK(o Options, p homParams, k, rounds, seeds int, tweak func(*core.Config)) (bool, error) {
	suite := attackSuite()
	type trial struct {
		seed uint64
		gen  namedGen
	}
	var trials []trial
	for s := 0; s < seeds; s++ {
		// One hashed seed per allocation replica: every generator in the
		// suite attacks the same allocation (by design), but nearby (s, k)
		// coordinates never share a stream.
		for _, g := range suite {
			trials = append(trials, trial{mixSeed(o.Seed, uint64(s), uint64(k)), g})
		}
	}
	ok, err := parallelAll(o.workers(), len(trials), func(i int) (bool, error) {
		tr := trials[i]
		sys, _, err := buildHom(tr.seed, p, k, tweakFor(o, tweak))
		if err != nil {
			return false, err
		}
		return survives(sys, tr.gen.make(tr.seed), rounds)
	})
	return ok, err
}

// maxFeasibleCatalog binary-searches the smallest surviving replication
// factor k (feasibility is monotone increasing in k) and returns the
// corresponding catalog size m = ⌊dn/k⌋, with 0 when even k = d·n fails.
func maxFeasibleCatalog(o Options, p homParams, rounds, seeds int, tweak func(*core.Config)) (int, int, error) {
	lo, hi := 1, p.d*p.n // k range; m(k=dn) = 1
	okHi, err := feasibleAtK(o, p, hi, rounds, seeds, tweak)
	if err != nil {
		return 0, 0, err
	}
	if !okHi {
		return 0, 0, nil
	}
	for lo < hi {
		mid := (lo + hi) / 2
		ok, err := feasibleAtK(o, p, mid, rounds, seeds, tweak)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	m := p.d * p.n / hi
	return m, hi, nil
}
