package maxflow

// Dinic implements Dinic's blocking-flow algorithm: O(V²E) in general,
// O(E·√V) on the unit-capacity bipartite networks produced by connection
// matching, which is why it is the default solver for the simulator.
//
// The struct retains its scratch buffers between calls, so reusing one
// Dinic value across rounds avoids per-round allocation.
type Dinic struct {
	level []int32
	iter  []int32
	queue []int32
}

// Name implements Solver.
func (d *Dinic) Name() string { return "dinic" }

// MaxFlow implements Solver. It may be called repeatedly on the same
// network as edges are added; each call augments the existing flow to a
// new maximum (warm start).
func (d *Dinic) MaxFlow(g *Network, source, sink int) int64 {
	if source == sink {
		return 0
	}
	n := g.numNodes
	if cap(d.level) < n {
		d.level = make([]int32, n)
		d.iter = make([]int32, n)
		d.queue = make([]int32, 0, n)
	}
	d.level = d.level[:n]
	d.iter = d.iter[:n]

	var total int64
	for d.bfs(g, source, sink) {
		for i := range d.iter {
			d.iter[i] = 0
		}
		for {
			f := d.dfs(g, int32(source), int32(sink), int64(1)<<62)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// bfs builds the level graph; returns false when the sink is unreachable.
func (d *Dinic) bfs(g *Network, source, sink int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	d.queue = d.queue[:0]
	d.level[source] = 0
	d.queue = append(d.queue, int32(source))
	for head := 0; head < len(d.queue); head++ {
		v := d.queue[head]
		for _, e := range g.adj[v] {
			if g.cap[e] <= 0 {
				continue
			}
			w := g.to[e]
			if d.level[w] < 0 {
				d.level[w] = d.level[v] + 1
				d.queue = append(d.queue, w)
			}
		}
	}
	return d.level[sink] >= 0
}

// dfs sends one blocking-flow augmenting path.
func (d *Dinic) dfs(g *Network, v, sink int32, f int64) int64 {
	if v == sink {
		return f
	}
	for ; d.iter[v] < int32(len(g.adj[v])); d.iter[v]++ {
		e := g.adj[v][d.iter[v]]
		w := g.to[e]
		if g.cap[e] <= 0 || d.level[w] != d.level[v]+1 {
			continue
		}
		limit := f
		if g.cap[e] < limit {
			limit = g.cap[e]
		}
		got := d.dfs(g, w, sink, limit)
		if got > 0 {
			g.cap[e] -= got
			g.cap[e^1] += got
			return got
		}
	}
	d.level[v] = -1 // dead end; prune
	return 0
}
