package core

// Event-driven matcher invalidation.
//
// The Revalidate sweep re-probes every assigned request each round even
// when nothing under it changed. But an assignment l→r can only lose its
// edge through three mechanisms, all of them observable:
//
//  1. a cache entry of (stripe(l), r) expires — the store logs an event;
//  2. a cache entry of (stripe(l), r) freezes (its backing request
//     retired) — the store logs an event, and from then on the frozen
//     copy stops growing while l keeps progressing, so the edge dies
//     after exactly bestFrozen−progress(l) more matched rounds — a
//     deadline this file tracks on a recheck ring;
//  3. a *live* entry stops advancing because its backing request
//     stalled — only possible in rounds with unmatched requests
//     (FailStall), after which the engine falls back to full sweeps
//     until a fully matched round lets it rebuild all certificates.
//
// Allocation-backed (stable) edges never decay and carry no certificate.
// The result is a fully output-sensitive invalidation phase: per-round
// cost tracks freeze/expiry volume and due rechecks, not the active set.
// Config.NaiveAvailability selects the retained Revalidate sweep, and the
// differential tests pin both paths to identical behavior.

// invalidateTargeted replaces the Revalidate sweep: it gathers the
// candidate assignments flagged by margin rechecks due this round and by
// the (stripe, box) freeze/expiry events the availability store recorded
// during this round's expire/retire phase, then batch-invalidates them.
// The batch runs in active-list order, which keeps the matcher's
// evolution bit-identical to the sweep's (see InvalidateBatch); each
// event contributes O(load(box)) candidates, bounded by slot capacity.
func (s *System) invalidateTargeted(adj adjacency) {
	bucket := s.round % len(s.recheckRing)
	due := s.recheckRing[bucket]
	s.recheckRing[bucket] = due[:0]
	cand := append(s.candScratch[:0], due...)
	s.availEvents = s.avail.drainEvents(s.availEvents[:0])
	for _, ev := range s.availEvents {
		for _, l := range s.matcher.AssignedLefts(int(ev.box)) {
			if s.reqStripe[l] == ev.stripe {
				cand = append(cand, l)
			}
		}
	}
	s.matcher.InvalidateBatch(adj, cand)
	// Survivors were touched by an event or due for a recheck: re-derive
	// their certificates (dropped or stale lefts no-op inside).
	prev := int32(-1)
	for _, l := range cand { // sorted and deduped by InvalidateBatch's ordering
		if l == prev {
			continue
		}
		prev = l
		s.scheduleCertificate(int(l))
	}
	s.candScratch = cand
}

// scheduleCertificate installs l's invalidation certificate — the round
// by which its current assignment could first lose its edge:
//
//   - allocation-backed edges are stable, no certificate;
//   - edges with a live serving entry decay only through freeze/expiry
//     events, which trigger targeted invalidation directly;
//   - frozen-only edges are overtaken when the requester's progress
//     reaches the best frozen progress, at least bestFrozen−need rounds
//     away (progress grows by at most one per round), so a recheck then
//     catches the death in the same round the sweep would.
func (s *System) scheduleCertificate(l int) {
	r := s.matcher.Server(l)
	if r < 0 {
		return
	}
	slot := int32(l)
	st := s.reqStripe[slot]
	if s.cfg.Alloc.Stores(r, st) {
		return
	}
	need := s.reqProgress[slot]
	hasLive, bestFrozen, ok := s.avail.margin(st, int32(r), need, s.reqProgress)
	switch {
	case !ok:
		// Already overtaken (the post-matching progress update legitimately
		// stales edges): drop it next round, exactly when a sweep would.
		s.scheduleRecheck(slot, 1)
	case hasLive:
		// Live margin: nothing to watch until an event fires.
	default:
		s.scheduleRecheck(slot, int(bestFrozen-need))
	}
}

// scheduleRecheck queues a margin recheck delta ≥ 1 rounds ahead. The
// ring has T+2 buckets and deltas never exceed T (frozen progress ≤ T),
// so a bucket is always drained before it can be reused.
func (s *System) scheduleRecheck(l int32, delta int) {
	bucket := (s.round + delta) % len(s.recheckRing)
	s.recheckRing[bucket] = append(s.recheckRing[bucket], l)
}

// refreshAssignmentCertificates runs after the progress update: it drains
// the matcher's assignment log and installs certificates for this round's
// new assignments. Rounds with unmatched requests (FailStall) leave live
// margins unreliable — stalled backing requests stop advancing while
// their downstream requesters may not — so the engine sweeps until the
// first fully matched round, then rebuilds every certificate at once.
func (s *System) refreshAssignmentCertificates(unmatched int) {
	s.assignedLog = s.matcher.DrainAssigned(s.assignedLog[:0])
	if unmatched > 0 {
		s.needSweep = true
		return
	}
	if s.needSweep {
		s.needSweep = false
		for _, slot := range s.activeList {
			s.scheduleCertificate(int(slot))
		}
		return
	}
	for _, l := range s.assignedLog {
		s.scheduleCertificate(int(l))
	}
}

// discardInvalidationBacklog clears this round's recheck bucket and the
// store's event log without acting on them: the full Revalidate sweep
// running this round supersedes the targeted work, and certificates are
// rebuilt wholesale when the sweep episode ends.
func (s *System) discardInvalidationBacklog() {
	bucket := s.round % len(s.recheckRing)
	s.recheckRing[bucket] = s.recheckRing[bucket][:0]
	s.availEvents = s.avail.drainEvents(s.availEvents[:0])
}
