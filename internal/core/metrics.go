package core

import (
	"repro/internal/stats"
)

// Obstruction summarizes a Hall-violator certificate in the paper's
// vocabulary: a request multiset X of size Requests touching
// DistinctStripes stripes whose server set B(X) has only Slots upload
// slots — fewer than the |X| slots the requests need (Lemma 1).
type Obstruction struct {
	Round           int
	Requests        int   // |X| (the i of Lemma 4)
	DistinctStripes int   // i1 of Lemma 4
	Boxes           int   // |B(X)|
	Slots           int64 // U_B(X) in slots (< Requests)
}

// RoundStats is one round of the optional trace.
type RoundStats struct {
	Round       int
	ActiveReqs  int
	Matched     int
	Unmatched   int
	Viewers     int
	ActiveSwarm int
	MaxSwarm    int
	Utilization float64
}

// runMetrics accumulates during a run.
type runMetrics struct {
	demands           int64
	admitted          int64
	rejectedBusy      int64
	rejectedSwarm     int64
	stalls            int64
	completedViewings int64
	failRound         int
	peakRequests      int
	obstructions      []Obstruction
	startupDelays     []float64
	utilSum           float64
	utilRounds        int64
	maxSwarmEver      int
	trace             []RoundStats

	// Request-mix accounting (validates the strategies' shapes).
	preloadReqs   int64 // preload requests issued
	postponedReqs int64 // postponed requests issued directly by the viewer
	relayedReqs   int64 // requests issued by a relay on a poor box's behalf
	skippedSelf   int64 // stripes skipped because the viewer already had them
}

func (m *runMetrics) init(n int) {
	m.failRound = -1
}

func (m *runMetrics) recordStartup(delay float64) {
	m.startupDelays = append(m.startupDelays, delay)
}

func (m *runMetrics) observeRound(s *System, res StepResult) {
	total := s.TotalSlots()
	util := 0.0
	if total > 0 {
		util = float64(res.Matched) / float64(total)
	}
	m.utilSum += util
	m.utilRounds++
	// Sizes only grow on swarm entry, so the tracker's running peak equals
	// the max over rounds of the end-of-round MaxSize sweep it replaces.
	if ms := s.tracker.MaxSizeEver(); ms > m.maxSwarmEver {
		m.maxSwarmEver = ms
	}
	if s.cfg.TraceRounds {
		m.trace = append(m.trace, RoundStats{
			Round:       res.Round,
			ActiveReqs:  s.activeReqs,
			Matched:     res.Matched,
			Unmatched:   res.Unmatched,
			Viewers:     s.tracker.TotalViewers(),
			ActiveSwarm: s.tracker.ActiveSwarms(),
			MaxSwarm:    s.tracker.MaxSize(),
			Utilization: util,
		})
	}
}

// Report aggregates a simulation run.
type Report struct {
	Rounds            int
	Failed            bool
	FailRound         int // -1 when the run never failed
	Obstructions      []Obstruction
	Stalls            int64 // unmatched request-rounds (FailStall mode)
	Demands           int64
	Admitted          int64
	RejectedBusy      int64
	RejectedSwarm     int64
	CompletedViewings int64
	PeakRequests      int
	MaxSwarm          int
	StartupDelay      stats.Summary
	MeanUtilization   float64
	Trace             []RoundStats

	// Request mix: how viewings decomposed into request kinds.
	PreloadRequests   int64
	PostponedRequests int64
	RelayedRequests   int64
	SkippedSelfServed int64
}

// Report snapshots the metrics accumulated so far.
func (s *System) Report() Report {
	m := &s.metrics
	util := 0.0
	if m.utilRounds > 0 {
		util = m.utilSum / float64(m.utilRounds)
	}
	return Report{
		Rounds:            s.round,
		Failed:            s.failed,
		FailRound:         m.failRound,
		Obstructions:      append([]Obstruction(nil), m.obstructions...),
		Stalls:            m.stalls,
		Demands:           m.demands,
		Admitted:          m.admitted,
		RejectedBusy:      m.rejectedBusy,
		RejectedSwarm:     m.rejectedSwarm,
		CompletedViewings: m.completedViewings,
		PeakRequests:      m.peakRequests,
		MaxSwarm:          m.maxSwarmEver,
		StartupDelay:      stats.Summarize(m.startupDelays),
		MeanUtilization:   util,
		Trace:             append([]RoundStats(nil), m.trace...),
		PreloadRequests:   m.preloadReqs,
		PostponedRequests: m.postponedReqs,
		RelayedRequests:   m.relayedReqs,
		SkippedSelfServed: m.skippedSelf,
	}
}
