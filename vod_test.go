package vod

import (
	"testing"
)

func TestNewHomogeneousDefaults(t *testing.T) {
	sys, err := New(Spec{Boxes: 30, Upload: 2.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cat := sys.Catalog()
	if cat.M <= 0 || cat.C <= 0 || cat.T != 100 {
		t.Fatalf("catalog defaults wrong: %v", cat)
	}
	rep, err := sys.Run(NewZipfWorkload(3, 0.3, 0.9), 150)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("default homogeneous run failed: %+v", rep.Obstructions)
	}
	if rep.CompletedViewings == 0 {
		t.Fatal("nothing completed")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{},                                 // no boxes
		{Boxes: 10},                        // no upload
		{Boxes: 10, Uploads: []float64{1}}, // wrong length
		{Boxes: 10, Upload: 1.5, Storages: []float64{1}}, // wrong length
		{Boxes: 10, Upload: 0.9},                         // below threshold, c underivable
	}
	for i, spec := range cases {
		if _, err := New(spec); err == nil {
			t.Errorf("spec case %d should fail", i)
		}
	}
}

func TestExplicitStripesBelowThreshold(t *testing.T) {
	// u < 1 is allowed when the caller fixes c explicitly (for
	// impossibility experiments).
	sys, err := New(Spec{Boxes: 10, Upload: 0.5, Stripes: 4, Storage: 1, Replicas: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(NewAvoidPossession(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("u=0.5 with m=10 catalog should be defeated")
	}
}

func TestResilientMode(t *testing.T) {
	sys, err := New(Spec{Boxes: 10, Upload: 0.5, Stripes: 4, Storage: 1, Replicas: 1,
		Resilient: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(NewAvoidPossession(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatal("resilient mode must not fail-stop")
	}
	if rep.Stalls == 0 {
		t.Fatal("expected stalls")
	}
}

func TestHeterogeneousRelayedSpec(t *testing.T) {
	pop := Bimodal(30, 0.7, 3.0, 0.5, 2.0)
	sys, err := New(Spec{
		Boxes:    30,
		Uploads:  pop.Uploads,
		Storages: pop.Storage,
		UStar:    1.5,
		Growth:   1.05,
		Duration: 40,
		Replicas: 3,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(NewPoorFirst(1.5), 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("relayed spec failed: %+v", rep.Obstructions)
	}
	if rep.CompletedViewings == 0 {
		t.Fatal("no completions")
	}
}

func TestSourcingOnlySpec(t *testing.T) {
	sys, err := New(Spec{Boxes: 48, Upload: 2.5, Storage: 2, Stripes: 4,
		Duration: 20, Growth: 1.5, SourcingOnly: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(NewFlashCrowd(0), 40)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("sourcing-only flash crowd should fail")
	}
}

func TestPlanFor(t *testing.T) {
	plan, err := PlanFor(10000, 1.5, 4, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.C <= 0 || plan.K <= 0 || plan.M <= 0 || plan.Bound <= 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	if _, err := PlanFor(100, 0.9, 4, 1.2); err == nil {
		t.Fatal("below-threshold plan should fail")
	}
}

func TestHeteroPlanFor(t *testing.T) {
	pop := Bimodal(1000, 0.7, 3.0, 0.5, 2.0)
	plan, err := HeteroPlanFor(pop, 1.5, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if plan.C <= 0 || plan.K <= 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	if !plan.NecessaryOK || !plan.Compensatable {
		t.Errorf("healthy population flagged: %+v", plan)
	}
}

func TestStepAndView(t *testing.T) {
	sys, err := New(Spec{Boxes: 12, Upload: 2.0, Duration: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Step(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Round != 1 {
		t.Fatalf("first round = %d, want 1", res.Round)
	}
	if sys.View().NumBoxes() != 12 {
		t.Fatal("view wrong")
	}
	if sys.Failed() {
		t.Fatal("fresh system failed")
	}
}

func TestTraceOption(t *testing.T) {
	sys, err := New(Spec{Boxes: 12, Upload: 2.0, Duration: 10, Trace: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(NewDistinctVideos(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) != 15 {
		t.Fatalf("trace length %d, want 15", len(rep.Trace))
	}
}

func TestAuditAllocation(t *testing.T) {
	// Generously provisioned: the audit must pass with margin above 1.
	healthy, err := New(Spec{Boxes: 40, Upload: 3.0, Storage: 2, Stripes: 4,
		Replicas: 8, Duration: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res := healthy.AuditAllocation(1, 60)
	if res.Probes == 0 {
		t.Fatal("no probes ran")
	}
	if res.Violations != 0 || res.Margin < 1 {
		t.Errorf("healthy system flagged: %+v", res)
	}
	// Starved: u=0.5 with k=1 must be flagged.
	starved, err := New(Spec{Boxes: 20, Upload: 0.5, Storage: 1, Stripes: 4,
		Replicas: 1, Duration: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res = starved.AuditAllocation(1, 60)
	if res.Violations == 0 || res.Margin >= 1 {
		t.Errorf("starved system passed: %+v", res)
	}
}

func TestWithRetryWrapping(t *testing.T) {
	sys, err := New(Spec{Boxes: 12, Upload: 2.0, Duration: 10, Growth: 1.0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	gen := WithRetry(NewZipfWorkload(5, 0.8, 1.0))
	rep, err := sys.Run(gen, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted == 0 {
		t.Fatal("nothing admitted through retry wrapper")
	}
}
