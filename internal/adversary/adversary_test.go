package adversary

import (
	"testing"

	"repro/internal/allocation"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/video"
)

func buildSystem(t *testing.T, seed uint64, n, d, c, T, k int, u, mu float64) *core.System {
	t.Helper()
	alloc, _, err := allocation.HomogeneousPermutation(stats.NewRNG(seed), n, d, c, T, k)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]float64, n)
	for i := range uploads {
		uploads[i] = u
	}
	sys, err := core.NewSystem(core.Config{
		Alloc: alloc, Uploads: uploads, Mu: mu, Paranoid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFlashCrowdRespectsGrowthBound(t *testing.T) {
	sys := buildSystem(t, 1, 30, 2, 4, 20, 4, 2.5, 1.5)
	gen := &FlashCrowd{Target: 0}
	rep, err := sys.Run(gen, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedSwarm != 0 {
		t.Errorf("flash crowd overflowed the allowance %d times", rep.RejectedSwarm)
	}
	if rep.MaxSwarm < 10 {
		t.Errorf("crowd never grew: max swarm %d", rep.MaxSwarm)
	}
}

func TestFlashCrowdRotation(t *testing.T) {
	sys := buildSystem(t, 2, 12, 2, 4, 6, 4, 2.5, 4)
	gen := &FlashCrowd{Target: 0, Rotate: true}
	rep, err := sys.Run(gen, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("rotation run failed: %+v", rep.Obstructions)
	}
	if gen.Target == 0 {
		t.Error("target never rotated over 60 rounds of short videos")
	}
}

func TestAvoidPossessionPicksUnstoredVideos(t *testing.T) {
	sys := buildSystem(t, 3, 12, 1, 4, 10, 1, 2.5, 2) // m = 12, each box stores ≤ 4 stripes
	gen := &AvoidPossession{}
	v := sys.View()
	demands := gen.Next(v, 0)
	if len(demands) == 0 {
		t.Fatal("no demands produced")
	}
	cat := v.Catalog()
	for _, d := range demands {
		for i := 0; i < cat.C; i++ {
			if v.Stores(d.Box, cat.Stripe(d.Video, i)) {
				t.Fatalf("box %d demanded stored video %d", d.Box, d.Video)
			}
		}
	}
}

func TestDistinctVideosSpreads(t *testing.T) {
	sys := buildSystem(t, 4, 12, 2, 4, 10, 4, 2.5, 2)
	gen := &DistinctVideos{}
	demands := gen.Next(sys.View(), 0)
	seen := map[video.ID]int{}
	for _, d := range demands {
		seen[d.Video]++
	}
	// Every demanded video should appear at most ⌈n/m⌉ = 2 times.
	for vid, count := range seen {
		if count > 2 {
			t.Errorf("video %d demanded %d times", vid, count)
		}
	}
	if len(seen) < 6 {
		t.Errorf("only %d distinct videos demanded", len(seen))
	}
}

func TestWeakestVideosRanksByCapacity(t *testing.T) {
	sys := buildSystem(t, 5, 20, 2, 4, 10, 4, 2.5, 2)
	gen := &WeakestVideos{}
	demands := gen.Next(sys.View(), 0)
	if len(demands) == 0 {
		t.Fatal("no demands")
	}
	if gen.ranked == nil || len(gen.ranked) != sys.Catalog().M {
		t.Fatalf("ranking missing: %v", gen.ranked)
	}
	// First demand must target the weakest-ranked video.
	if demands[0].Video != gen.ranked[0] {
		t.Errorf("first demand targets %d, want weakest %d", demands[0].Video, gen.ranked[0])
	}
}

func TestZipfGeneratesValidDemands(t *testing.T) {
	sys := buildSystem(t, 6, 20, 2, 4, 15, 4, 2.5, 1.5)
	gen := &Zipf{RNG: stats.NewRNG(9), P: 0.5, S: 1.0}
	rep, err := sys.Run(gen, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("zipf workload failed: %+v", rep.Obstructions)
	}
	if rep.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if rep.RejectedSwarm != 0 {
		t.Errorf("generator ignored allowances %d times", rep.RejectedSwarm)
	}
}

func TestPoissonGeneratesBoundedDemands(t *testing.T) {
	sys := buildSystem(t, 7, 20, 2, 4, 15, 4, 2.5, 1.5)
	gen := &Poisson{RNG: stats.NewRNG(11), Lambda: 3}
	rep, err := sys.Run(gen, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if rep.RejectedBusy != 0 {
		t.Errorf("poisson generator targeted busy boxes %d times", rep.RejectedBusy)
	}
}

func TestChurnWaves(t *testing.T) {
	sys := buildSystem(t, 8, 24, 2, 4, 12, 4, 2.5, 2)
	gen := &Churn{Period: 3, WaveSize: 2}
	rep, err := sys.Run(gen, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("churn failed: %+v", rep.Obstructions)
	}
	if rep.Admitted < 10 {
		t.Errorf("churn admitted only %d", rep.Admitted)
	}
	// Zero-period churn is inert.
	inert := &Churn{}
	if got := inert.Next(sys.View(), 0); got != nil {
		t.Error("zero-period churn emitted demands")
	}
}

func TestPoorFirstOrdersByUpload(t *testing.T) {
	// Heterogeneous system: poor boxes (u=0.5) must appear before rich
	// ones in the demand batch.
	n := 12
	alloc, _, err := allocation.HomogeneousPermutation(stats.NewRNG(13), n, 2, 4, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]float64, n)
	for i := range uploads {
		if i%3 == 0 {
			uploads[i] = 0.5
		} else {
			uploads[i] = 3.0
		}
	}
	sys, err := core.NewSystem(core.Config{Alloc: alloc, Uploads: uploads, Mu: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen := &PoorFirst{UStar: 1.5}
	demands := gen.Next(sys.View(), 1)
	if len(demands) == 0 {
		t.Fatal("no demands")
	}
	seenRich := false
	for _, d := range demands {
		if uploads[d.Box] >= 1.5 {
			seenRich = true
		} else if seenRich {
			t.Fatalf("poor box %d demanded after a rich box", d.Box)
		}
	}
	// Every demanded video must respect the batch allowance.
	counts := map[video.ID]int{}
	for _, d := range demands {
		counts[d.Video]++
	}
	for vid, c := range counts {
		if c > 8 { // ⌈1·µ⌉ = 8 for an empty swarm
			t.Errorf("video %d over-demanded: %d", vid, c)
		}
	}
}

// onceGen emits one demand at round 0 and nothing after.
type onceGen struct {
	d    core.Demand
	done bool
}

func (g *onceGen) Next(_ *core.View, round int) []core.Demand {
	if g.done {
		return nil
	}
	g.done = true
	return []core.Demand{g.d}
}

func TestRetryResubmitsWithBorn(t *testing.T) {
	// Fill video 0's swarm allowance so the wrapped demand is rejected at
	// round 0, then admitted later with Born preserved.
	sys := buildSystem(t, 9, 12, 2, 4, 10, 4, 2.5, 1.0) // µ=1: swarm of size 1 max
	seed := &onceGen{d: core.Demand{Box: 1, Video: 0}}
	retry := &Retry{Inner: seed}

	// Round 0: box 0 takes the only slot in video 0's swarm directly.
	first := &onceGen{d: core.Demand{Box: 0, Video: 0}}
	both := multiGen{first, retry}
	rep, err := sys.Run(both, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("run failed: %+v", rep.Obstructions)
	}
	// Both viewings must eventually complete; box 1 waited for the swarm
	// slot, so its startup delay exceeds the intrinsic 3.
	if rep.CompletedViewings != 2 {
		t.Fatalf("completed = %d, want 2", rep.CompletedViewings)
	}
	if rep.StartupDelay.Max <= 3 {
		t.Errorf("retry did not preserve Born: max delay %v", rep.StartupDelay.Max)
	}
}

// multiGen concatenates generators.
type multiGen []core.Generator

func (g multiGen) Next(v *core.View, round int) []core.Demand {
	var out []core.Demand
	for _, inner := range g {
		out = append(out, inner.Next(v, round)...)
	}
	return out
}

func TestAdversarySuiteAgainstSafeSystem(t *testing.T) {
	// With comfortable parameters every adversary should fail to break
	// the allocation (Theorem 1 regime, well above thresholds).
	gens := map[string]func() core.Generator{
		"flash":    func() core.Generator { return &FlashCrowd{Target: 0, Rotate: true} },
		"distinct": func() core.Generator { return &DistinctVideos{} },
		"weakest":  func() core.Generator { return &WeakestVideos{} },
		"churn":    func() core.Generator { return &Churn{Period: 2, WaveSize: 4} },
		"zipf":     func() core.Generator { return &Zipf{RNG: stats.NewRNG(31), P: 0.4, S: 0.8} },
	}
	for name, mk := range gens {
		sys := buildSystem(t, 10, 36, 2, 6, 18, 6, 3.0, 1.3)
		rep, err := sys.Run(mk(), 80)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Failed {
			t.Errorf("%s broke a comfortably-provisioned system at round %d: %+v",
				name, rep.FailRound, rep.Obstructions)
		}
	}
}
