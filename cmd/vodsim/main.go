// Command vodsim runs one configured video-on-demand simulation and prints
// the resulting report: admissions, completions, start-up delays, upload
// utilization, stalls, and any obstruction certificates.
//
// Examples:
//
//	vodsim -n 200 -u 1.5 -rounds 500                       # Zipf workload
//	vodsim -n 200 -u 2.5 -workload flash -rounds 200       # flash crowd
//	vodsim -n 100 -u 0.5 -c 4 -k 1 -workload avoid         # u<1 impossibility
//	vodsim -n 100 -hetero 0.3 -ustar 1.5 -workload poor    # relayed system
//	vodsim -n 200 -u 1.5 -trace -rounds 100                # per-round trace
//	vodsim -record workload.json …                         # record the demands
//	vodsim -replay workload.json …                         # replay a recording
//	vodsim -n 500 -u 1.5 -seeds 16 …                       # 16 replicas in parallel
//	vodsim -scenario spec.yaml                             # declarative scenario run
//	vodsim -scenario spec.yaml -golden want.txt            # …diffed against a golden
//	vodsim -scenario spec.yaml -seeds 8                    # seed sweep with aggregate summary
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	vod "repro"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	var (
		n          = flag.Int("n", 100, "number of boxes")
		u          = flag.Float64("u", 1.5, "normalized upload capacity (homogeneous)")
		d          = flag.Float64("d", 4, "storage per box in videos")
		c          = flag.Int("c", 0, "stripes per video (0 = derive from Theorem 1/2)")
		k          = flag.Int("k", 4, "replicas per stripe")
		duration   = flag.Int("T", 100, "video duration in rounds")
		mu         = flag.Float64("mu", 1.2, "maximal swarm growth per round")
		rounds     = flag.Int("rounds", 300, "rounds to simulate")
		seed       = flag.Uint64("seed", 1, "allocation / workload seed")
		workload   = flag.String("workload", "zipf", "zipf | flash | distinct | avoid | poor")
		load       = flag.Float64("load", 0.3, "zipf workload arrival probability")
		zipfS      = flag.Float64("zipf-s", 0.9, "zipf popularity exponent")
		heteroP    = flag.Float64("hetero", 0, "poor-box fraction (0 = homogeneous); poor u=0.5, rich u=3.0")
		uStar      = flag.Float64("ustar", 0, "deficiency threshold u* (activates relaying)")
		sourcing   = flag.Bool("sourcing-only", false, "disable cache serving (baseline)")
		resilient  = flag.Bool("resilient", false, "stall through obstructions instead of halting")
		roundTrace = flag.Bool("trace", false, "print per-round trace")
		recordPath = flag.String("record", "", "record the demand workload to this JSON file")
		replayPath = flag.String("replay", "", "replay a recorded workload instead of -workload")
		audit      = flag.Bool("audit", false, "run the sampled expansion audit on the allocation before simulating")
		seeds      = flag.Int("seeds", 1, "number of independent replicas (seed, seed+1, …) run on a worker pool")
		workers    = flag.Int("workers", 0, "replica worker pool size: concurrent independent replicas (0 = GOMAXPROCS); for parallelism inside one replica see -shards")
		shards     = flag.Int("shards", 0, "intra-run parallelism: shards per round engine (0 = serial engine); results are bit-identical at any shard count")
		scenPath   = flag.String("scenario", "", "run a declarative scenario spec (YAML/JSON) end to end: expand its corpus, replay it, print the golden summary")
		goldenPath = flag.String("golden", "", "with -scenario: compare the summary against this golden file and exit non-zero on drift")
	)
	flag.Parse()
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "vodsim: -shards %d is negative; use 0 for the serial engine or a positive shard count\n", *shards)
		os.Exit(1)
	}

	// -hetero installs the heterogeneous defaults, but an explicitly set
	// -mu must survive them: only flags the user did not pass are defaulted.
	// A -seed the user did not pass defers to a scenario spec's default.
	muSet, seedSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "mu":
			muSet = true
		case "seed":
			seedSet = true
		}
	})

	if *scenPath != "" {
		if *seeds > 1 {
			if *goldenPath != "" {
				fmt.Fprintln(os.Stderr, "vodsim: -golden compares a single run; it is incompatible with -seeds")
				os.Exit(1)
			}
			if err := runScenarioSeeds(*scenPath, *seed, seedSet, *seeds, *workers, *shards); err != nil {
				fmt.Fprintln(os.Stderr, "vodsim:", err)
				os.Exit(1)
			}
			return
		}
		if err := runScenario(*scenPath, *goldenPath, *seed, seedSet, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "vodsim:", err)
			os.Exit(1)
		}
		return
	}
	if *goldenPath != "" {
		fmt.Fprintln(os.Stderr, "vodsim: -golden requires -scenario")
		os.Exit(1)
	}

	mkSpec := func(allocSeed uint64) vod.Spec {
		spec := vod.Spec{
			Boxes:        *n,
			Upload:       *u,
			Storage:      *d,
			Stripes:      *c,
			Replicas:     *k,
			Duration:     *duration,
			Growth:       *mu,
			SourcingOnly: *sourcing,
			Resilient:    *resilient,
			Trace:        *roundTrace,
			Shards:       *shards,
			Seed:         allocSeed,
		}
		if *heteroP > 0 {
			pop := vod.Bimodal(*n, 1-*heteroP, 3.0, 0.5, 2.0)
			spec.Uploads = pop.Uploads
			spec.Storages = pop.Storage
			spec.UStar = *uStar
			if spec.UStar == 0 {
				spec.UStar = 1.5
			}
			if !muSet {
				spec.Growth = 1.05
			}
		}
		return spec
	}
	mkGen := func(genSeed uint64, uStar float64) (vod.Generator, bool) {
		switch *workload {
		case "zipf":
			return vod.WithRetry(vod.NewZipfWorkload(genSeed+1, *load, *zipfS)), true
		case "flash":
			return vod.NewFlashCrowd(0), true
		case "distinct":
			return vod.NewDistinctVideos(), true
		case "avoid":
			return vod.NewAvoidPossession(), true
		case "poor":
			return vod.NewPoorFirst(uStar), true
		default:
			return nil, false
		}
	}

	// Reject a bad workload name before any system is built (replays skip
	// the workload flag entirely).
	if *replayPath == "" {
		if _, ok := mkGen(*seed, 1.5); !ok {
			fmt.Fprintf(os.Stderr, "vodsim: unknown workload %q\n", *workload)
			os.Exit(1)
		}
	}

	if *seeds > 1 {
		if *recordPath != "" || *replayPath != "" || *roundTrace || *audit {
			fmt.Fprintln(os.Stderr, "vodsim: -seeds is incompatible with -record, -replay, -trace, and -audit")
			os.Exit(1)
		}
		if err := runReplicas(mkSpec, mkGen, *seed, *seeds, *workers, *rounds); err != nil {
			fmt.Fprintln(os.Stderr, "vodsim:", err)
			os.Exit(1)
		}
		return
	}

	spec := mkSpec(*seed)
	sys, err := vod.New(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodsim:", err)
		os.Exit(1)
	}
	cat := sys.Catalog()
	fmt.Printf("system: n=%d  catalog m=%d  c=%d stripes  T=%d rounds  k=%d  µ=%.2f\n",
		*n, cat.M, cat.C, cat.T, *k, spec.Growth)

	if *audit {
		res := sys.AuditAllocation(*seed^0xa0d17, 200)
		fmt.Printf("allocation audit: %d probes, %d sourcing-capacity violations, worst slots/requests margin %.3f\n",
			res.Probes, res.Violations, res.Margin)
		if res.Violations > 0 {
			fmt.Println("  note: static replica holders alone cannot absorb worst-case concurrent demand")
			fmt.Println("  (Lemma 1 applied to sourcing only); serving such bursts depends on swarming,")
			fmt.Println("  i.e. playback caches — which is the paper's point. Margin ≥ 1 would mean the")
			fmt.Println("  allocation survives even with caches disabled.")
		}
	}

	var gen vod.Generator
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vodsim:", err)
			os.Exit(1)
		}
		tr, err := trace.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vodsim:", err)
			os.Exit(1)
		}
		st := tr.Summarize()
		fmt.Printf("replaying %d demands over %d rounds (%d boxes, %d videos)\n",
			st.Events, st.Rounds, st.DistinctBoxes, st.DistinctVids)
		gen = trace.NewReplayer(tr)
	} else {
		var ok bool
		gen, ok = mkGen(*seed, spec.UStar)
		if !ok {
			fmt.Fprintf(os.Stderr, "vodsim: unknown workload %q\n", *workload)
			os.Exit(1)
		}
	}
	var recorder *trace.Recorder
	if *recordPath != "" {
		recorder = trace.NewRecorder(gen)
		recorder.Trace.Meta = fmt.Sprintf("vodsim -workload %s -seed %d", *workload, *seed)
		gen = recorder
	}

	rep, err := sys.Run(gen, *rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodsim:", err)
		os.Exit(1)
	}
	printReport(rep)

	if recorder != nil {
		f, err := os.Create(*recordPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vodsim:", err)
			os.Exit(1)
		}
		if err := recorder.Trace.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "vodsim:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nrecorded %d demands to %s\n", recorder.Trace.Len(), *recordPath)
	}
}

// runScenario expands a declarative scenario, replays its corpus through
// a fresh engine, and prints the stable golden summary. With a golden
// file it compares instead, failing on any drift — the CI scenario-smoke
// job runs exactly this.
func runScenario(path, golden string, seed uint64, seedSet bool, shards int) error {
	spec, err := scenario.ParseFile(path)
	if err != nil {
		return err
	}
	opt := scenario.RunOptions{Shards: shards}
	if seedSet {
		opt.Seed = seed
	}
	res, err := scenario.Run(spec, opt)
	if err != nil {
		return err
	}
	summary := res.GoldenSummary()
	if golden == "" {
		fmt.Print(summary)
		return nil
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		return err
	}
	if summary != string(want) {
		return fmt.Errorf("scenario %s drifted from golden %s:\n--- got ---\n%s--- want ---\n%s",
			spec.Name, golden, summary, want)
	}
	fmt.Printf("scenario %s matches golden %s\n", spec.Name, golden)
	return nil
}

// runScenarioSeeds runs a scenario under `seeds` consecutive seeds (base,
// base+1, …) on a worker pool and prints a per-seed outcome table plus the
// mean/min/max of every golden counter — a quick sensitivity read on how
// much of a scenario's golden summary is seed-luck versus configuration.
func runScenarioSeeds(path string, seed uint64, seedSet bool, seeds, workers, shards int) error {
	spec, err := scenario.ParseFile(path)
	if err != nil {
		return err
	}
	base := spec.Seed
	if seedSet {
		base = seed
	}
	results := make([]*scenario.Result, seeds)
	pool := workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	err = experiments.ForEach(pool, seeds, func(i int) error {
		res, err := scenario.Run(spec, scenario.RunOptions{Seed: base + uint64(i), Shards: shards})
		if err != nil {
			return fmt.Errorf("seed %d: %w", base+uint64(i), err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("scenario seed sweep: %s, %d seeds (%d…%d), boxes=%d rounds=%d\n",
		spec.Name, seeds, base, base+uint64(seeds)-1, results[0].Expanded.VodSpec.Boxes, spec.TotalRounds())
	tbl := report.New("per-seed outcomes", "seed", "admitted", "completed", "stalls", "obstructions", "util", "startup mean")
	for i, res := range results {
		rep := res.Report
		tbl.AddRowValues(int(base)+i, float64(rep.Admitted), float64(rep.CompletedViewings),
			float64(rep.Stalls), float64(len(rep.Obstructions)), rep.MeanUtilization, rep.StartupDelay.Mean)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}

	// Aggregate every counter of the golden summary across seeds.
	counters := []struct {
		name string
		get  func(rep vod.Report) float64
	}{
		{"demands", func(r vod.Report) float64 { return float64(r.Demands) }},
		{"admitted", func(r vod.Report) float64 { return float64(r.Admitted) }},
		{"rejected-busy", func(r vod.Report) float64 { return float64(r.RejectedBusy) }},
		{"rejected-swarm", func(r vod.Report) float64 { return float64(r.RejectedSwarm) }},
		{"completed", func(r vod.Report) float64 { return float64(r.CompletedViewings) }},
		{"stalls", func(r vod.Report) float64 { return float64(r.Stalls) }},
		{"obstructions", func(r vod.Report) float64 { return float64(len(r.Obstructions)) }},
		{"peak-requests", func(r vod.Report) float64 { return float64(r.PeakRequests) }},
		{"max-swarm", func(r vod.Report) float64 { return float64(r.MaxSwarm) }},
		{"mean-utilization", func(r vod.Report) float64 { return r.MeanUtilization }},
		{"startup-mean", func(r vod.Report) float64 { return r.StartupDelay.Mean }},
		{"startup-p99", func(r vod.Report) float64 { return r.StartupDelay.P99 }},
	}
	fmt.Println()
	agg := report.New("aggregate over seeds", "counter", "mean", "min", "max")
	for _, c := range counters {
		sum, min, max := 0.0, math.Inf(1), math.Inf(-1)
		for _, res := range results {
			v := c.get(res.Report)
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		agg.AddRowValues(c.name, sum/float64(seeds), min, max)
	}
	return agg.WriteText(os.Stdout)
}

// runReplicas runs `seeds` independent simulations (allocation and
// workload seeded seed, seed+1, …) on a worker pool and prints a per-seed
// outcome table plus aggregate statistics — a quick Monte-Carlo view of
// how robustly a configuration serves its workload.
func runReplicas(mkSpec func(uint64) vod.Spec, mkGen func(uint64, float64) (vod.Generator, bool), seed uint64, seeds, workers, rounds int) error {
	type outcome struct {
		rep vod.Report
		cat vod.Catalog
	}
	outcomes := make([]outcome, seeds)
	pool := workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	err := experiments.ForEach(pool, seeds, func(i int) error {
		s := seed + uint64(i)
		spec := mkSpec(s)
		sys, err := vod.New(spec)
		if err != nil {
			return fmt.Errorf("seed %d: %w", s, err)
		}
		gen, ok := mkGen(s, spec.UStar)
		if !ok {
			return fmt.Errorf("unknown workload") // unreachable: validated before dispatch
		}
		rep, err := sys.Run(gen, rounds)
		if err != nil {
			return fmt.Errorf("seed %d: %w", s, err)
		}
		outcomes[i] = outcome{rep: rep, cat: sys.Catalog()}
		return nil
	})
	if err != nil {
		return err
	}

	cat := outcomes[0].cat
	headSpec := mkSpec(seed)
	fmt.Printf("replicas: %d seeds (%d…%d), n=%d, catalog m=%d c=%d T=%d, µ=%.2f\n",
		seeds, seed, seed+uint64(seeds)-1, headSpec.Boxes, cat.M, cat.C, cat.T, headSpec.Growth)
	tbl := report.New("per-seed outcomes", "seed", "rounds", "admitted", "completed", "stalls", "util", "failed round")
	survived := 0
	var utilSum, completedSum float64
	for i, o := range outcomes {
		failRound := float64(o.rep.FailRound)
		if !o.rep.Failed {
			survived++
			failRound = -1
		}
		utilSum += o.rep.MeanUtilization
		completedSum += float64(o.rep.CompletedViewings)
		tbl.AddRowValues(int(seed)+i, o.rep.Rounds, float64(o.rep.Admitted),
			float64(o.rep.CompletedViewings), float64(o.rep.Stalls), o.rep.MeanUtilization, failRound)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nsurvived %d/%d replicas; mean utilization %.3f; mean completed viewings %.1f\n",
		survived, seeds, utilSum/float64(seeds), completedSum/float64(seeds))
	return nil
}

func printReport(rep vod.Report) {
	tbl := report.New("simulation report", "metric", "value")
	tbl.AddRowValues("rounds", rep.Rounds)
	tbl.AddRowValues("demands", float64(rep.Demands))
	tbl.AddRowValues("admitted", float64(rep.Admitted))
	tbl.AddRowValues("rejected (busy box)", float64(rep.RejectedBusy))
	tbl.AddRowValues("rejected (swarm growth)", float64(rep.RejectedSwarm))
	tbl.AddRowValues("completed viewings", float64(rep.CompletedViewings))
	tbl.AddRowValues("peak concurrent requests", rep.PeakRequests)
	tbl.AddRowValues("max swarm size", rep.MaxSwarm)
	tbl.AddRowValues("mean upload utilization", rep.MeanUtilization)
	tbl.AddRowValues("stall request-rounds", float64(rep.Stalls))
	tbl.AddRowValues("startup delay mean", rep.StartupDelay.Mean)
	tbl.AddRowValues("startup delay p99", rep.StartupDelay.P99)
	_ = tbl.WriteText(os.Stdout)

	if rep.Failed {
		fmt.Printf("\nFAILED at round %d — obstruction certificates (Lemma 1 Hall violators):\n", rep.FailRound)
	} else if len(rep.Obstructions) > 0 {
		fmt.Printf("\nobstructions encountered (resilient mode):\n")
	}
	if len(rep.Obstructions) > 0 {
		ob := report.New("", "round", "|X| requests", "distinct stripes", "|B(X)| boxes", "slots U_B(X)")
		limit := len(rep.Obstructions)
		if limit > 10 {
			limit = 10
		}
		for _, o := range rep.Obstructions[:limit] {
			ob.AddRowValues(o.Round, o.Requests, o.DistinctStripes, o.Boxes, float64(o.Slots))
		}
		_ = ob.WriteText(os.Stdout)
	}

	if len(rep.Trace) > 0 {
		fmt.Println()
		tr := report.New("per-round trace (last 20)", "round", "active", "matched", "unmatched", "viewers", "swarms", "util")
		start := len(rep.Trace) - 20
		if start < 0 {
			start = 0
		}
		for _, rs := range rep.Trace[start:] {
			tr.AddRowValues(rs.Round, rs.ActiveReqs, rs.Matched, rs.Unmatched, rs.Viewers, rs.ActiveSwarm, rs.Utilization)
		}
		_ = tr.WriteText(os.Stdout)
	}
}
