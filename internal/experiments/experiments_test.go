package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 42, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "T1"}
	if len(all) < len(want) {
		t.Fatalf("registry has %d experiments, want at least %d", len(all), len(want))
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown ID should fail")
	}
}

func TestRegistryOrdering(t *testing.T) {
	all := All()
	// E1 must come before E2 and E10 after E9; T1 last-ish.
	pos := map[string]int{}
	for i, e := range all {
		pos[e.ID] = i
	}
	if pos["E2"] < pos["E1"] || pos["E10"] < pos["E9"] {
		t.Errorf("ordering wrong: %v", pos)
	}
}

// runQuick runs an experiment in quick mode and sanity-checks the output.
func runQuick(t *testing.T, id string) Result {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(quickOpts())
	if res.ID != id {
		t.Fatalf("result ID %q, want %q", res.ID, id)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	text := res.Text()
	if strings.Contains(text, "error:") {
		t.Fatalf("%s reported errors:\n%s", id, text)
	}
	return res
}

func TestE1ThresholdShape(t *testing.T) {
	res := runQuick(t, "E1")
	fig := res.Figures[0]
	measured := fig.Series[0]
	// Catalog at the largest u must exceed catalog at the smallest u and
	// beat the d·c cap (threshold shape).
	first, last := measured.Y[0], measured.Y[measured.Len()-1]
	if !(last > first) {
		t.Errorf("no threshold shape: m(%v)=%v vs m(%v)=%v",
			measured.X[0], first, measured.X[measured.Len()-1], last)
	}
	dcCap := fig.Series[1].Y[0]
	if !(last > dcCap) {
		t.Errorf("u>1 catalog %v does not beat the u<1 cap %v", last, dcCap)
	}
	if first > dcCap {
		t.Errorf("u<1 catalog %v exceeds the theoretical cap %v", first, dcCap)
	}
}

func TestE2LinearityShape(t *testing.T) {
	res := runQuick(t, "E2")
	measured := res.Figures[0].Series[0]
	if measured.Len() < 2 {
		t.Fatal("too few points")
	}
	// m must grow with n, and m/n must stay within a factor 3 band.
	var ratios []float64
	for i := 0; i < measured.Len(); i++ {
		if i > 0 && measured.Y[i] < measured.Y[i-1] {
			t.Errorf("catalog shrank with n: %v", measured.Y)
		}
		ratios = append(ratios, measured.Y[i]/measured.X[i])
	}
	minR, maxR := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR > 3*minR {
		t.Errorf("m/n not roughly constant: %v", ratios)
	}
}

func TestE3MonotoneInU(t *testing.T) {
	res := runQuick(t, "E3")
	measured := res.Figures[0].Series[0]
	if measured.Y[measured.Len()-1] < measured.Y[0] {
		t.Errorf("catalog not growing in u: %v", measured.Y)
	}
}

func TestE4BoundDecreases(t *testing.T) {
	res := runQuick(t, "E4")
	emp := res.Figures[0].Series[0]
	// Highest-k defeat probability must not exceed lowest-k one.
	if emp.Y[emp.Len()-1] > emp.Y[0] {
		t.Errorf("defeat probability grew with k: %v", emp.Y)
	}
}

func TestE5CrossesThreshold(t *testing.T) {
	res := runQuick(t, "E5")
	fr := res.Figures[0].Series[0]
	// Failure rate at the largest c must be at most the smallest-c rate.
	if fr.Y[fr.Len()-1] > fr.Y[0] {
		t.Errorf("failure rate did not drop across the c threshold: %v", fr.Y)
	}
}

func TestE6ThresholdRow(t *testing.T) {
	res := runQuick(t, "E6")
	served := res.Figures[0].Series[0]
	// 0% poor must serve; 80% poor must not.
	if served.Y[0] != 1 {
		t.Errorf("homogeneous-rich row failed: %v", served.Y)
	}
	if served.Y[served.Len()-1] != 0 {
		t.Errorf("deficit-dominated row served: %v", served.Y)
	}
}

func TestE7DelayFloor(t *testing.T) {
	res := runQuick(t, "E7")
	mean := res.Figures[0].Series[0]
	for i := 0; i < mean.Len(); i++ {
		if mean.Y[i] < 3 {
			t.Errorf("mean delay %v below the intrinsic 3-round floor", mean.Y[i])
		}
	}
}

func TestE8PermutationExact(t *testing.T) {
	res := runQuick(t, "E8")
	tbl := res.Tables[0]
	for _, row := range tbl.Rows {
		if row[2] == "permutation" {
			if row[3] != "1" {
				t.Errorf("permutation max/mean = %q, want 1", row[3])
			}
			if row[4] != "0" {
				t.Errorf("permutation overflow = %q, want 0", row[4])
			}
		}
	}
}

func TestE9SwarmingDominates(t *testing.T) {
	res := runQuick(t, "E9")
	fig := res.Figures[0]
	sw, so := fig.Series[0], fig.Series[1]
	for i := 0; i < sw.Len() && i < so.Len(); i++ {
		if sw.Y[i] < so.Y[i] {
			t.Errorf("sourcing-only beat swarming at u=%v: %v < %v", sw.X[i], sw.Y[i], so.Y[i])
		}
	}
}

func TestE10CapIsSharp(t *testing.T) {
	res := runQuick(t, "E10")
	series := res.Figures[0].Series[0]
	for i := 0; i < series.Len(); i++ {
		m := series.X[i]
		if m > 8 && series.Y[i] != 1 {
			t.Errorf("m=%v above cap 8 was not defeated", m)
		}
	}
}

func TestE11GreedyGap(t *testing.T) {
	res := runQuick(t, "E11")
	tbl := res.Tables[0]
	for _, row := range tbl.Rows {
		if row[5] != "yes" {
			t.Errorf("solvers disagreed on instance %s", row[0])
		}
	}
}

func TestE12BothVariantsNearOptimal(t *testing.T) {
	res := runQuick(t, "E12")
	fig := res.Figures[0]
	for _, s := range fig.Series {
		for i := 0; i < s.Len(); i++ {
			if s.Y[i] < 0.5 {
				t.Errorf("%s fraction %v below the maximal-matching guarantee", s.Name, s.Y[i])
			}
		}
	}
}

func TestE13PreloadBeatsNaive(t *testing.T) {
	res := runQuick(t, "E13")
	fig := res.Figures[0]
	pre, nai := fig.Series[0], fig.Series[1]
	for i := 0; i < pre.Len() && i < nai.Len(); i++ {
		if pre.Y[i] > nai.Y[i] {
			t.Errorf("preload failure rate %v exceeds naive %v at µ=%v",
				pre.Y[i], nai.Y[i], pre.X[i])
		}
	}
	// At the largest µ the gap must be strict.
	last := pre.Len() - 1
	if !(nai.Y[last] > pre.Y[last]) {
		t.Errorf("no strict advantage at µ=%v: preload %v vs naive %v",
			pre.X[last], pre.Y[last], nai.Y[last])
	}
}

func TestE14AuditMarginGrows(t *testing.T) {
	res := runQuick(t, "E14")
	fig := res.Figures[0]
	margin := fig.Series[0]
	defeat := fig.Series[1]
	// The audit margin must grow with k and the defeat rate must not.
	if margin.Y[margin.Len()-1] < margin.Y[0] {
		t.Errorf("audit margin shrank with k: %v", margin.Y)
	}
	if defeat.Y[defeat.Len()-1] > defeat.Y[0] {
		t.Errorf("defeat rate grew with k: %v", defeat.Y)
	}
}

func TestE15AllPopulationsServed(t *testing.T) {
	res := runQuick(t, "E15")
	tbl := res.Tables[0]
	if len(tbl.Rows) != 3 {
		t.Fatalf("quick E15 should sweep 3 populations, got %d rows", len(tbl.Rows))
	}
	// Every population must serve the bounded workload without stalls
	// (last column) — the sweep measures cost, not feasibility.
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("population n=%s stalled: %v", row[0], row)
		}
	}
	// Wall-clock µs/round is machine-dependent; only check it was recorded.
	series := res.Figures[0].Series[0]
	for i := 0; i < series.Len(); i++ {
		if series.Y[i] <= 0 {
			t.Errorf("non-positive round cost at n=%v", series.X[i])
		}
	}
}

func TestE16ModesAgree(t *testing.T) {
	res := runQuick(t, "E16")
	tbl := res.Tables[0]
	if len(tbl.Rows) != 5 {
		t.Fatalf("E16 should sweep 5 utilization targets, got %d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// Columns: target, achieved batch, achieved serial, ..., stalls.
		// On stall-free rows the two modes' trajectories are observably
		// identical (both maximum every round), so achieved utilization
		// must agree exactly — the cardinality pin in table form.
		if row[len(row)-1] == "0" && row[1] != row[2] {
			t.Errorf("stall-free target %s: batch achieved %s != serial %s", row[0], row[1], row[2])
		}
	}
	// Wall-clock speedups are machine-dependent; only check they exist.
	series := res.Figures[0].Series[0]
	for i := 0; i < series.Len(); i++ {
		if series.Y[i] <= 0 {
			t.Errorf("non-positive speedup at target %v", series.X[i])
		}
	}
}

func TestT1PlannerRows(t *testing.T) {
	res := runQuick(t, "T1")
	if len(res.Tables) != 2 {
		t.Fatalf("planner should emit 2 tables, got %d", len(res.Tables))
	}
	if len(res.Tables[0].Rows) < 5 || len(res.Tables[1].Rows) < 3 {
		t.Errorf("planner tables too small: %d, %d",
			len(res.Tables[0].Rows), len(res.Tables[1].Rows))
	}
}

func TestResultTextRendering(t *testing.T) {
	res := runQuick(t, "T1")
	text := res.Text()
	for _, want := range []string{"T1", "claim:", "Theorem 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered text missing %q", want)
		}
	}
}

func TestParallelHelpers(t *testing.T) {
	ok, err := parallelAll(4, 100, func(i int) (bool, error) { return true, nil })
	if !ok || err != nil {
		t.Fatalf("parallelAll all-true: %v %v", ok, err)
	}
	ok, _ = parallelAll(4, 100, func(i int) (bool, error) { return i != 50, nil })
	if ok {
		t.Fatal("parallelAll should fail when one trial fails")
	}
	count, err := parallelCount(4, 100, func(i int) (bool, error) { return i%2 == 0, nil })
	if err != nil || count != 50 {
		t.Fatalf("parallelCount = %d, %v; want 50", count, err)
	}
	// Serial paths.
	ok, _ = parallelAll(1, 3, func(i int) (bool, error) { return true, nil })
	if !ok {
		t.Fatal("serial parallelAll failed")
	}
	count, _ = parallelCount(1, 3, func(i int) (bool, error) { return true, nil })
	if count != 3 {
		t.Fatal("serial parallelCount wrong")
	}
}
