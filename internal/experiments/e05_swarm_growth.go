package experiments

import (
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:   "E5",
		Name: "swarm-growth",
		Claim: "absorbing swarm growth µ needs stripe count c > (2µ²−1)/(u−1): " +
			"flash crowds break the system below the bound and are absorbed above it " +
			"(Theorem 1 condition, Lemma 2)",
		Run: runE5,
	})
}

func runE5(o Options) Result {
	// Full mode grew 16× over the seed population. The ceiling here is
	// genuine live work, not bookkeeping: a µ=3 crowd absorbs the whole
	// population within ~8 rounds, so live requests peak at n·c (70k at
	// n=1024, c=68) at ~80% slot utilization, where augmenting paths get
	// long — exactly the regime the matcher's blocking-flow batch phases
	// target (ablated in E5b below; E16 sweeps utilization directly). The
	// 10⁵–10⁶ population regime is E15's job, whose arrival rate (and
	// hence live work) is fixed independent of n.
	n := pick(o, 64, 1024)
	d, T := 2, 25
	u, mu := 1.25, 3.0
	// Theory's sufficient condition: c > (2µ²−1)/(u−1) = 68. Empirically
	// the crossover sits far below (the bound is loose); the shape to
	// check is failure-rate decreasing in c and zero at the theory bound.
	cs := pick(o, []int{2, 4, 12}, []int{2, 3, 4, 6, 8, 12, 16, 24, 48, 68})
	k := 2
	trials := pick(o, 4, 6)
	rounds := pick(o, 80, 100)

	fig := report.NewFigure("E5: flash-crowd failure rate vs stripe count", "c", "P(failure)")
	failRate := fig.AddSeries("flash-crowd failure rate")

	tbl := report.New("E5: stripe-count threshold for swarm growth µ = 3",
		"c", "ν", "failures/trials", "P(failure)", "max swarm seen")
	for _, c := range cs {
		p := homParams{n: n, d: d, c: c, T: T, u: u, mu: mu}
		var mu2 sync.Mutex
		maxSwarm := 0
		failures, err := parallelCount(o.workers(), trials, func(i int) (bool, error) {
			seed := mixSeed(o.Seed, uint64(i), uint64(c))
			sys, _, err := buildHom(seed, p, k, tweakFor(o, nil))
			if err != nil {
				return false, err
			}
			rep, err := sys.Run(&adversary.FlashCrowd{Target: 0, Rotate: true}, rounds)
			if err != nil {
				return false, err
			}
			mu2.Lock()
			if rep.MaxSwarm > maxSwarm {
				maxSwarm = rep.MaxSwarm
			}
			mu2.Unlock()
			return rep.Failed, nil
		})
		if err != nil {
			tbl.AddRow(report.Cell(c), "error: "+err.Error(), "", "", "")
			continue
		}
		rate := float64(failures) / float64(trials)
		failRate.Add(float64(c), rate)
		tbl.AddRowValues(c, analysis.Nu(u, c, mu), failures, rate, maxSwarm)
	}
	tbl.AddNote("n=%d d=%d k=%d u=%.2f µ=%.2f rounds=%d trials=%d; threshold c* = (2µ²−1)/(u−1) = %.1f",
		n, d, k, u, mu, rounds, trials, (2*mu*mu-1)/(u-1))
	tbl.AddNote("claim shape: failure rate high for c below c*, dropping toward 0 above it (ν > 0)")

	// E5b: matcher-mode ablation at the sweep's highest-utilization point
	// (largest c): the same flash-crowd trials, timed sequentially, once
	// with blocking-flow batch phases and once with the per-root serial
	// reference. Matching cardinality is identical every round (both are
	// maximum); only the wall-clock differs.
	cMax := cs[len(cs)-1]
	abl := report.New("E5b: matcher-mode ablation (flash crowd at c = max)",
		"matcher", "ms/round", "rounds", "failures/trials")
	pAbl := homParams{n: n, d: d, c: cMax, T: T, u: u, mu: mu}
	msByMode := map[bool]float64{}
	for _, serial := range []bool{false, true} {
		fails, totalRounds := 0, 0
		var elapsed time.Duration
		for i := 0; i < trials; i++ {
			// Same per-trial seeds as the main sweep: the ablation is paired
			// on identical allocations and crowds.
			seed := mixSeed(o.Seed, uint64(i), uint64(cMax))
			sys, _, err := buildHom(seed, pAbl, k, func(cfg *core.Config) {
				cfg.SerialAugment = serial
			})
			if err != nil {
				abl.AddRow(modeName(serial), "error: "+err.Error(), "", "")
				continue
			}
			start := time.Now()
			rep, err := sys.Run(&adversary.FlashCrowd{Target: 0, Rotate: true}, rounds)
			elapsed += time.Since(start)
			if err != nil {
				abl.AddRow(modeName(serial), "error: "+err.Error(), "", "")
				continue
			}
			totalRounds += rep.Rounds
			if rep.Failed {
				fails++
			}
		}
		ms := 0.0
		if totalRounds > 0 {
			ms = float64(elapsed.Microseconds()) / 1000 / float64(totalRounds)
		}
		msByMode[serial] = ms
		abl.AddRowValues(modeName(serial), ms, totalRounds, fails)
	}
	if msByMode[false] > 0 {
		abl.AddNote("serial/batch end-to-end speedup: %.2f× at c=%d (%d trials, sequential timing)",
			msByMode[true]/msByMode[false], cMax, trials)
	}
	abl.AddNote("wall-clock timings are indicative — run with -seq on a quiet machine for clean numbers")

	return Result{ID: "E5", Name: "swarm-growth", Claim: registry["E5"].Claim,
		Tables: []*report.Table{tbl, abl}, Figures: []*report.Figure{fig}}
}

// modeName labels a SerialAugment flag for report rows.
func modeName(serial bool) string {
	if serial {
		return "serial (per-root reference)"
	}
	return "batch (blocking-flow)"
}
