package bipartite

// Greedy computes a non-backtracking matching: each left node takes the
// first server with spare capacity and is never reassigned. It is the
// baseline against which the augmenting-path matcher's optimality is
// measured (experiment E11): greedy can strand requests that a maximum
// matching would serve, and the measured gap justifies the paper's
// max-flow formulation.
type Greedy struct {
	caps []int64
	load []int64
}

// NewGreedy creates a greedy matcher over the given slot capacities.
func NewGreedy(caps []int64) *Greedy {
	return &Greedy{caps: append([]int64(nil), caps...), load: make([]int64, len(caps))}
}

// Reset clears all loads.
func (g *Greedy) Reset() {
	for i := range g.load {
		g.load[i] = 0
	}
}

// Match assigns each left node in order; returns the chosen server per
// left (Unassigned where none had spare capacity) and the matched count.
func (g *Greedy) Match(adj Adjacency, lefts []int) ([]int, int) {
	out := make([]int, len(lefts))
	matched := 0
	for i, l := range lefts {
		out[i] = Unassigned
		adj.VisitServers(l, func(r int) bool {
			if g.load[r] < g.caps[r] {
				g.load[r]++
				out[i] = r
				matched++
				return false
			}
			return true
		})
	}
	return out, matched
}
