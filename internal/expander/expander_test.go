package expander

import (
	"testing"
	"testing/quick"

	"repro/internal/allocation"
	"repro/internal/analysis"
	"repro/internal/stats"
	"repro/internal/video"
)

func buildAlloc(t *testing.T, seed uint64, n, d, c, k int) *allocation.Allocation {
	t.Helper()
	a, _, err := allocation.HomogeneousPermutation(stats.NewRNG(seed), n, d, c, 10, k)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func slotsFor(n int, u float64, c int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = int64(analysis.UploadSlots(u, c))
	}
	return s
}

func TestHealthyAllocationPasses(t *testing.T) {
	// Generous capacity: every probe should clear the Hall bar.
	const n, d, c, k = 40, 2, 4, 8
	alloc := buildAlloc(t, 1, n, d, c, k)
	aud := New(alloc, slotsFor(n, 3.0, c))
	res := aud.Full(stats.NewRNG(2), 100, 10)
	if res.Violations != 0 {
		t.Fatalf("healthy allocation flagged %d violations; worst %+v",
			res.Violations, res.Worst)
	}
	if res.Probes < 100 {
		t.Fatalf("too few probes: %d", res.Probes)
	}
	if res.Worst.Ratio < 1 {
		t.Fatalf("worst ratio %v below 1 without violations", res.Worst.Ratio)
	}
}

func TestStarvedAllocationFlagged(t *testing.T) {
	// u = 0.5 and k = 1: a full-population demand on any video needs n·c
	// slots but each stripe has a single server with 2 slots. The video
	// probe must catch it.
	const n, d, c, k = 20, 1, 4, 1
	alloc := buildAlloc(t, 3, n, d, c, k)
	aud := New(alloc, slotsFor(n, 0.5, c))
	res := aud.AuditVideos()
	if res.Violations == 0 {
		t.Fatal("starved allocation passed the video audit")
	}
	if !res.Worst.Violated() || res.Worst.Ratio >= 1 {
		t.Fatalf("worst finding not a violation: %+v", res.Worst)
	}
}

func TestVideoAuditProbesEveryVideo(t *testing.T) {
	const n, d, c, k = 20, 2, 4, 4
	alloc := buildAlloc(t, 4, n, d, c, k)
	aud := New(alloc, slotsFor(n, 2.0, c))
	res := aud.AuditVideos()
	if res.Probes != alloc.Catalog().M {
		t.Fatalf("probed %d videos, want %d", res.Probes, alloc.Catalog().M)
	}
}

func TestRandomAuditRespectsMaxDistinct(t *testing.T) {
	const n, d, c, k = 20, 2, 4, 4
	alloc := buildAlloc(t, 5, n, d, c, k)
	aud := New(alloc, slotsFor(n, 2.0, c))
	res := aud.AuditRandom(stats.NewRNG(6), 50, 3)
	if res.Probes != 50 {
		t.Fatalf("probes = %d", res.Probes)
	}
	if len(res.Worst.Stripes) > 3 {
		t.Fatalf("probe exceeded maxDistinct: %d stripes", len(res.Worst.Stripes))
	}
}

func TestGreedyFindsWeakerSetsThanRandom(t *testing.T) {
	// On a tight allocation the greedy overlap search should find a ratio
	// no better (no higher) than random probing finds on average.
	const n, d, c, k = 30, 2, 4, 2
	alloc := buildAlloc(t, 7, n, d, c, k)
	aud := New(alloc, slotsFor(n, 1.2, c))
	random := aud.AuditRandom(stats.NewRNG(8), 60, 0)
	greedy := aud.AuditGreedy(stats.NewRNG(8), 10, 0)
	if greedy.Worst.Ratio > random.Worst.Ratio+0.25 {
		t.Fatalf("greedy (%.3f) much worse at finding weak sets than random (%.3f)",
			greedy.Worst.Ratio, random.Worst.Ratio)
	}
}

func TestFindingFields(t *testing.T) {
	const n, d, c, k = 10, 2, 2, 4
	alloc := buildAlloc(t, 9, n, d, c, k)
	aud := New(alloc, slotsFor(n, 2.0, c))
	cat := alloc.Catalog()
	f := aud.measure([]video.StripeID{cat.Stripe(0, 0)}, n)
	if f.Boxes == 0 || f.Slots == 0 || f.Requests != n {
		t.Fatalf("degenerate finding: %+v", f)
	}
	// Box count can't exceed replica count k.
	if f.Boxes > k {
		t.Fatalf("one stripe has %d server boxes > k=%d", f.Boxes, k)
	}
}

func TestRequestsClampedToSystemBound(t *testing.T) {
	const n, d, c, k = 10, 2, 2, 4
	alloc := buildAlloc(t, 10, n, d, c, k)
	aud := New(alloc, slotsFor(n, 2.0, c))
	cat := alloc.Catalog()
	var all []video.StripeID
	for s := 0; s < cat.NumStripes(); s++ {
		all = append(all, video.StripeID(s))
	}
	f := aud.measure(all, 1<<30)
	if f.Requests != n*c {
		t.Fatalf("requests %d not clamped to n·c = %d", f.Requests, n*c)
	}
}

// Property: audits never report a violation when capacity is globally
// abundant (slots per box ≥ n·c, so any B(σ) with ≥ 1 box suffices).
func TestQuickAbundantCapacityNeverViolates(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 8 + rng.Intn(16)
		alloc, _, err := allocation.HomogeneousPermutation(rng, n, 2, 2, 10, 2)
		if err != nil {
			return false
		}
		slots := make([]int64, n)
		for i := range slots {
			slots[i] = int64(n * 2) // one box alone can serve everything
		}
		aud := New(alloc, slots)
		res := aud.Full(stats.NewRNG(seed^1), 20, 4)
		return res.Violations == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: ratio is consistent with slots/requests on every worst
// finding.
func TestQuickRatioConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 8 + rng.Intn(16)
		alloc, _, err := allocation.HomogeneousPermutation(rng, n, 2, 2, 10, 2)
		if err != nil {
			return false
		}
		aud := New(alloc, slotsFor(n, 1.0+rng.Float64()*2, 2))
		res := aud.Full(stats.NewRNG(seed^2), 20, 4)
		w := res.Worst
		if w.Requests == 0 {
			return true
		}
		want := float64(w.Slots) / float64(w.Requests)
		return w.Ratio == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
