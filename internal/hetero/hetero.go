// Package hetero builds balanced heterogeneous video systems (paper
// Section 4): synthetic box-capacity profiles, the u*-upload-compensation
// assignment that reserves relay bandwidth on rich boxes for poor ones,
// and helpers that turn a capacity population into the inputs the core
// engine and allocation schemes need.
package hetero

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/stats"
)

// Population is a set of boxes with per-box capacities.
type Population struct {
	Uploads []float64 // u_b
	Storage []float64 // d_b in videos
}

// N returns the population size.
func (p Population) N() int { return len(p.Uploads) }

// AvgUpload returns the mean upload capacity.
func (p Population) AvgUpload() float64 {
	s := 0.0
	for _, u := range p.Uploads {
		s += u
	}
	return s / float64(len(p.Uploads))
}

// AvgStorage returns the mean storage capacity.
func (p Population) AvgStorage() float64 {
	s := 0.0
	for _, d := range p.Storage {
		s += d
	}
	return s / float64(len(p.Storage))
}

// Homogeneous builds n identical boxes.
func Homogeneous(n int, u, d float64) Population {
	us := make([]float64, n)
	ds := make([]float64, n)
	for i := range us {
		us[i] = u
		ds[i] = d
	}
	return Population{Uploads: us, Storage: ds}
}

// Bimodal builds a rich/poor mix: a fraction richFrac of boxes has upload
// uRich, the rest uPoor; storage is proportional (d_b = u_b·(d/u)), which
// makes the system proportionally heterogeneous and hence u*-storage-
// balanced for d/u ≥ 2 (Section 4).
func Bimodal(n int, richFrac, uRich, uPoor, storagePerUpload float64) Population {
	us := make([]float64, n)
	ds := make([]float64, n)
	rich := int(math.Round(richFrac * float64(n)))
	for i := range us {
		if i < rich {
			us[i] = uRich
		} else {
			us[i] = uPoor
		}
		ds[i] = us[i] * storagePerUpload
	}
	return Population{Uploads: us, Storage: ds}
}

// DSLMix models an ISP fleet: a mix of DSL tiers with uploads scaled by
// the video bitrate. tiers maps an upload value to its population weight;
// storage stays proportional.
func DSLMix(rng *stats.RNG, n int, tiers map[float64]float64, storagePerUpload float64) Population {
	values := make([]float64, 0, len(tiers))
	for v := range tiers {
		values = append(values, v)
	}
	sort.Float64s(values)
	weights := make([]float64, len(values))
	for i, v := range values {
		weights[i] = tiers[v]
	}
	us := make([]float64, n)
	ds := make([]float64, n)
	for i := range us {
		us[i] = values[rng.WeightedChoice(weights)]
		ds[i] = us[i] * storagePerUpload
	}
	return Population{Uploads: us, Storage: ds}
}

// PeerAssistedServer models the paper's "peer-assisted server"
// architecture: one box with very large upload (the server) plus n−1
// client boxes with upload uClient (possibly 0, i.e. pure clients).
// The server holds serverStorage videos; clients hold clientStorage.
func PeerAssistedServer(n int, serverUpload, serverStorage, uClient, clientStorage float64) Population {
	us := make([]float64, n)
	ds := make([]float64, n)
	us[0] = serverUpload
	ds[0] = serverStorage
	for i := 1; i < n; i++ {
		us[i] = uClient
		ds[i] = clientStorage
	}
	return Population{Uploads: us, Storage: ds}
}

// Compensate computes a u*-upload-compensation assignment (Section 4):
// every poor box b (u_b < u*) gets a relay r(b) with the reservation
// u*+1−2u_b, subject to the per-relay constraint
// u_a ≥ u* + Σ_{b: r(b)=a}(u*+1−2u_b). Poor boxes are placed in
// decreasing order of need onto the relay with the most spare capacity
// (best-fit-decreasing). Returns core-ready relay indices (NoRelay for
// rich boxes) or an error when no feasible assignment exists.
func Compensate(uploads []float64, uStar float64) ([]int, error) {
	if uStar <= 1 {
		return nil, fmt.Errorf("hetero: u*=%v must exceed 1", uStar)
	}
	n := len(uploads)
	relays := make([]int, n)
	type poorBox struct {
		idx  int
		need float64
	}
	var poor []poorBox
	spare := make(map[int]float64)
	for b, u := range uploads {
		relays[b] = core.NoRelay
		if u < uStar {
			poor = append(poor, poorBox{b, analysis.ReservationNeed(u, uStar)})
		} else {
			spare[b] = u - uStar
		}
	}
	if len(poor) == 0 {
		return relays, nil
	}
	if len(spare) == 0 {
		return nil, fmt.Errorf("hetero: no rich boxes (u ≥ u*=%v) to relay %d poor boxes", uStar, len(poor))
	}
	sort.Slice(poor, func(i, j int) bool { return poor[i].need > poor[j].need })
	for _, pb := range poor {
		best, bestSpare := -1, -1.0
		for a, sp := range spare {
			if sp >= pb.need && sp > bestSpare {
				best, bestSpare = a, sp
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("hetero: cannot compensate box %d (need %.3f): insufficient rich capacity", pb.idx, pb.need)
		}
		relays[pb.idx] = best
		spare[best] -= pb.need
	}
	return relays, nil
}

// RelayLoad summarizes a compensation assignment for reporting.
type RelayLoad struct {
	PoorBoxes     int
	RichBoxes     int
	Relays        int     // rich boxes actually used as relays
	MaxPerRelay   int     // largest number of poor boxes on one relay
	TotalReserved float64 // Σ (u*+1−2u_b)
}

// SummarizeRelays computes assignment statistics.
func SummarizeRelays(uploads []float64, relays []int, uStar float64) RelayLoad {
	var rl RelayLoad
	perRelay := make(map[int]int)
	for b, u := range uploads {
		if u < uStar {
			rl.PoorBoxes++
			rl.TotalReserved += analysis.ReservationNeed(u, uStar)
			if relays[b] != core.NoRelay {
				perRelay[relays[b]]++
			}
		} else {
			rl.RichBoxes++
		}
	}
	rl.Relays = len(perRelay)
	for _, c := range perRelay {
		if c > rl.MaxPerRelay {
			rl.MaxPerRelay = c
		}
	}
	return rl
}

// AllocationSlots converts per-box storage (in videos) into per-box
// replica slot counts for a c-stripe catalog replicated k times, choosing
// the largest catalog size m with k·m·c ≤ Σ slots and trimming the excess
// slots from the largest boxes so the permutation allocation is exact.
// Returns the slot vector and m.
func AllocationSlots(storage []float64, c, k int) ([]int, int, error) {
	if c <= 0 || k <= 0 {
		return nil, 0, fmt.Errorf("hetero: need positive c and k (got c=%d k=%d)", c, k)
	}
	slots := make([]int, len(storage))
	total := 0
	for b, d := range storage {
		if d < 0 {
			return nil, 0, fmt.Errorf("hetero: box %d has negative storage", b)
		}
		slots[b] = int(math.Floor(d*float64(c) + 1e-9))
		total += slots[b]
	}
	m := total / (k * c)
	if m == 0 {
		return nil, 0, fmt.Errorf("hetero: total storage %d slots cannot hold even one video at k=%d, c=%d", total, k, c)
	}
	excess := total - m*k*c
	// Trim excess one slot at a time from the currently largest box: keeps
	// the trim spread out and deterministic.
	for excess > 0 {
		big := 0
		for b := range slots {
			if slots[b] > slots[big] {
				big = b
			}
		}
		slots[big]--
		excess--
	}
	return slots, m, nil
}

// EffectiveStorageBalance reports whether the population is
// u*-storage-balanced, delegating to the analysis package.
func (p Population) EffectiveStorageBalance(uStar, mu float64) bool {
	return analysis.StorageBalanced(analysis.HeteroParams{
		Uploads: p.Uploads, Storage: p.Storage, UStar: uStar, Mu: mu, Duration: 1,
	})
}
