package experiments

import (
	"math"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:   "E7",
		Name: "startup-delay",
		Claim: "start-up delay is a constant number of rounds: 3 with the " +
			"preloading strategy (§3), and bounded (≤ 2×) for relayed poor boxes (§4); " +
			"queueing at the swarm-growth admission control adds the only variable part",
		Run: runE7,
	})
}

func runE7(o Options) Result {
	p := homParams{n: pick(o, 24, 60), d: 2, c: 4, T: pick(o, 16, 24), u: 2.0, mu: 1.2}
	k := 4
	rounds := pick(o, 60, 200)
	loads := pick(o, []float64{0.2, 0.8}, []float64{0.1, 0.3, 0.5, 0.7, 0.9})

	tbl := report.New("E7: start-up delay vs demand load (preload strategy)",
		"arrival prob", "demands", "mean delay", "p90", "p99", "max")
	fig := report.NewFigure("E7: start-up delay vs load", "arrival probability", "rounds")
	meanS := fig.AddSeries("mean")
	p99S := fig.AddSeries("p99")

	for _, load := range loads {
		sys, _, err := buildHom(o.Seed, p, k, tweakFor(o, func(cfg *core.Config) {
			cfg.Failure = core.FailStall
		}))
		if err != nil {
			tbl.AddRow(report.Cell(load), "error: "+err.Error(), "", "", "", "")
			continue
		}
		// Hashed per load so nearby arrival probabilities never share a
		// demand stream (the allocation seed stays fixed: every load is
		// measured on the same system).
		gen := &adversary.Retry{Inner: &adversary.Zipf{
			RNG: stats.NewRNG(mixSeed(o.Seed, 0xe7, math.Float64bits(load))), P: load, S: 0.9,
		}}
		rep, err := sys.Run(gen, rounds)
		if err != nil {
			tbl.AddRow(report.Cell(load), "error: "+err.Error(), "", "", "", "")
			continue
		}
		d := rep.StartupDelay
		meanS.Add(load, d.Mean)
		p99S.Add(load, d.P99)
		tbl.AddRowValues(load, d.N, d.Mean, d.P90, d.P99, d.Max)
	}
	tbl.AddNote("n=%d d=%d c=%d k=%d u=%.1f µ=%.2f rounds=%d; intrinsic delay is exactly 3, queueing adds the rest",
		p.n, p.d, p.c, k, p.u, p.mu, rounds)

	// Relayed-system delays: constant 4 (rich) and 6 (poor).
	relTbl := report.New("E7b: start-up delay in the relayed heterogeneous system",
		"population", "min", "max", "mean")
	pop := hetero.Bimodal(pick(o, 20, 40), 0.7, 3.0, 0.5, 2.0)
	if sys, _, err := buildHetero(mixSeed(o.Seed, 0xe7b), pop, 1.5, 1.05, 25, 3, pick(o, 25, 40), tweakFor(o, nil)); err == nil {
		gen := &adversary.PoorFirst{UStar: 1.5}
		if rep, runErr := sys.Run(gen, pick(o, 60, 120)); runErr == nil {
			d := rep.StartupDelay
			relTbl.AddRowValues("bimodal 30% poor", d.Min, d.Max, d.Mean)
		}
	}
	relTbl.AddNote("paper: relayed time scale doubles — rich boxes start in 4 rounds, poor boxes in 6 (≤ 2×3)")
	return Result{ID: "E7", Name: "startup-delay", Claim: registry["E7"].Claim,
		Tables: []*report.Table{tbl, relTbl}, Figures: []*report.Figure{fig}}
}
