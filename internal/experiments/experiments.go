// Package experiments implements the reproduction harness: one runner per
// experiment in the index of DESIGN.md (E1–E12, T1), each regenerating a
// table or figure series that validates a specific claim of the paper.
// The vodbench binary and the root-level benchmarks both drive this
// package; EXPERIMENTS.md records paper-claim vs. measured output.
package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/report"
)

// Options tunes an experiment run.
type Options struct {
	// Seed derives every random choice in the experiment; two runs with
	// equal Options produce identical output.
	Seed uint64
	// Quick shrinks population sizes, round counts, and Monte-Carlo trial
	// counts so the whole suite runs in seconds (used by tests and CI).
	Quick bool
	// Workers bounds the Monte-Carlo worker pool — how many *independent
	// trials* run concurrently; 0 means GOMAXPROCS. Orthogonal to Shards,
	// which parallelizes inside a single simulated system.
	Workers int
	// SerialAugment runs every simulated system on the matcher's retained
	// per-root augmentation reference instead of blocking-flow batch
	// phases (vodbench -serial-augment; ablations and A/B timing).
	SerialAugment bool
	// Shards runs every simulated system's round engine on this many
	// concurrent shards (vodbench -shards). Results are bit-identical at
	// any shard count, so this only trades Workers-level for intra-run
	// parallelism; 0 keeps the serial engine — experiments deliberately
	// do not inherit GOMAXPROCS here, so seeded runs stay single-threaded
	// (and trial-parallel) unless explicitly asked.
	Shards int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// pick returns quick during -short style runs and full otherwise.
func pick[T any](o Options, quick, full T) T {
	if o.Quick {
		return quick
	}
	return full
}

// Result is an experiment's rendered output.
type Result struct {
	ID      string
	Name    string
	Claim   string // the paper claim being validated
	Tables  []*report.Table
	Figures []*report.Figure
}

// Text renders the full result as aligned text.
func (r Result) Text() string {
	out := fmt.Sprintf("###### %s — %s\n       claim: %s\n\n", r.ID, r.Name, r.Claim)
	for _, t := range r.Tables {
		out += t.Text() + "\n"
	}
	for _, f := range r.Figures {
		out += f.Table().Text() + "\n"
	}
	return out
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Name  string
	Claim string
	Run   func(Options) Result
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate ID " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment ordered by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i].ID) < key(out[j].ID) })
	return out
}

// key orders E1..E12 numerically, then T1.
func key(id string) string {
	if len(id) >= 2 && (id[0] == 'E' || id[0] == 'T') && len(id) == 2 {
		return string(id[0]) + "0" + id[1:]
	}
	return id
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e, nil
}
