package experiments

import (
	"repro/internal/analysis"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:   "E3",
		Name: "catalog-vs-u",
		Claim: "the catalog lower bound scales as (u−1)²·log((u+1)/2)/u³ ~ (u−1)³ " +
			"near the threshold (Theorem 1, §5 conclusion)",
		Run: runE3,
	})
}

func runE3(o Options) Result {
	p := homParams{n: pick(o, 24, 48), d: 2, c: 4, T: pick(o, 16, 24), mu: 1.2}
	us := pick(o,
		[]float64{1.1, 1.5, 2.5},
		[]float64{1.05, 1.1, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0})
	rounds := pick(o, 40, 80)
	seeds := pick(o, 1, 3)

	fig := report.NewFigure("E3: catalog vs u above threshold", "u", "catalog size m")
	measured := fig.AddSeries("measured")
	shape := fig.AddSeries("(u−1)² log((u+1)/2)/u³ shape (normalized)")
	theoryM := fig.AddSeries("theory m = dn/k(Thm 1)")

	tbl := report.New("E3: catalog growth in u",
		"u", "max m", "k (search)", "k (Thm 1)", "m (Thm 1)", "bound shape")
	var bounds []float64
	for _, u := range us {
		p.u = u
		m, k, err := maxFeasibleCatalog(o, p, rounds, seeds, nil)
		if err != nil {
			tbl.AddRow(report.Cell(u), "error: "+err.Error(), "", "", "", "")
			continue
		}
		hp := analysis.HomogeneousParams{N: p.n, U: u, D: p.d, Mu: p.mu}
		bound := analysis.CatalogBound(hp)
		bounds = append(bounds, bound)
		measured.Add(u, float64(m))
		// Theorem 1's own k at the paper-recommended c (enormous constants).
		kTheory, mTheory := 0, 0
		if c, errc := analysis.RecommendedC(u, p.mu); errc == nil {
			if kt, errk := analysis.MinK(hp, c); errk == nil {
				kTheory = kt
				mTheory = analysis.CatalogSize(p.n, p.d, kt)
			}
		}
		theoryM.Add(u, float64(mTheory))
		tbl.AddRowValues(u, m, k, kTheory, mTheory, bound)
	}
	// Normalize the bound shape at the largest-u point, where the bound is
	// far from its (u−1)³ zero and the scaling is stable.
	if n := measured.Len(); n > 0 && len(bounds) == n && bounds[n-1] > 0 {
		scale := measured.Y[n-1] / bounds[n-1]
		for i := 0; i < n; i++ {
			shape.Add(measured.X[i], bounds[i]*scale)
		}
	}
	tbl.AddNote("n=%d d=%d c=%d µ=%.2f; the theorem's constants are intentionally loose — "+
		"the measured catalog exceeds dn/k(Thm 1) everywhere, but the growth *shape* in u matches the bound",
		p.n, p.d, p.c, p.mu)
	return Result{ID: "E3", Name: "catalog-vs-u", Claim: registry["E3"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
