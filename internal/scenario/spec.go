// Package scenario implements the declarative workload subsystem: a
// versioned spec format that composes named phases — arrival processes
// (Poisson, Bernoulli, flash crowds, diurnal modulation), churn storms,
// regional outages with reconnection surges, catalog growth, and Zipf
// popularity with drift — into reproducible scenarios, plus a corpus
// generator that expands a spec and a seed into a deterministic workload
// file in internal/trace's format. Generated corpora flow through the
// existing -record/-replay machinery, stream to vodserve over POST
// /demand, and drive vodbench's spec-driven runner; the committed
// reference scenarios under examples/scenarios/ pin golden summaries in
// tests and CI.
//
// The workload shapes follow the related literature: Zipf popularity with
// drift and flash crowds from Tan & Massoulié's content-placement
// analysis, and on-demand arrival patterns from the BitTorrent VoD
// peer-selection line of work (see PAPERS.md).
package scenario

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// Version is the spec format version this package reads and writes.
// Parsing rejects any other value: format evolution is explicit, never
// silent.
const Version = 1

// Spec is one validated scenario: a system section plus an ordered list
// of workload phases. Field comments double as the schema reference (the
// README "Scenarios" section renders the same information).
type Spec struct {
	// Name identifies the scenario (required; [a-z0-9-]).
	Name string
	// Description is free-form documentation, carried into summaries.
	Description string
	// Seed is the default seed when the caller does not override one.
	Seed uint64
	// Regions partitions boxes into this many contiguous equal-size
	// regions for correlated-outage phases (default 1).
	Regions int
	// BusySlack is how many rounds beyond the video duration T the corpus
	// generator's population model keeps a box marked busy after it emits
	// a demand for it (default 4). The engine is the ground truth for
	// admission; the slack makes the model conservative so generated
	// demands land on genuinely idle boxes even when startup postponement
	// stretches a viewing past T rounds.
	BusySlack int
	// System configures the simulated system the scenario targets.
	System System
	// Phases run in order; the scenario's total length is the sum of
	// phase rounds.
	Phases []Phase
}

// System is the spec's system section, translated to a vod.Spec by
// VodSpec. Zero values defer to the vod defaults.
type System struct {
	Boxes    int
	Upload   float64
	Storage  float64
	Stripes  int
	Replicas int
	Duration int
	Growth   float64
	// UStar activates the heterogeneous relay construction (Section 4).
	UStar float64
	// Tiers is an optional capacity heterogeneity profile: contiguous
	// box-id ranges with per-tier upload and storage. Fractions must sum
	// to 1; boxes are assigned to tiers in id order, remainder to the
	// last tier.
	Tiers []Tier
}

// Tier is one capacity class of a heterogeneity profile.
type Tier struct {
	Frac    float64
	Upload  float64
	Storage float64
}

// Phase is one named workload segment.
type Phase struct {
	Name   string
	Rounds int
	// Arrival is the phase's background arrival process (nil = none).
	Arrival *Arrival
	// Popularity maps arrivals to videos (nil = zipf s=0.9, no drift).
	Popularity *Popularity
	// Churn layers staggered fresh-video waves on top of arrivals.
	Churn *Churn
	// Outage takes one region dark and surges it back online.
	Outage *Outage
	// Catalog restricts the demandable video window, growing over the
	// phase (nil = the full catalog).
	Catalog *Catalog
}

// Arrival configures a phase's arrival process.
type Arrival struct {
	// Process is one of "poisson" (Rate demands/round), "bernoulli"
	// (each idle box demands with probability P per round), "flash"
	// (flood the current hottest video at the maximal admissible growth
	// rate, up to Size demands for the phase; 0 = unbounded), or "none".
	Process string
	Rate    float64
	P       float64
	Size    int
	// Diurnal modulates Rate/P by 1 + Amplitude·sin(2π·t/Period).
	Diurnal *Diurnal
}

// Diurnal is a sinusoidal arrival modulation (a day/night cycle).
type Diurnal struct {
	Period    int
	Amplitude float64
}

// Popularity configures video selection.
type Popularity struct {
	// Model is "zipf" (exponent S) or "uniform".
	Model string
	S     float64
	// Drift rotates the popularity ranking: the rank→video mapping
	// advances by Drift positions per round, so the hot set wanders
	// through the catalog (Zipf drift à la Tan & Massoulié).
	Drift float64
	// Newest anchors rank 0 at the newest video of the current catalog
	// window instead of video 0 (new releases are the hottest).
	Newest bool
}

// Churn configures staggered fresh-video waves: every Period rounds of
// the phase, Wave demands target a video the rotation has not used
// recently, maximizing playback-cache window turnover.
type Churn struct {
	Period int
	Wave   int
}

// Outage takes region Region (of the spec's Regions) offline for the
// first Down rounds of the phase — it emits no demands — then surges
// Surge reconnection demands from the region as fast as admission
// control admits.
type Outage struct {
	Region int
	Down   int
	Surge  int
}

// Catalog restricts demand to a growing prefix window of the catalog:
// at phase round t the window holds max(1, floor(Initial·M + Rate·t))
// videos, capped at M.
type Catalog struct {
	Initial float64
	Rate    float64
}

// TotalRounds returns the scenario length (sum of phase rounds).
func (s *Spec) TotalRounds() int {
	total := 0
	for _, p := range s.Phases {
		total += p.Rounds
	}
	return total
}

// PhaseAt returns the phase covering 1-based scenario round r and the
// phase-local 0-based round offset.
func (s *Spec) PhaseAt(r int) (*Phase, int) {
	t := r - 1
	for i := range s.Phases {
		if t < s.Phases[i].Rounds {
			return &s.Phases[i], t
		}
		t -= s.Phases[i].Rounds
	}
	return nil, 0
}

// ParseFile reads and validates a scenario spec from a YAML or JSON file.
func ParseFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data, path)
}

// Parse decodes and validates a scenario spec. filename is used in error
// messages only. Errors carry file:line and the field path; all field
// errors are reported, not just the first.
func Parse(data []byte, filename string) (*Spec, error) {
	root, err := parseTree(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %v", filename, err)
	}
	d := &decoder{file: filename}
	spec := d.spec(root)
	if len(d.errs) > 0 {
		const cap = 20
		errs := d.errs
		suffix := ""
		if len(errs) > cap {
			suffix = fmt.Sprintf("\n  … and %d more", len(errs)-cap)
			errs = errs[:cap]
		}
		return nil, fmt.Errorf("scenario: invalid spec:\n  %s%s", strings.Join(errs, "\n  "), suffix)
	}
	return spec, nil
}

// --- decoding ---

type decoder struct {
	file string
	errs []string
}

func (d *decoder) errf(line int, path, format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf("%s:%d: %s: %s", d.file, line, path, fmt.Sprintf(format, args...)))
}

// mapReader walks one mapping's fields, tracking which keys were
// consumed so unknown fields can be rejected with their own lines.
type mapReader struct {
	d    *decoder
	n    *node
	path string
	seen map[string]bool
}

func (d *decoder) mapAt(n *node, path string) *mapReader {
	if n.kind != mapNode {
		d.errf(n.line, path, "expected a mapping, got a %s", n.kind)
		return &mapReader{d: d, path: path, seen: map[string]bool{}}
	}
	return &mapReader{d: d, n: n, path: path, seen: map[string]bool{}}
}

func (m *mapReader) child(key string) *node {
	if m.n == nil {
		return nil
	}
	m.seen[key] = true
	return m.n.fields[key]
}

func (m *mapReader) has(key string) bool {
	if m.n == nil {
		return false
	}
	_, ok := m.n.fields[key]
	return ok
}

// finish rejects unknown keys, naming the nearest valid ones.
func (m *mapReader) finish(known ...string) {
	if m.n == nil {
		return
	}
	for _, k := range m.n.keys {
		if !m.seen[k] {
			m.d.errf(m.n.fields[k].line, m.path+"."+k,
				"unknown field (valid fields: %s)", strings.Join(known, ", "))
		}
	}
}

func (m *mapReader) scalar(key string) (*node, bool) {
	c := m.child(key)
	if c == nil {
		return nil, false
	}
	if c.kind != scalarNode {
		m.d.errf(c.line, m.path+"."+key, "expected a scalar, got a %s", c.kind)
		return nil, false
	}
	return c, true
}

func (m *mapReader) str(key, def string) string {
	c, ok := m.scalar(key)
	if !ok {
		return def
	}
	return c.scalar
}

func (m *mapReader) integer(key string, def int) int {
	c, ok := m.scalar(key)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(c.scalar)
	if err != nil {
		m.d.errf(c.line, m.path+"."+key, "expected an integer, got %q", c.scalar)
		return def
	}
	return v
}

func (m *mapReader) uinteger(key string, def uint64) uint64 {
	c, ok := m.scalar(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseUint(c.scalar, 10, 64)
	if err != nil {
		m.d.errf(c.line, m.path+"."+key, "expected a non-negative integer, got %q", c.scalar)
		return def
	}
	return v
}

func (m *mapReader) float(key string, def float64) float64 {
	c, ok := m.scalar(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(c.scalar, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		m.d.errf(c.line, m.path+"."+key, "expected a finite number, got %q", c.scalar)
		return def
	}
	return v
}

func (m *mapReader) boolean(key string, def bool) bool {
	c, ok := m.scalar(key)
	if !ok {
		return def
	}
	switch c.scalar {
	case "true":
		return true
	case "false":
		return false
	}
	m.d.errf(c.line, m.path+"."+key, "expected true or false, got %q", c.scalar)
	return def
}

// line returns the best line to blame for a field-level error.
func (m *mapReader) line(key string) int {
	if c := m.child(key); c != nil {
		return c.line
	}
	if m.n != nil {
		return m.n.line
	}
	return 1
}

func (d *decoder) spec(root *node) *Spec {
	m := d.mapAt(root, "spec")
	s := &Spec{}

	if !m.has("scenario") {
		d.errf(m.line("scenario"), "spec.scenario",
			"missing format version (this parser reads \"scenario: %d\")", Version)
	} else if v := m.integer("scenario", 0); v != Version {
		d.errf(m.line("scenario"), "spec.scenario",
			"unsupported format version %d (this parser reads version %d)", v, Version)
	}

	s.Name = m.str("name", "")
	if s.Name == "" {
		d.errf(m.line("name"), "spec.name", "required")
	} else if !validName(s.Name) {
		d.errf(m.line("name"), "spec.name", "%q must match [a-z0-9-]+", s.Name)
	}
	s.Description = m.str("description", "")
	s.Seed = m.uinteger("seed", 1)
	s.Regions = m.integer("regions", 1)
	if s.Regions < 1 {
		d.errf(m.line("regions"), "spec.regions", "must be ≥ 1, got %d", s.Regions)
	}
	s.BusySlack = m.integer("busy_slack", 4)
	if s.BusySlack < 0 {
		d.errf(m.line("busy_slack"), "spec.busy_slack", "must be ≥ 0, got %d", s.BusySlack)
	}

	if sys := m.child("system"); sys != nil {
		s.System = d.system(sys)
	} else {
		d.errf(m.line("system"), "spec.system", "required")
	}
	if s.System.Boxes > 0 && s.Regions > s.System.Boxes {
		d.errf(m.line("regions"), "spec.regions", "%d regions for %d boxes", s.Regions, s.System.Boxes)
	}

	if ph := m.child("phases"); ph != nil {
		if ph.kind != listNode {
			d.errf(ph.line, "spec.phases", "expected a list, got a %s", ph.kind)
		} else {
			names := map[string]int{}
			for i, item := range ph.items {
				p := d.phase(item, fmt.Sprintf("spec.phases[%d]", i), s)
				if prev, dup := names[p.Name]; dup && p.Name != "" {
					d.errf(item.line, fmt.Sprintf("spec.phases[%d].name", i),
						"duplicate phase name %q (also phases[%d])", p.Name, prev)
				}
				names[p.Name] = i
				s.Phases = append(s.Phases, p)
			}
		}
	}
	if len(s.Phases) == 0 {
		d.errf(m.line("phases"), "spec.phases", "at least one phase is required")
	}

	// An explicit rounds field must agree with the phase sum — it exists
	// only so readers can state the intended total and be checked.
	if m.has("rounds") {
		if r := m.integer("rounds", 0); r != s.TotalRounds() && len(s.Phases) > 0 {
			d.errf(m.line("rounds"), "spec.rounds",
				"declared %d but the phases sum to %d", r, s.TotalRounds())
		}
	}

	m.finish("scenario", "name", "description", "seed", "regions", "busy_slack", "rounds", "system", "phases")
	return s
}

func validName(s string) bool {
	for _, c := range s {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return len(s) > 0
}

func (d *decoder) system(n *node) System {
	m := d.mapAt(n, "spec.system")
	sys := System{
		Boxes:    m.integer("boxes", 0),
		Upload:   m.float("upload", 0),
		Storage:  m.float("storage", 0),
		Stripes:  m.integer("stripes", 0),
		Replicas: m.integer("replicas", 0),
		Duration: m.integer("duration", 0),
		Growth:   m.float("growth", 0),
		UStar:    m.float("ustar", 0),
	}
	if sys.Boxes <= 0 {
		d.errf(m.line("boxes"), "spec.system.boxes", "must be positive, got %d", sys.Boxes)
	}
	if tiers := m.child("tiers"); tiers != nil {
		if tiers.kind != listNode {
			d.errf(tiers.line, "spec.system.tiers", "expected a list, got a %s", tiers.kind)
		} else {
			sum := 0.0
			for i, item := range tiers.items {
				tm := d.mapAt(item, fmt.Sprintf("spec.system.tiers[%d]", i))
				t := Tier{
					Frac:    tm.float("frac", 0),
					Upload:  tm.float("upload", 0),
					Storage: tm.float("storage", 0),
				}
				if t.Frac <= 0 || t.Frac > 1 {
					d.errf(tm.line("frac"), tm.path+".frac", "must be in (0,1], got %v", t.Frac)
				}
				if t.Upload <= 0 {
					d.errf(tm.line("upload"), tm.path+".upload", "must be positive, got %v", t.Upload)
				}
				if t.Storage <= 0 {
					d.errf(tm.line("storage"), tm.path+".storage", "must be positive, got %v", t.Storage)
				}
				tm.finish("frac", "upload", "storage")
				sum += t.Frac
				sys.Tiers = append(sys.Tiers, t)
			}
			if len(sys.Tiers) > 0 && math.Abs(sum-1) > 1e-9 {
				d.errf(tiers.line, "spec.system.tiers", "fractions must sum to 1, got %v", sum)
			}
		}
	} else if sys.Upload <= 0 {
		d.errf(m.line("upload"), "spec.system.upload", "must be positive (or set tiers), got %v", sys.Upload)
	}
	m.finish("boxes", "upload", "storage", "stripes", "replicas", "duration", "growth", "ustar", "tiers")
	return sys
}

func (d *decoder) phase(n *node, path string, s *Spec) Phase {
	m := d.mapAt(n, path)
	p := Phase{
		Name:   m.str("name", ""),
		Rounds: m.integer("rounds", 0),
	}
	if p.Name == "" {
		d.errf(m.line("name"), path+".name", "required")
	} else if !validName(p.Name) {
		d.errf(m.line("name"), path+".name", "%q must match [a-z0-9-]+", p.Name)
	}
	if p.Rounds <= 0 {
		d.errf(m.line("rounds"), path+".rounds", "must be positive, got %d", p.Rounds)
	}
	if a := m.child("arrival"); a != nil {
		p.Arrival = d.arrival(a, path+".arrival")
	}
	if pop := m.child("popularity"); pop != nil {
		p.Popularity = d.popularity(pop, path+".popularity")
	}
	if c := m.child("churn"); c != nil {
		cm := d.mapAt(c, path+".churn")
		p.Churn = &Churn{Period: cm.integer("period", 0), Wave: cm.integer("wave", 0)}
		if p.Churn.Period <= 0 {
			d.errf(cm.line("period"), path+".churn.period", "must be positive, got %d", p.Churn.Period)
		}
		if p.Churn.Wave <= 0 {
			d.errf(cm.line("wave"), path+".churn.wave", "must be positive, got %d", p.Churn.Wave)
		}
		cm.finish("period", "wave")
	}
	if o := m.child("outage"); o != nil {
		om := d.mapAt(o, path+".outage")
		p.Outage = &Outage{
			Region: om.integer("region", 0),
			Down:   om.integer("down", 0),
			Surge:  om.integer("surge", 0),
		}
		if p.Outage.Region < 0 || p.Outage.Region >= s.Regions {
			d.errf(om.line("region"), path+".outage.region",
				"region %d out of range [0,%d) (set spec.regions)", p.Outage.Region, s.Regions)
		}
		if p.Outage.Down <= 0 || p.Outage.Down > p.Rounds {
			d.errf(om.line("down"), path+".outage.down",
				"must be in [1,%d] (the phase length), got %d", p.Rounds, p.Outage.Down)
		}
		if p.Outage.Surge < 0 {
			d.errf(om.line("surge"), path+".outage.surge", "must be ≥ 0, got %d", p.Outage.Surge)
		}
		om.finish("region", "down", "surge")
	}
	if c := m.child("catalog"); c != nil {
		cm := d.mapAt(c, path+".catalog")
		p.Catalog = &Catalog{Initial: cm.float("initial", 0), Rate: cm.float("rate", 0)}
		if p.Catalog.Initial < 0 || p.Catalog.Initial > 1 {
			d.errf(cm.line("initial"), path+".catalog.initial", "must be in [0,1], got %v", p.Catalog.Initial)
		}
		if p.Catalog.Rate < 0 {
			d.errf(cm.line("rate"), path+".catalog.rate", "must be ≥ 0, got %v", p.Catalog.Rate)
		}
		cm.finish("initial", "rate")
	}
	m.finish("name", "rounds", "arrival", "popularity", "churn", "outage", "catalog")
	return p
}

func (d *decoder) arrival(n *node, path string) *Arrival {
	m := d.mapAt(n, path)
	a := &Arrival{
		Process: m.str("process", ""),
		Rate:    m.float("rate", 0),
		P:       m.float("p", 0),
		Size:    m.integer("size", 0),
	}
	switch a.Process {
	case "poisson":
		if a.Rate <= 0 {
			d.errf(m.line("rate"), path+".rate", "poisson arrivals need a positive rate, got %v", a.Rate)
		}
	case "bernoulli":
		if a.P <= 0 || a.P > 1 {
			d.errf(m.line("p"), path+".p", "bernoulli arrivals need p in (0,1], got %v", a.P)
		}
	case "flash":
		if a.Size < 0 {
			d.errf(m.line("size"), path+".size", "must be ≥ 0 (0 = unbounded), got %d", a.Size)
		}
	case "none":
	default:
		d.errf(m.line("process"), path+".process",
			"unknown process %q (poisson, bernoulli, flash, none)", a.Process)
	}
	if di := m.child("diurnal"); di != nil {
		dm := d.mapAt(di, path+".diurnal")
		a.Diurnal = &Diurnal{Period: dm.integer("period", 0), Amplitude: dm.float("amplitude", 0)}
		if a.Diurnal.Period <= 1 {
			d.errf(dm.line("period"), path+".diurnal.period", "must be > 1, got %d", a.Diurnal.Period)
		}
		if a.Diurnal.Amplitude < 0 || a.Diurnal.Amplitude > 1 {
			d.errf(dm.line("amplitude"), path+".diurnal.amplitude", "must be in [0,1], got %v", a.Diurnal.Amplitude)
		}
		dm.finish("period", "amplitude")
	}
	m.finish("process", "rate", "p", "size", "diurnal")
	return a
}

func (d *decoder) popularity(n *node, path string) *Popularity {
	m := d.mapAt(n, path)
	p := &Popularity{
		Model:  m.str("model", "zipf"),
		S:      m.float("s", 0.9),
		Drift:  m.float("drift", 0),
		Newest: m.boolean("newest", false),
	}
	switch p.Model {
	case "zipf":
		if p.S < 0 {
			d.errf(m.line("s"), path+".s", "must be ≥ 0, got %v", p.S)
		}
	case "uniform":
	default:
		d.errf(m.line("model"), path+".model", "unknown model %q (zipf, uniform)", p.Model)
	}
	if p.Drift < 0 {
		d.errf(m.line("drift"), path+".drift", "must be ≥ 0, got %v", p.Drift)
	}
	m.finish("model", "s", "drift", "newest")
	return p
}

// PhaseNames returns the phase names in order (for summaries).
func (s *Spec) PhaseNames() []string {
	names := make([]string, len(s.Phases))
	for i, p := range s.Phases {
		names[i] = p.Name
	}
	return names
}
