package maxflow

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func allSolvers() []Solver {
	return []Solver{&Dinic{}, &EdmondsKarp{}, &PushRelabel{}}
}

func TestNewSolver(t *testing.T) {
	for _, name := range []string{"", "dinic", "ek", "edmonds-karp", "pushrelabel", "push-relabel"} {
		if _, err := NewSolver(name); err != nil {
			t.Errorf("NewSolver(%q): %v", name, err)
		}
	}
	if _, err := NewSolver("nope"); err == nil {
		t.Error("NewSolver(nope) should fail")
	}
}

// Classic small instance with known max flow 19.
func buildClassic() (*Network, int, int) {
	g := NewNetwork(6)
	s, t := 0, 5
	g.AddEdge(s, 1, 10)
	g.AddEdge(s, 2, 10)
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 3, 4)
	g.AddEdge(1, 4, 8)
	g.AddEdge(2, 4, 9)
	g.AddEdge(4, 3, 6)
	g.AddEdge(3, t, 10)
	g.AddEdge(4, t, 10)
	return g, s, t
}

func TestClassicInstance(t *testing.T) {
	for _, solver := range allSolvers() {
		g, s, snk := buildClassic()
		if got := solver.MaxFlow(g, s, snk); got != 19 {
			t.Errorf("%s: flow = %d, want 19", solver.Name(), got)
		}
	}
}

func TestSourceEqualsSink(t *testing.T) {
	for _, solver := range allSolvers() {
		g := NewNetwork(2)
		g.AddEdge(0, 1, 5)
		if got := solver.MaxFlow(g, 0, 0); got != 0 {
			t.Errorf("%s: flow from node to itself = %d", solver.Name(), got)
		}
	}
}

func TestDisconnected(t *testing.T) {
	for _, solver := range allSolvers() {
		g := NewNetwork(4)
		g.AddEdge(0, 1, 5)
		g.AddEdge(2, 3, 5)
		if got := solver.MaxFlow(g, 0, 3); got != 0 {
			t.Errorf("%s: disconnected flow = %d", solver.Name(), got)
		}
	}
}

func TestZeroCapacityEdges(t *testing.T) {
	for _, solver := range allSolvers() {
		g := NewNetwork(3)
		g.AddEdge(0, 1, 0)
		g.AddEdge(1, 2, 7)
		if got := solver.MaxFlow(g, 0, 2); got != 0 {
			t.Errorf("%s: flow through zero edge = %d", solver.Name(), got)
		}
	}
}

func TestParallelEdges(t *testing.T) {
	for _, solver := range allSolvers() {
		g := NewNetwork(2)
		g.AddEdge(0, 1, 3)
		g.AddEdge(0, 1, 4)
		if got := solver.MaxFlow(g, 0, 1); got != 7 {
			t.Errorf("%s: parallel edges flow = %d, want 7", solver.Name(), got)
		}
	}
}

func TestAntiparallelEdges(t *testing.T) {
	for _, solver := range allSolvers() {
		g := NewNetwork(3)
		g.AddEdge(0, 1, 5)
		g.AddEdge(1, 0, 5)
		g.AddEdge(1, 2, 3)
		if got := solver.MaxFlow(g, 0, 2); got != 3 {
			t.Errorf("%s: antiparallel flow = %d, want 3", solver.Name(), got)
		}
	}
}

func TestFlowAccessors(t *testing.T) {
	g := NewNetwork(3)
	e0 := g.AddEdge(0, 1, 5)
	e1 := g.AddEdge(1, 2, 3)
	var d Dinic
	d.MaxFlow(g, 0, 2)
	if g.Flow(e0) != 3 || g.Flow(e1) != 3 {
		t.Errorf("flows = %d, %d, want 3, 3", g.Flow(e0), g.Flow(e1))
	}
	if g.Capacity(e0) != 5 {
		t.Errorf("capacity = %d, want 5", g.Capacity(e0))
	}
	from, to := g.EdgeEndpoints(e1)
	if from != 1 || to != 2 {
		t.Errorf("endpoints = (%d,%d), want (1,2)", from, to)
	}
	g.Reset()
	if g.Flow(e0) != 0 {
		t.Error("Reset did not clear flow")
	}
	if d.MaxFlow(g, 0, 2) != 3 {
		t.Error("flow after reset differs")
	}
}

func TestSetCapacity(t *testing.T) {
	g := NewNetwork(2)
	e := g.AddEdge(0, 1, 5)
	g.SetCapacity(e, 9)
	var d Dinic
	if got := d.MaxFlow(g, 0, 1); got != 9 {
		t.Errorf("flow after SetCapacity = %d, want 9", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetCapacity on flowing edge should panic")
		}
	}()
	g.SetCapacity(e, 1)
}

func TestWarmStartAugmentation(t *testing.T) {
	// Dinic and EK support adding edges after a solve and augmenting.
	for _, solver := range []Solver{&Dinic{}, &EdmondsKarp{}} {
		g := NewNetwork(4)
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 3, 1)
		if got := solver.MaxFlow(g, 0, 3); got != 1 {
			t.Fatalf("%s: initial flow = %d", solver.Name(), got)
		}
		g.AddEdge(0, 2, 2)
		g.AddEdge(2, 3, 2)
		if got := solver.MaxFlow(g, 0, 3); got != 2 {
			t.Errorf("%s: incremental flow = %d, want 2", solver.Name(), got)
		}
	}
}

func TestMinCutMatchesFlow(t *testing.T) {
	g, s, snk := buildClassic()
	var d Dinic
	flow := d.MaxFlow(g, s, snk)
	side := g.MinCutSourceSide(s)
	if !side[s] || side[snk] {
		t.Fatal("cut sides wrong")
	}
	// Cut capacity across the partition must equal the flow.
	var cut int64
	for id := 0; id < g.NumEdges(); id++ {
		from, to := g.EdgeEndpoints(2 * id)
		if side[from] && !side[to] {
			cut += g.Capacity(2 * id)
		}
	}
	if cut != flow {
		t.Errorf("cut capacity %d != flow %d", cut, flow)
	}
}

func TestOutFlowConservation(t *testing.T) {
	g, s, snk := buildClassic()
	var d Dinic
	flow := d.MaxFlow(g, s, snk)
	for v := 0; v < g.NumNodes(); v++ {
		out := g.OutFlow(v)
		switch v {
		case s:
			if out != flow {
				t.Errorf("source out-flow %d != %d", out, flow)
			}
		case snk:
			if out != -flow {
				t.Errorf("sink out-flow %d != %d", out, -flow)
			}
		default:
			if out != 0 {
				t.Errorf("node %d violates conservation: %d", v, out)
			}
		}
	}
}

// randomNetwork builds a random DAG-ish network for property tests.
func randomNetwork(rng *stats.RNG, n, edges int, maxCap int64) (*Network, int, int) {
	g := NewNetwork(n)
	for i := 0; i < edges; i++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		if from == to {
			continue
		}
		g.AddEdge(from, to, int64(rng.Intn(int(maxCap)+1)))
	}
	return g, 0, n - 1
}

// Property: all three solvers agree on random networks.
func TestQuickSolversAgree(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(12)
		g1, s, snk := randomNetwork(rng, n, 3*n, 10)
		// Clone the network for each solver via fresh construction.
		clone := func() *Network {
			c := NewNetwork(g1.NumNodes())
			for id := 0; id < g1.NumEdges(); id++ {
				from, to := g1.EdgeEndpoints(2 * id)
				c.AddEdge(from, to, g1.Capacity(2*id))
			}
			return c
		}
		var d Dinic
		var ek EdmondsKarp
		var pr PushRelabel
		fd := d.MaxFlow(clone(), s, snk)
		fe := ek.MaxFlow(clone(), s, snk)
		fp := pr.MaxFlow(clone(), s, snk)
		return fd == fe && fe == fp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: max flow equals min cut capacity on random networks.
func TestQuickMaxFlowMinCut(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(10)
		g, s, snk := randomNetwork(rng, n, 3*n, 8)
		var d Dinic
		flow := d.MaxFlow(g, s, snk)
		side := g.MinCutSourceSide(s)
		if side[snk] {
			return false
		}
		var cut int64
		for id := 0; id < g.NumEdges(); id++ {
			from, to := g.EdgeEndpoints(2 * id)
			if side[from] && !side[to] {
				cut += g.Capacity(2 * id)
			}
		}
		return cut == flow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: flow conservation holds at every internal node.
func TestQuickConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(10)
		g, s, snk := randomNetwork(rng, n, 4*n, 9)
		var pr PushRelabel
		pr.MaxFlow(g, s, snk)
		for v := 0; v < g.NumNodes(); v++ {
			if v != s && v != snk && g.OutFlow(v) != 0 {
				return false
			}
		}
		// No edge exceeds capacity, no negative flow.
		for id := 0; id < g.NumEdges(); id++ {
			fl := g.Flow(2 * id)
			if fl < 0 || fl > g.Capacity(2*id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: incremental Dinic equals from-scratch Dinic after edge additions.
func TestQuickWarmStartEqualsCold(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(8)
		g, s, snk := randomNetwork(rng, n, 2*n, 6)
		var warm Dinic
		total := warm.MaxFlow(g, s, snk)
		// Add a few more random edges, re-augment.
		extra := 1 + rng.Intn(2*n)
		type e struct {
			from, to int
			c        int64
		}
		var added []e
		for i := 0; i < extra; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			c := int64(rng.Intn(7))
			g.AddEdge(from, to, c)
			added = append(added, e{from, to, c})
		}
		total += warm.MaxFlow(g, s, snk)

		cold := NewNetwork(n)
		for id := 0; id < g.NumEdges(); id++ {
			from, to := g.EdgeEndpoints(2 * id)
			cold.AddEdge(from, to, g.Capacity(2*id))
		}
		var d2 Dinic
		return d2.MaxFlow(cold, s, snk) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAddNode(t *testing.T) {
	g := NewNetwork(1)
	v := g.AddNode()
	if v != 1 || g.NumNodes() != 2 {
		t.Fatalf("AddNode gave %d, nodes=%d", v, g.NumNodes())
	}
	g.AddEdge(0, v, 4)
	var d Dinic
	if d.MaxFlow(g, 0, v) != 4 {
		t.Error("flow through added node wrong")
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewNetwork(-1) },
		func() { NewNetwork(2).AddEdge(0, 5, 1) },
		func() { NewNetwork(2).AddEdge(0, 1, -1) },
		func() {
			g := NewNetwork(2)
			g.AddEdge(0, 1, 1)
			g.Flow(1) // reverse edge ID
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLargePath(t *testing.T) {
	// Long chain exercises deep DFS recursion in Dinic.
	const n = 2000
	g := NewNetwork(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1, 3)
	}
	var d Dinic
	if got := d.MaxFlow(g, 0, n-1); got != 3 {
		t.Errorf("chain flow = %d, want 3", got)
	}
}
