// Package bipartite maintains the per-round connection matching of the
// paper's Section 2.2: unit-demand left nodes (stripe requests) are matched
// to capacitated right nodes (boxes, capacity in stripe slots ⌊u_b·c⌋).
//
// The Matcher is incremental: requests persist across rounds, and each
// round only repairs invalidated assignments and augments new or unmatched
// requests, which is dramatically cheaper than recomputing a max flow from
// scratch (ablated in experiment E11). Per-round cost tracks live work:
// active lefts are kept in a dense list (not rediscovered by scanning every
// slot ever allocated), and BFS scratch is reset by epoch stamping in O(1)
// rather than clearing peak-sized arrays. Augmentation itself runs in
// Hopcroft–Karp-style blocking-flow phases over the whole dirty frontier
// (one layered BFS, then vertex-disjoint shortest-path DFS augmentations),
// with the per-root reference path retained behind SerialAugment. When
// augmentation stalls, the alternating-reachability set from the unmatched
// requests is exactly a Hall violator — the paper's *obstruction*
// certificate (Lemma 1): a set X of requests with total box capacity
// U_B(X) < |X|/c.
package bipartite

import (
	"fmt"
	"slices"
	"sort"
)

// Unassigned marks a left node with no current server.
const Unassigned = -1

// maxBatchDepth bounds the augmenting-path length the batch DFS will
// recurse through; longer (pathological capacity-1 cascade) phases fall
// back to the iterative serial reference. ~4k frames stays well under a
// megabyte of goroutine stack.
const maxBatchDepth = 4096

// noStable marks an empty stableTo cache slot (distinct from any right).
const noStable = -2

// Adjacency exposes the dynamic bipartite graph. The simulator implements
// it directly over its swarm and allocation state so that edges never need
// to be materialized.
type Adjacency interface {
	// VisitServers calls fn for every right node currently able to serve
	// left node l, stopping early if fn returns false.
	VisitServers(left int, fn func(right int) bool)
	// CanServe reports whether right can currently serve left.
	CanServe(left, right int) bool
}

// Hinted is an optional Adjacency extension giving the matcher cheap
// paths around dead or settled probes. ServerCountHint returns an upper
// bound on the number of rights able to serve left; zero certifies the
// left currently has no edge at all, which lets Revalidate and AugmentAll
// skip probes without enumerating servers. StableEdge reports that the
// edge (left, right) — known to exist when it was assigned — cannot
// disappear while both endpoints stay live (e.g. the server holds the
// stripe statically), letting Revalidate skip re-validating it each round.
type Hinted interface {
	Adjacency
	ServerCountHint(left int) int
	StableEdge(left, right int) bool
}

// rightRec packs every per-right field a search probes into one record:
// capacity, load, the epoch-stamped visit/level/done marks, and the BFS
// parent pointer. A box probe during augmentation used to touch four
// parallel population-sized slices (caps, load, visitR, parentLeft), each
// a separate cache line; one 32-byte record halves the lines touched and
// keeps them adjacent for the batch BFS's heavy right-node traffic.
type rightRec struct {
	cap  int64
	load int64
	// visit compares against epoch: the search that last reached this
	// right. level is the BFS layer it was reached at (valid when visit
	// is current); done stamps rights exhausted by the current DFS phase.
	visit      uint32
	done       uint32
	level      int32
	parentLeft int32 // the left that discovered it (serial BFS)
}

// Matcher holds the incremental assignment state.
type Matcher struct {
	// SerialAugment selects the retained per-root augmentation reference
	// path instead of blocking-flow batch phases. The two produce equal
	// matching cardinality (both drive the matching to maximum) but may
	// pick different maximum matchings, so differential tests pin
	// cardinality + Verify feasibility, not bit-identity.
	SerialAugment bool

	rights []rightRec // per right node: capacity, load, search marks

	assigned []int32 // left -> right, or Unassigned
	active   []bool  // left liveness

	// Dense list of active lefts with back-pointers for O(1) removal, so
	// per-round scans cost O(live requests), not O(peak slots).
	activeLefts []int32
	posActive   []int32

	// Per-right list of assigned lefts, with back-pointers for O(1) removal.
	rightLefts [][]int32
	posInRight []int32

	// BFS scratch: visit stamps compare against epoch, making the
	// per-search reset O(1) instead of O(slots + boxes).
	epoch    uint32
	visitL   []uint32
	levelL   []int32  // BFS layer of each left (valid when visitL current)
	usedL    []uint32 // lefts consumed by the current DFS phase
	maxLevel int32    // layer at which the current phase found free capacity
	queue    []int32
	reachedR []int32 // rights first visited in the current search
	todo     []int32 // AugmentAll worklist scratch
	victims  []int   // SetCapacity eviction scratch, reused across calls
	// unmatchedOut is the AugmentAll return buffer (DrainAssigned
	// convention: valid until the next call, never retained by callers).
	unmatchedOut []int

	// Lefts that may need (re-)augmentation: newly added or unassigned
	// since the last AugmentAll. Keeping them explicit makes AugmentAll
	// output-sensitive — it never scans the live set to find them.
	dirty   []int32
	inDirty []bool

	// stableTo[l] caches a right confirmed stable for l (StableEdge), or
	// noStable. Stability depends only on the left's identity and the
	// right, so the cache lives until the left ID is recycled by AddLeft.
	stableTo []int32

	// trav owns the per-depth traversal frames every search enumerates
	// servers through (see cursor.go); bound to the caller's adjacency at
	// each public entry point, reused across rounds.
	trav traverser

	// listArena backs freshly touched rightLefts lists: first assignments
	// carve capacity from large shared blocks instead of allocating each
	// per-right list individually. Fresh-video churn touches new rights
	// every round, so without the arena that first touch is a guaranteed
	// steady-state allocation per right. Lists that outgrow their carve
	// migrate off-arena via plain append (their carved region is simply
	// abandoned); the arena itself only ever grows by whole blocks.
	listArena []int32

	// Assignment log for event-driven callers: when enabled, every left
	// that receives an assignment (including intermediate moves along
	// augmenting paths) is appended here, so the caller can re-derive its
	// invalidation certificate without sweeping the active set. Entries
	// may repeat and may refer to lefts unassigned again later.
	logAssigns bool
	assignLog  []int32

	// Touched-right log for the sharded merge phase: when enabled, every
	// load change records its right so the coordinator can recompute the
	// global load of exactly the rights this shard moved. Entries repeat;
	// the drain side dedups with an epoch stamp.
	logTouches bool
	touchLog   []int32

	matchedCount int
}

// markDirty queues l for the next augmentation pass.
func (m *Matcher) markDirty(l int) {
	if !m.inDirty[l] {
		m.inDirty[l] = true
		m.dirty = append(m.dirty, int32(l))
	}
}

// NewMatcher creates a matcher over numRight boxes with the given slot
// capacities (len(caps) == numRight). A nil caps builds an empty matcher
// whose right space grows lazily through AddRight (the sharded engine's
// sub-matchers register only the boxes their shard actually touches).
func NewMatcher(caps []int64) *Matcher {
	m := &Matcher{
		rights:     make([]rightRec, len(caps)),
		rightLefts: make([][]int32, len(caps)),
	}
	for r, c := range caps {
		m.rights[r].cap = c
		m.rights[r].parentLeft = -1
	}
	return m
}

// AddRight appends a right node with the given capacity and returns its
// id. Sub-matchers in the sharded engine use it to register boxes on
// first touch, keeping their right space proportional to the shard's
// working set instead of the whole population.
func (m *Matcher) AddRight(cap int64) int {
	r := len(m.rights)
	m.rights = append(m.rights, rightRec{cap: cap, parentLeft: -1})
	m.rightLefts = append(m.rightLefts, nil)
	return r
}

// NumRight returns the number of right nodes.
func (m *Matcher) NumRight() int { return len(m.rights) }

// Capacity returns the capacity of right node r.
func (m *Matcher) Capacity(r int) int64 { return m.rights[r].cap }

// Load returns the current load of right node r.
func (m *Matcher) Load(r int) int64 { return m.rights[r].load }

// MatchedCount returns the number of currently matched left nodes.
func (m *Matcher) MatchedCount() int { return m.matchedCount }

// NumActive returns the number of active left nodes.
func (m *Matcher) NumActive() int { return len(m.activeLefts) }

// ActiveLefts returns the live left set in internal (swap-remove) order.
// It is the matcher's own list: read-only, invalidated by AddLeft and
// RemoveLeft.
func (m *Matcher) ActiveLefts() []int32 { return m.activeLefts }

// SetCapacity adjusts the capacity of right node r. Lowering below the
// current load unassigns arbitrary assigned lefts until feasible; the
// victims are returned so the caller can retry them. The returned slice
// is a scratch buffer owned by the matcher (the DrainAssigned
// convention): it is valid until the next SetCapacity call and must not
// be retained or modified.
func (m *Matcher) SetCapacity(r int, c int64) []int {
	if c < 0 {
		panic("bipartite: negative capacity")
	}
	m.rights[r].cap = c
	m.victims = m.victims[:0]
	for m.rights[r].load > c {
		lefts := m.rightLefts[r]
		victim := lefts[len(lefts)-1]
		m.unassign(int(victim))
		m.victims = append(m.victims, int(victim))
	}
	if len(m.victims) == 0 {
		return nil
	}
	return m.victims
}

// EnsureLeft grows internal storage so left IDs up to n-1 are addressable.
func (m *Matcher) EnsureLeft(n int) {
	for len(m.assigned) < n {
		m.assigned = append(m.assigned, Unassigned)
		m.active = append(m.active, false)
		m.posInRight = append(m.posInRight, -1)
		m.posActive = append(m.posActive, -1)
		m.visitL = append(m.visitL, 0)
		m.levelL = append(m.levelL, 0)
		m.usedL = append(m.usedL, 0)
		m.inDirty = append(m.inDirty, false)
		m.stableTo = append(m.stableTo, noStable)
	}
}

// AddLeft activates a left node (a new stripe request). The ID must be
// dense-ish; the simulator recycles IDs through a free list.
func (m *Matcher) AddLeft(l int) {
	m.EnsureLeft(l + 1)
	if m.active[l] {
		panic(fmt.Sprintf("bipartite: AddLeft(%d) already active", l))
	}
	m.active[l] = true
	m.assigned[l] = Unassigned
	m.stableTo[l] = noStable // recycled ID: stability cache is stale
	m.posActive[l] = int32(len(m.activeLefts))
	m.activeLefts = append(m.activeLefts, int32(l))
	m.markDirty(l)
}

// RemoveLeft deactivates a left node, releasing its server slot.
func (m *Matcher) RemoveLeft(l int) {
	if !m.active[l] {
		panic(fmt.Sprintf("bipartite: RemoveLeft(%d) not active", l))
	}
	if m.assigned[l] != Unassigned {
		m.unassign(l)
	}
	m.active[l] = false
	pos := m.posActive[l]
	last := m.activeLefts[len(m.activeLefts)-1]
	m.activeLefts[pos] = last
	m.posActive[last] = pos
	m.activeLefts = m.activeLefts[:len(m.activeLefts)-1]
	m.posActive[l] = -1
}

// Active reports whether left l is active.
func (m *Matcher) Active(l int) bool { return l < len(m.active) && m.active[l] }

// Server returns the right node assigned to left l, or Unassigned.
func (m *Matcher) Server(l int) int {
	if l >= len(m.assigned) {
		return Unassigned
	}
	return int(m.assigned[l])
}

// listArenaBlock is the arena growth quantum (int32s per block) and
// maxListCarve the largest per-right carve: enough for typical box
// capacities (u·c slots) to never migrate, small enough that a carve per
// touched right stays cheap at ten-million-box populations.
const (
	listArenaBlock = 1 << 16
	maxListCarve   = 16
)

// carveList returns a fresh zero-length list with capacity n carved from
// the arena, growing the arena by one block when the current one is spent.
func (m *Matcher) carveList(n int) []int32 {
	if cap(m.listArena)-len(m.listArena) < n {
		m.listArena = make([]int32, 0, listArenaBlock)
	}
	base := len(m.listArena)
	m.listArena = m.listArena[:base+n]
	return m.listArena[base : base : base+n]
}

func (m *Matcher) assign(l, r int) {
	if m.assigned[l] != Unassigned {
		m.unassign(l)
	}
	if m.rightLefts[r] == nil {
		n := int(m.rights[r].cap)
		if n > maxListCarve {
			n = maxListCarve
		}
		if n < 1 {
			n = 1
		}
		m.rightLefts[r] = m.carveList(n)
	}
	m.assigned[l] = int32(r)
	m.posInRight[l] = int32(len(m.rightLefts[r]))
	m.rightLefts[r] = append(m.rightLefts[r], int32(l))
	m.rights[r].load++
	m.matchedCount++
	if m.logAssigns {
		m.assignLog = append(m.assignLog, int32(l))
	}
	if m.logTouches {
		m.touchLog = append(m.touchLog, int32(r))
	}
}

func (m *Matcher) unassign(l int) {
	r := m.assigned[l]
	lefts := m.rightLefts[r]
	pos := m.posInRight[l]
	last := lefts[len(lefts)-1]
	lefts[pos] = last
	m.posInRight[last] = pos
	m.rightLefts[r] = lefts[:len(lefts)-1]
	m.rights[r].load--
	m.assigned[l] = Unassigned
	m.posInRight[l] = -1
	m.matchedCount--
	m.markDirty(l)
	if m.logTouches {
		m.touchLog = append(m.touchLog, r)
	}
}

// move reassigns l from its current server to r without touching other
// bookkeeping invariants.
func (m *Matcher) move(l, r int) {
	m.unassign(l)
	m.assign(l, r)
}

// Unassign drops left l's current assignment (it must have one) and
// queues it for re-augmentation. The sharded merge phase uses it to evict
// provisional claims that lost the capacity reconciliation.
func (m *Matcher) Unassign(l int) { m.unassign(l) }

// ForceAssign assigns left l to right r, releasing any current server
// first. The caller asserts the edge exists and that global capacity
// admits the assignment; when r's local capacity view would be exceeded
// the view is raised to the new load (the sharded engine's per-round
// capacity refresh restores the true view before the next parallel
// phase).
func (m *Matcher) ForceAssign(l, r int) {
	m.assign(l, r)
	if m.rights[r].load > m.rights[r].cap {
		m.rights[r].cap = m.rights[r].load
	}
}

// revalidateOne re-checks left l's assignment and unassigns it when the
// edge has disappeared, returning true if the assignment was dropped.
// Shared by the full Revalidate sweep and targeted Invalidate calls so
// both paths apply identical stable-edge and dead-probe shortcuts.
func (m *Matcher) revalidateOne(adj Adjacency, hinter Hinted, l int) bool {
	r := m.assigned[l]
	if r == Unassigned {
		return false
	}
	if m.stableTo[l] == r {
		return false
	}
	if hinter != nil {
		if hinter.StableEdge(l, int(r)) {
			m.stableTo[l] = r
			return false
		}
		if hinter.ServerCountHint(l) == 0 {
			m.unassign(l)
			return true
		}
	}
	if !adj.CanServe(l, int(r)) {
		m.unassign(l)
		return true
	}
	return false
}

// Revalidate drops every assignment whose edge has disappeared (server no
// longer possesses the chunk, e.g. a playback cache rolled past the
// window). Returns the number of dropped assignments.
func (m *Matcher) Revalidate(adj Adjacency) int {
	hinter, _ := adj.(Hinted)
	dropped := 0
	for _, l32 := range m.activeLefts {
		if m.revalidateOne(adj, hinter, int(l32)) {
			dropped++
		}
	}
	return dropped
}

// InvalidateBatch is the targeted, event-driven counterpart of the
// Revalidate sweep: callers that know which serving relations changed
// (cache freeze or expiry notifications) invalidate exactly the touched
// lefts, making per-round repair cost proportional to the change volume
// instead of the active set. Candidates are re-checked in active-list
// order — the relative order the sweep uses — so as long as the set
// covers every assignment whose edge actually disappeared, the drops
// (and therefore the dirty-queue order, the per-right list layouts, and
// every subsequent augmentation choice) are bit-for-bit identical to a
// full sweep: targeted repair is indistinguishable from Revalidate, just
// output-sensitive. The slice is sorted in place; duplicates and
// inactive lefts are skipped. Returns the number of drops (each dropped
// left is re-queued for augmentation).
func (m *Matcher) InvalidateBatch(adj Adjacency, lefts []int32) int {
	hinter, _ := adj.(Hinted)
	// slices.SortFunc, not sort.Slice: the reflection-based variant
	// allocates its closure header every call, and this runs once per
	// event-driven round on the hot invalidation path.
	slices.SortFunc(lefts, func(a, b int32) int {
		if pa, pb := m.posActive[a], m.posActive[b]; pa != pb {
			return int(pa - pb)
		}
		return int(a - b)
	})
	dropped := 0
	prev := int32(-1)
	for _, l := range lefts {
		if l == prev {
			continue
		}
		prev = l
		if !m.active[l] {
			continue
		}
		if m.revalidateOne(adj, hinter, int(l)) {
			dropped++
		}
	}
	return dropped
}

// AssignedLefts returns the lefts currently assigned to right r. The
// slice is the matcher's internal list: it is invalidated by any assign
// or unassign touching r (unassigning lefts[i] swap-removes it, moving
// the former last element into position i), and must not be modified.
func (m *Matcher) AssignedLefts(r int) []int32 { return m.rightLefts[r] }

// LogAssignments enables (or disables) the assignment log drained by
// DrainAssigned. While enabled, every assign — including intermediate
// moves along augmenting paths — records its left.
func (m *Matcher) LogAssignments(on bool) {
	m.logAssigns = on
	if !on {
		m.assignLog = m.assignLog[:0]
	}
}

// DrainAssigned appends the lefts assigned since the last drain to dst
// and clears the log. Entries may repeat, and a logged left may have been
// unassigned again afterwards — callers must re-check Server.
func (m *Matcher) DrainAssigned(dst []int32) []int32 {
	dst = append(dst, m.assignLog...)
	m.assignLog = m.assignLog[:0]
	return dst
}

// LogTouches enables (or disables) the touched-right log drained by
// DrainTouched.
func (m *Matcher) LogTouches(on bool) {
	m.logTouches = on
	if !on {
		m.touchLog = m.touchLog[:0]
	}
}

// DrainTouched appends the rights whose load changed since the last drain
// to dst and clears the log. Entries may repeat.
func (m *Matcher) DrainTouched(dst []int32) []int32 {
	dst = append(dst, m.touchLog...)
	m.touchLog = m.touchLog[:0]
	return dst
}

// AugmentAll drives the matching to maximum over the dirty frontier: the
// lefts that were added or unassigned since the last call. The default
// path runs blocking-flow batch phases (augmentBatch); SerialAugment
// selects the retained per-root reference. Both end with no augmenting
// path from the implicit super-source, so the matching is maximum. It
// returns the remaining unmatched lefts in ascending order; a non-empty
// result certifies a Lemma 1 obstruction, extractable via HallViolator.
// The returned slice is a scratch buffer owned by the matcher (the
// DrainAssigned convention): it is valid until the next AugmentAll call
// and must not be retained across rounds.
func (m *Matcher) AugmentAll(adj Adjacency) []int {
	m.trav.bind(adj)
	todo := m.todo[:0]
	for _, l := range m.dirty {
		m.inDirty[l] = false
		if m.active[l] && m.assigned[l] == Unassigned {
			todo = append(todo, l)
		}
	}
	m.dirty = m.dirty[:0]
	if m.SerialAugment {
		todo = m.augmentSerial(adj, todo)
	} else {
		todo = m.augmentBatch(adj, todo)
	}
	if len(todo) == 0 {
		m.todo = todo
		return nil
	}
	m.unmatchedOut = m.unmatchedOut[:0]
	for _, l := range todo {
		m.unmatchedOut = append(m.unmatchedOut, int(l))
		// Still unmatched: must be retried on the next call.
		m.markDirty(int(l))
	}
	m.todo = todo[:0]
	sort.Ints(m.unmatchedOut)
	return m.unmatchedOut
}

// augmentSerial is the reference augmentation path: one alternating BFS
// per unmatched root, repeated until a full pass makes no progress. It
// returns the lefts that stayed unmatched (reusing todo's storage).
func (m *Matcher) augmentSerial(adj Adjacency, todo []int32) []int32 {
	hinter, hinted := adj.(Hinted)
	for len(todo) > 0 {
		progressed := false
		rest := todo[:0] // safe: writes trail reads
		for _, l := range todo {
			if hinted && hinter.ServerCountHint(int(l)) == 0 {
				rest = append(rest, l)
				continue
			}
			if m.augment(int(l)) {
				progressed = true
			} else {
				rest = append(rest, l)
			}
		}
		todo = rest
		if !progressed {
			break
		}
	}
	return todo
}

// augmentBatch drives the whole frontier to maximum in blocking-flow
// phases (Hopcroft–Karp on the b-matching residual graph): each phase
// runs one layered BFS from every still-unmatched frontier left toward
// free right capacity, then augments along vertex-disjoint shortest
// paths with DFS restricted to layer edges, until no free right is
// reachable at all. Every phase multiplies the shortest augmenting-path
// length, so a crowd of k new requests costs O(√k) phases instead of k
// root-by-root searches — the difference between one BFS wave and
// thousands of long walks at high utilization. Returns the lefts that
// stayed unmatched (reusing todo's storage).
func (m *Matcher) augmentBatch(adj Adjacency, todo []int32) []int32 {
	hinter, hinted := adj.(Hinted)
	// Phase 0: length-1 paths. Most arrivals have a direct server with a
	// free slot; resolve them with the same early-exit probe the serial
	// path's first BFS step uses, so the layered machinery below — which
	// must label *every* server of a frontier left — only ever runs for
	// lefts that genuinely need an alternating cascade.
	rest := todo[:0]
	for _, l := range todo {
		if hinted && hinter.ServerCountHint(int(l)) == 0 {
			rest = append(rest, l)
			continue
		}
		assigned := false
		m.trav.begin(l, 0)
		for r := m.trav.next(0); r >= 0; r = m.trav.next(0) {
			if m.rights[r].load < m.rights[r].cap {
				m.assign(int(l), r)
				assigned = true
				break
			}
		}
		if !assigned {
			rest = append(rest, l)
		}
	}
	todo = rest
	for len(todo) > 0 {
		if !m.bfsLayer(todo, hinter, hinted) {
			break // no free right reachable: the matching is maximum
		}
		if m.maxLevel > maxBatchDepth {
			// Pathological cascade: the phase DFS recurses once per path
			// hop, so an extreme shortest-path length would translate into
			// goroutine stack depth. The iterative per-root reference
			// (BFS queue + applyPath loop) handles arbitrary lengths in
			// O(1) stack; it is also maximum, so switching mid-call keeps
			// the cardinality contract.
			return m.augmentSerial(adj, todo)
		}
		progressed := false
		for _, l := range todo {
			if m.assigned[l] != Unassigned || m.visitL[l] != m.epoch {
				continue
			}
			if m.usedL[l] == m.epoch {
				continue
			}
			m.usedL[l] = m.epoch
			if m.dfsAugment(l, 0) {
				progressed = true
			}
		}
		if !progressed {
			break // defensive: a reachable free right always yields ≥1 path
		}
		// Compact the frontier so later phases scan only open roots.
		rest := todo[:0]
		for _, l := range todo {
			if m.assigned[l] == Unassigned {
				rest = append(rest, l)
			}
		}
		todo = rest
	}
	return todo
}

// bfsLayer runs one phase's layered BFS: every unmatched frontier left
// sits at layer 0; full rights reached at layer d expand to their
// assigned lefts at layer d+1; the wave stops at the first layer where a
// right with spare capacity appears (all shortest augmenting paths end
// there), recorded in maxLevel. Reports whether any free right was
// reached.
func (m *Matcher) bfsLayer(frontier []int32, hinter Hinted, hinted bool) bool {
	m.beginSearch()
	q := m.queue[:0]
	for _, l := range frontier {
		if m.assigned[l] != Unassigned || m.visitL[l] == m.epoch {
			continue
		}
		if hinted && hinter.ServerCountHint(int(l)) == 0 {
			continue
		}
		m.visitL[l] = m.epoch
		m.levelL[l] = 0
		q = append(q, l)
	}
	found := false
	for layerStart, layerEnd := 0, len(q); layerStart < layerEnd; layerStart, layerEnd = layerEnd, len(q) {
		for i := layerStart; i < layerEnd; i++ {
			l := q[i]
			d := m.levelL[l]
			m.trav.begin(l, 0)
			for r := m.trav.next(0); r >= 0; r = m.trav.next(0) {
				rr := &m.rights[r]
				if rr.visit == m.epoch {
					continue
				}
				rr.visit = m.epoch
				rr.level = d
				if rr.load < rr.cap {
					// Free capacity at this layer: finish labeling the
					// layer (other shortest paths end here too) but stop
					// expanding deeper.
					found = true
					m.maxLevel = d
					continue
				}
				if !found {
					for _, l2 := range m.rightLefts[r] {
						if m.visitL[l2] != m.epoch {
							m.visitL[l2] = m.epoch
							m.levelL[l2] = d + 1
							q = append(q, l2)
						}
					}
				}
			}
		}
		if found {
			break
		}
	}
	m.queue = q
	return found
}

// dfsAugment extends a shortest augmenting path from left l at layer d
// along layer edges only: usable rights carry this phase's stamp at
// exactly layer d, and full rights recurse into their assigned lefts at
// layer d+1. On success the whole path below l has been applied and l is
// assigned (root) or moved (interior left) onto a layer-d right,
// momentarily vacated by its rerouted occupant, so loads are restored
// everywhere except the free slot consumed at layer maxLevel. Exhausted
// rights are stamped done and dead for the rest of the phase; each left
// is consumed at most once (vertex-disjoint paths), which is what makes
// the phase a blocking flow.
func (m *Matcher) dfsAugment(l int32, d int32) bool {
	m.trav.begin(l, d)
	for r := m.trav.next(d); r >= 0; r = m.trav.next(d) {
		rr := &m.rights[r]
		if rr.visit != m.epoch || rr.level != d || rr.done == m.epoch {
			continue
		}
		if rr.load < rr.cap {
			if m.assigned[l] == Unassigned {
				m.assign(int(l), r)
			} else {
				m.move(int(l), r)
			}
			return true
		}
		if d < m.maxLevel {
			lefts := m.rightLefts[r]
			for _, l2 := range lefts {
				if m.visitL[l2] != m.epoch || m.levelL[l2] != d+1 || m.usedL[l2] == m.epoch {
					continue
				}
				m.usedL[l2] = m.epoch
				if m.dfsAugment(l2, d+1) {
					// l2 vacated one of r's slots; take it.
					if m.assigned[l] == Unassigned {
						m.assign(int(l), r)
					} else {
						m.move(int(l), r)
					}
					return true
				}
			}
		}
		rr.done = m.epoch
	}
	return false
}

// augment searches one alternating BFS tree rooted at unmatched left root
// and applies the augmenting path if a right node with spare capacity is
// found.
func (m *Matcher) augment(root int) bool {
	m.beginSearch()
	m.queue = m.queue[:0]
	m.queue = append(m.queue, int32(root))
	m.visitL[root] = m.epoch
	// prevRight[l] is implicit: for non-root lefts it is assigned[l].
	for head := 0; head < len(m.queue); head++ {
		l := m.queue[head]
		found := -1
		m.trav.begin(l, 0)
		for r := m.trav.next(0); r >= 0; r = m.trav.next(0) {
			rr := &m.rights[r]
			if rr.visit == m.epoch {
				continue
			}
			rr.visit = m.epoch
			rr.parentLeft = l
			if rr.load < rr.cap {
				found = r
				break
			}
			for _, l2 := range m.rightLefts[r] {
				if m.visitL[l2] != m.epoch {
					m.visitL[l2] = m.epoch
					m.queue = append(m.queue, l2)
				}
			}
		}
		if found >= 0 {
			m.applyPath(found)
			return true
		}
	}
	return false
}

// applyPath walks parent pointers back from the free right node, shifting
// assignments along the alternating path.
func (m *Matcher) applyPath(freeRight int) {
	r := freeRight
	for {
		l := int(m.rights[r].parentLeft)
		if m.assigned[l] == Unassigned {
			m.assign(l, r)
			return
		}
		prev := int(m.assigned[l])
		m.move(l, r)
		r = prev
	}
}

// beginSearch starts a fresh BFS scope: bumping the epoch invalidates all
// visit stamps at once. On the (rare) wrap to zero the stamp arrays are
// cleared so stale marks from 2³²−1 searches ago cannot alias.
func (m *Matcher) beginSearch() {
	m.epoch++
	if m.epoch == 0 {
		for i := range m.visitL {
			m.visitL[i] = 0
			m.usedL[i] = 0
		}
		for i := range m.rights {
			m.rights[i].visit = 0
			m.rights[i].done = 0
		}
		m.epoch = 1
	}
}

// CanonicalizeDeficit rewrites a maximum-but-deficient matching so the
// *set* of matched lefts is canonical: the matroid-greedy optimum that
// covers the lexicographically smallest (by left id) coverable subset.
// Coverable left-sets form a transversal matroid, so this optimum is
// unique and independent of which maximum matching the search found — it
// is the fixpoint where no unmatched left can displace a matched left
// with a larger id along an alternating path. Exchanges strictly shrink
// the sorted matched-id vector, so any maximal exchange sequence
// terminates at that same fixpoint regardless of order; this is what lets
// the serial and sharded engines (and the batch and per-root augmenters)
// agree bit-for-bit on which requests stall in a deficit round. The
// unmatched slice is updated in place (each displacement swaps a root for
// its victim) and returned re-sorted; cardinality never changes.
func (m *Matcher) CanonicalizeDeficit(adj Adjacency, unmatched []int) []int {
	m.trav.bind(adj)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(unmatched); i++ {
			u := unmatched[i]
			if !m.active[u] || m.assigned[u] != Unassigned {
				continue
			}
			if v, ok := m.displace(adj, u); ok {
				if v >= 0 {
					unmatched[i] = v
				} else {
					// The matching was not maximum after all: the root
					// augmented without displacing anyone.
					unmatched = append(unmatched[:i], unmatched[i+1:]...)
					i--
				}
				changed = true
			}
		}
		if changed {
			sort.Ints(unmatched)
		}
	}
	return unmatched
}

// displace runs one canonicalization exchange: an alternating BFS from
// the unmatched root stopping at the first reached assigned left with a
// larger id, which is unassigned so the path can shift the root into the
// matching. It returns (victim, true) after an exchange, (-1, true) if
// the root augmented outright onto spare capacity, and (-1, false) when
// no exchange exists (the root already belongs to the canonical stall
// set).
func (m *Matcher) displace(adj Adjacency, root int) (int, bool) {
	if hinter, ok := adj.(Hinted); ok && hinter.ServerCountHint(root) == 0 {
		return -1, false
	}
	m.beginSearch()
	m.queue = m.queue[:0]
	m.queue = append(m.queue, int32(root))
	m.visitL[root] = m.epoch
	for head := 0; head < len(m.queue); head++ {
		l := m.queue[head]
		victim, server := -1, -1
		m.trav.begin(l, 0)
	probe:
		for r := m.trav.next(0); r >= 0; r = m.trav.next(0) {
			rr := &m.rights[r]
			if rr.visit == m.epoch {
				continue
			}
			rr.visit = m.epoch
			rr.parentLeft = l
			if rr.load < rr.cap {
				// The matching was not maximum after all: plain augment.
				server = r
				break
			}
			for _, l2 := range m.rightLefts[r] {
				if m.visitL[l2] == m.epoch {
					continue
				}
				m.visitL[l2] = m.epoch
				if int(l2) > root {
					victim, server = int(l2), r
					break probe
				}
				m.queue = append(m.queue, l2)
			}
		}
		if server >= 0 {
			if victim >= 0 {
				m.unassign(victim)
			}
			m.applyPath(server)
			return victim, true
		}
	}
	return -1, false
}

// Violator is a Hall-condition violation certificate: a set of requests
// Lefts whose entire server set Rights has insufficient capacity —
// the paper's "obstruction". Slots == Σ caps(Rights) < len(Lefts).
type Violator struct {
	Lefts  []int
	Rights []int
	Slots  int64
}

// HallViolator extracts the obstruction certificate after AugmentAll has
// returned a non-empty unmatched set. It computes alternating reachability
// from all unmatched lefts; the reached lefts X and rights B(X) satisfy
// U_B(X) < |X| (in slots). Returns nil if every active left is matched.
func (m *Matcher) HallViolator(adj Adjacency) *Violator {
	m.trav.bind(adj)
	m.beginSearch()
	m.queue = m.queue[:0]
	m.reachedR = m.reachedR[:0]
	for _, l := range m.activeLefts {
		if m.assigned[l] == Unassigned {
			m.visitL[l] = m.epoch
			m.queue = append(m.queue, l)
		}
	}
	if len(m.queue) == 0 {
		return nil
	}
	for head := 0; head < len(m.queue); head++ {
		l := m.queue[head]
		m.trav.begin(l, 0)
		for r := m.trav.next(0); r >= 0; r = m.trav.next(0) {
			if m.rights[r].visit == m.epoch {
				continue
			}
			m.rights[r].visit = m.epoch
			m.reachedR = append(m.reachedR, int32(r))
			for _, l2 := range m.rightLefts[r] {
				if m.visitL[l2] != m.epoch {
					m.visitL[l2] = m.epoch
					m.queue = append(m.queue, l2)
				}
			}
		}
	}
	v := &Violator{
		Lefts:  make([]int, len(m.queue)),
		Rights: make([]int, len(m.reachedR)),
	}
	for i, l := range m.queue {
		v.Lefts[i] = int(l)
	}
	sort.Ints(v.Lefts)
	for i, r := range m.reachedR {
		v.Rights[i] = int(r)
		v.Slots += m.rights[r].cap
	}
	sort.Ints(v.Rights)
	return v
}

// Verify checks internal consistency and edge validity of the current
// matching; it returns an error describing the first violation found.
// Tests and the simulator's paranoid mode call it.
func (m *Matcher) Verify(adj Adjacency) error {
	var matched int
	loads := make([]int64, len(m.rights))
	activeSeen := 0
	for l := range m.assigned {
		if !m.active[l] {
			if m.assigned[l] != Unassigned {
				return fmt.Errorf("inactive left %d has assignment %d", l, m.assigned[l])
			}
			if m.posActive[l] != -1 {
				return fmt.Errorf("inactive left %d still in active list", l)
			}
			continue
		}
		activeSeen++
		pos := m.posActive[l]
		if pos < 0 || int(pos) >= len(m.activeLefts) || m.activeLefts[pos] != int32(l) {
			return fmt.Errorf("active-list back-pointer corrupt for left %d", l)
		}
		r := m.assigned[l]
		if r == Unassigned {
			if !m.inDirty[l] {
				return fmt.Errorf("unmatched left %d not queued for augmentation", l)
			}
			continue
		}
		matched++
		loads[r]++
		if !adj.CanServe(l, int(r)) {
			return fmt.Errorf("assignment %d->%d has no edge", l, r)
		}
		if m.posInRight[l] < 0 || int(m.posInRight[l]) >= len(m.rightLefts[r]) ||
			m.rightLefts[r][m.posInRight[l]] != int32(l) {
			return fmt.Errorf("back-pointer corrupt for left %d", l)
		}
	}
	if activeSeen != len(m.activeLefts) {
		return fmt.Errorf("active list has %d lefts, actual %d", len(m.activeLefts), activeSeen)
	}
	if matched != m.matchedCount {
		return fmt.Errorf("matchedCount=%d, actual=%d", m.matchedCount, matched)
	}
	for r := range m.rights {
		if loads[r] != m.rights[r].load {
			return fmt.Errorf("right %d load=%d, actual=%d", r, m.rights[r].load, loads[r])
		}
		if loads[r] > m.rights[r].cap {
			return fmt.Errorf("right %d over capacity: %d > %d", r, loads[r], m.rights[r].cap)
		}
		if int64(len(m.rightLefts[r])) != loads[r] {
			return fmt.Errorf("right %d list length %d != load %d", r, len(m.rightLefts[r]), loads[r])
		}
	}
	return nil
}
