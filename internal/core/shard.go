package core

// Sharded round engine (Config.Shards > 1).
//
// Stripes are partitioned statically across shards (stripe mod Shards), so
// requests — whose edges only ever reach boxes possessing their stripe —
// partition with them. Each shard owns a bipartite sub-matcher in a
// shard-local right-id space (see bipartite.Sharded) plus the lane state
// below: its slice of the recheck ring, event scratch, and an adjacency
// that translates the Section 2.2 graph into local ids. The hot stages of
// a round (expiry, targeted invalidation, certificate rechecks, blocking-
// flow augmentation, progress) are fused into two dispatches onto a
// persistent per-shard worker pool (shardPool) with no shared mutable
// state; box capacity — the one cross-shard resource — is resolved
// between them by the deterministic Merge + GlobalAugment serial tail, so
// StepResult is bit-identical at every shard count and independent of
// GOMAXPROCS (see the sharded-vs-serial lockstep differential).

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/video"
)

// lane is one shard's private engine state.
type lane struct {
	id  int
	sys *System

	// Per-shard half of the event-driven invalidation state; exactly the
	// serial engine's recheckRing/availEvents/assignedLog/candScratch,
	// restricted to the lane's stripes (see invalidation.go).
	recheckRing [][]int32
	availEvents []availEvent
	assignedLog []int32
	candScratch []int32

	// fnStack supports the visitLocal trampoline: the matcher's DFS
	// re-enters VisitServers from inside callbacks, so the active callback
	// is a stack, not a slot. tramp is allocated once to keep the hot
	// visit path free of per-call closures.
	fnStack []func(right int) bool
	tramp   func(box int, local int32) bool
}

func (ln *lane) init(s *System, id int) {
	ln.id = id
	ln.sys = s
	ln.tramp = func(box int, local int32) bool {
		if local < 0 {
			local = int32(ln.sys.sharded.Register(ln.id, box))
		}
		return ln.fnStack[len(ln.fnStack)-1](int(local))
	}
}

// preRegisterShardRights materializes every sub-matcher right the
// allocation can ever need: stripe st's holders are exactly the boxes
// st's requests can reach, so registering each holder with st's shard at
// construction covers every future Register call. Without this, rights
// grow lazily at first touch — and a fresh-video churn workload touches
// new (shard, box) pairs every round, costing ~2MB/round in right-record
// and capacity-view growth on the sharded engine (measured by
// BenchmarkStepShardScaling). Registration order only renames shard-local
// right ids; results are unchanged (Config.LazyShardRights restores the
// lazy path for populations too large to pre-register).
func (s *System) preRegisterShardRights() {
	for st, holders := range s.cfg.Alloc.ByStripe {
		sh := s.shardOf(video.StripeID(st))
		for _, b := range holders {
			s.sharded.Register(sh, int(b))
		}
	}
}

// shardAdjacency presents the Section 2.2 graph to one shard's sub-matcher
// in the shard's local right-id space. Only lefts owned by the shard ever
// reach it, so every translation stays within the lane.
type shardAdjacency struct{ ln *lane }

// VisitServers mirrors adjacency.VisitServers, emitting local right ids:
// allocation holders translated through the shard's flat global→local
// table (one array load each; Register materializes the right on first
// touch — safe in the lane's own stage since only the owning shard
// mutates its tables), then swarm predecessors via the store's
// visitLocal (whose cached boxLocal makes the common case a straight
// array read; -1 falls back to registration).
func (a shardAdjacency) VisitServers(left int, fn func(right int) bool) {
	ln := a.ln
	s := ln.sys
	slot := int32(left)
	stripe := s.reqStripe[slot]
	requester := s.reqBox[slot]
	for _, b := range s.cfg.Alloc.ByStripe[stripe] {
		if b != requester {
			if !fn(s.sharded.Register(ln.id, int(b))) {
				return
			}
		}
	}
	if s.cfg.DisableCacheServing {
		return
	}
	ln.fnStack = append(ln.fnStack, fn)
	s.avail.visitLocal(stripe, requester, s.reqProgress[slot], s.reqProgress, ln.tramp)
	ln.fnStack = ln.fnStack[:len(ln.fnStack)-1]
}

// BeginServers implements bipartite.CursorAdjacency for the lane: the
// sub-matcher's hot path, bypassing the fnStack/tramp machinery entirely
// (that pair stays for the VisitServers adapter form). Same staging as
// adjacency's cursor, with every yielded right translated to the shard's
// local id space; Register on first touch is safe here for the same
// reason as in VisitServers — only the owning shard mutates its tables.
func (a shardAdjacency) BeginServers(left int, c *bipartite.Cursor) {
	c.Left = int32(left)
	c.Stage = 0
	c.Index = 0
}

// NextServer implements bipartite.CursorAdjacency on local right ids.
func (a shardAdjacency) NextServer(c *bipartite.Cursor) int {
	ln := a.ln
	s := ln.sys
	slot := c.Left
	stripe := s.reqStripe[slot]
	requester := s.reqBox[slot]
	if c.Stage == 0 {
		holders := s.cfg.Alloc.ByStripe[stripe]
		for int(c.Index) < len(holders) {
			b := holders[c.Index]
			c.Index++
			if b != requester {
				return s.sharded.Register(ln.id, int(b))
			}
		}
		if s.cfg.DisableCacheServing {
			c.Stage = 2
			return -1
		}
		c.Stage = 1
		c.ID = s.avail.visitHead(stripe)
	}
	if c.Stage == 1 {
		box, local, next := s.avail.visitStep(stripe, c.ID, requester, s.reqProgress[slot], s.reqProgress)
		c.ID = next
		if box >= 0 {
			if local < 0 {
				return s.sharded.Register(ln.id, int(box))
			}
			return int(local)
		}
		c.Stage = 2
	}
	return -1
}

// CanServe translates the local right back to its box and defers to the
// global adjacency.
func (a shardAdjacency) CanServe(left, right int) bool {
	s := a.ln.sys
	return adjacency{s}.CanServe(left, s.sharded.Global(a.ln.id, right))
}

// ServerCountHint implements bipartite.Hinted (global information only).
func (a shardAdjacency) ServerCountHint(left int) int {
	return adjacency{a.ln.sys}.ServerCountHint(left)
}

// StableEdge implements bipartite.Hinted on local right ids.
func (a shardAdjacency) StableEdge(left, right int) bool {
	s := a.ln.sys
	return adjacency{s}.StableEdge(left, s.sharded.Global(a.ln.id, right))
}

// shardStage identifies the fused shard-local work a pool dispatch runs.
// A round has exactly two dispatches — the only synchronization points
// left are the barriers around the serial Merge/GlobalAugment tail.
type shardStage uint8

const (
	// stageMatch fuses every pre-merge shard-local phase: availability
	// expiry, capacity-view refresh, targeted invalidation (or sweep
	// revalidation), and blocking-flow augmentation over the sub-graph.
	stageMatch shardStage = iota
	// stageAdvance fuses the post-merge phases: progress advance, then
	// certificate refresh under the serially decided certMode (progress
	// first — certificate margins read reqProgress, and the serial engine
	// advances before it certifies).
	stageAdvance
)

// shardPool parks numShards-1 persistent workers on an allocation-free
// reusable barrier; shard 0 always runs inline on the dispatching
// goroutine, so shards=1 degenerates to the serial engine's cost and a
// dispatch costs one channel send per worker plus one WaitGroup cycle —
// no goroutine spawns, no per-round allocation. The System reference is
// published per dispatch and cleared after the barrier, so parked workers
// never pin the engine: an abandoned (un-Closed) System stays collectable
// and its runtime.AddCleanup closes the pool as a safety net.
type shardPool struct {
	wake   []chan struct{} // one buffered wake token slot per worker; worker i owns shard i+1
	done   sync.WaitGroup  // reusable barrier: Add(workers) per dispatch, Done per shard
	runner *System         // published before release, nil while parked
	stage  shardStage
	closed atomic.Bool
	once   sync.Once
}

func newShardPool(workers int) *shardPool {
	p := &shardPool{wake: make([]chan struct{}, workers)}
	for i := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[i] = ch
		go p.work(i+1, ch)
	}
	return p
}

// work is one parked worker: each wake token runs the published stage for
// the worker's shard and reports through the barrier. The channel send in
// run happens-before the receive here, and the Done happens-before run's
// Wait, so runner/stage publication needs no further synchronization.
func (p *shardPool) work(sh int, wake chan struct{}) {
	for range wake {
		p.runner.runShardStage(p.stage, sh)
		p.done.Done()
	}
}

// run executes stage on every shard — workers for shards 1..S-1, the
// calling goroutine for shard 0 — and returns once all have finished.
func (p *shardPool) run(s *System, stage shardStage) {
	p.runner, p.stage = s, stage
	p.done.Add(len(p.wake))
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	s.runShardStage(stage, 0)
	p.done.Wait()
	p.runner = nil
}

// close releases the workers. Idempotent; must not race a Step (the
// System serializes Step and Close onto its single-writer contract, and
// the AddCleanup path only fires once no Step can be running).
func (p *shardPool) close() {
	p.once.Do(func() {
		p.closed.Store(true)
		for _, ch := range p.wake {
			close(ch)
		}
	})
}

// runShardStage dispatches one shard's share of a fused stage. It is the
// single entry point for both the inline shard-0 call and the pool
// workers.
func (s *System) runShardStage(stage shardStage, sh int) {
	switch stage {
	case stageMatch:
		s.matchStageShard(sh)
	case stageAdvance:
		s.advanceStageShard(sh)
	}
}

// matchStageShard is the fused pre-merge stage for one lane: expire the
// lane's availability window, refresh its capacity views, repair flagged
// assignments (or sweep), and augment over the sub-graph. Expiry is
// deferred here from the top of the round — admission has already run —
// which is safe because selfPossesses window-filters the entries this
// expiry is about to drop (see availabilityStore.hasFull) and every other
// consumer of the store runs at or after this stage.
func (s *System) matchStageShard(sh int) {
	ln := &s.lanes[sh]
	s.avail.expireShard(s.round, sh)
	s.sharded.RefreshCapacities(sh)
	adj := shardAdjacency{ln}
	if s.eventDriven && !s.needSweep {
		s.invalidateTargetedShard(ln, adj)
	} else {
		if s.eventDriven {
			s.discardInvalidationBacklogShard(ln)
		}
		s.sharded.Sub(sh).Revalidate(adj)
	}
	s.shardUnmatched[sh] = s.sharded.Sub(sh).AugmentAll(adj)
}

// matchSharded runs the round's matching stages on the sharded engine:
// one pooled dispatch runs the fused pre-merge stage on every shard; then
// the serial tail merges per-shard loads in fixed shard order, evicts
// oversubscribed claims deterministically, and completes the matching to
// a global maximum with cross-shard alternating paths. Returns the final
// unmatched lefts (ascending).
func (s *System) matchSharded() []int {
	t := nowNS()
	s.pool.run(s, stageMatch)
	s.timing.parallelNS = nowNS() - t
	t = nowNS()
	spill := s.sharded.Merge()
	out := s.sharded.GlobalAugment(adjacency{s}, spill, s.shardUnmatched)
	s.timing.serialNS = nowNS() - t
	return out
}

// invalidateTargetedShard is invalidateTargeted restricted to one lane:
// same candidate gathering (due rechecks + the lane's freeze/expiry
// events), same batch invalidation, same certificate re-derivation — over
// the lane's sub-matcher and ring. The union over lanes covers exactly
// the candidates the serial engine gathers.
func (s *System) invalidateTargetedShard(ln *lane, adj shardAdjacency) {
	bucket := s.round % len(ln.recheckRing)
	due := ln.recheckRing[bucket]
	ln.recheckRing[bucket] = due[:0]
	cand := append(ln.candScratch[:0], due...)
	ln.availEvents = s.avail.drainEventsShard(ln.id, ln.availEvents[:0])
	sub := s.sharded.Sub(ln.id)
	for _, ev := range ln.availEvents {
		lr := s.sharded.Local(ln.id, int(ev.box))
		if lr < 0 {
			continue
		}
		for _, l := range sub.AssignedLefts(lr) {
			if s.reqStripe[l] == ev.stripe {
				cand = append(cand, l)
			}
		}
	}
	sub.InvalidateBatch(adj, cand)
	prev := int32(-1)
	for _, l := range cand { // sorted and deduped by InvalidateBatch's ordering
		if l == prev {
			continue
		}
		prev = l
		s.scheduleCertificateShard(ln, int(l))
	}
	ln.candScratch = cand
}

// scheduleCertificateShard mirrors scheduleCertificate on a lane's ring.
// Safe in the lane's parallel stage: it reads the store's same-stripe
// index (owned by this shard, quiescent during the stage) and writes only
// the lane's ring.
func (s *System) scheduleCertificateShard(ln *lane, l int) {
	lr := s.sharded.Sub(ln.id).Server(l)
	if lr < 0 {
		return
	}
	r := s.sharded.Global(ln.id, lr)
	slot := int32(l)
	st := s.reqStripe[slot]
	if s.cfg.Alloc.Stores(r, st) {
		return
	}
	need := s.reqProgress[slot]
	hasLive, bestFrozen, ok := s.avail.margin(st, int32(r), need, s.reqProgress)
	switch {
	case !ok:
		s.scheduleRecheckShard(ln, slot, 1)
	case hasLive:
		// Live margin: nothing to watch until an event fires.
	default:
		s.scheduleRecheckShard(ln, slot, int(bestFrozen-need))
	}
}

// scheduleRecheckShard is scheduleRecheck on a lane's ring.
func (s *System) scheduleRecheckShard(ln *lane, l int32, delta int) {
	bucket := (s.round + delta) % len(ln.recheckRing)
	ln.recheckRing[bucket] = append(ln.recheckRing[bucket], l)
}

// discardInvalidationBacklogShard is discardInvalidationBacklog for one
// lane (a sweep round supersedes the lane's targeted work).
func (s *System) discardInvalidationBacklogShard(ln *lane) {
	bucket := s.round % len(ln.recheckRing)
	ln.recheckRing[bucket] = ln.recheckRing[bucket][:0]
	ln.availEvents = s.avail.drainEventsShard(ln.id, ln.availEvents[:0])
}

// certMode is the serially decided disposition of a round's assignment
// logs (see refreshAssignmentCertificates for the episode logic).
type certMode int

const (
	certsDiscard     certMode = iota // stall round: drain logs, keep sweeping
	certsRebuild                     // first clean round after stalls: rebuild all
	certsIncremental                 // steady state: certify new assignments only
)

// advanceAndCertifySharded is the post-merge half of the sharded round:
// the sweep-episode transition is decided serially (it reads the global
// unmatched count and flips needSweep), then one pooled dispatch runs the
// fused progress+certificate stage on every lane.
func (s *System) advanceAndCertifySharded(unmatched int) {
	if s.eventDriven {
		s.certMode = certsIncremental
		if unmatched > 0 {
			s.needSweep = true
			s.certMode = certsDiscard
		} else if s.needSweep {
			s.needSweep = false
			s.certMode = certsRebuild
		}
	}
	t := nowNS()
	s.pool.run(s, stageAdvance)
	s.timing.parallelNS += nowNS() - t
}

// advanceStageShard is the fused post-merge stage for one lane: advance
// matched requests one chunk (reqProgress writes confined to the owning
// shard), then drain the lane's assignment log and re-derive certificates
// under the serially decided certMode. Progress runs first because
// certificate margins read reqProgress — the same order as the serial
// engine's Step.
func (s *System) advanceStageShard(sh int) {
	ln := &s.lanes[sh]
	sub := s.sharded.Sub(sh)
	for _, l := range sub.ActiveLefts() {
		if sub.Server(int(l)) != bipartite.Unassigned {
			s.reqProgress[l]++
		}
	}
	if !s.eventDriven {
		return
	}
	ln.assignedLog = sub.DrainAssigned(ln.assignedLog[:0])
	switch s.certMode {
	case certsRebuild:
		for _, l := range sub.ActiveLefts() {
			s.scheduleCertificateShard(ln, int(l))
		}
	case certsIncremental:
		for _, l := range ln.assignedLog {
			s.scheduleCertificateShard(ln, int(l))
		}
	}
}

// verifyMatching is the paranoid-mode check: per-shard sub-matcher
// consistency against the lane adjacency, then the global load table
// against true capacities.
func (s *System) verifyMatching(adj adjacency) error {
	if s.sharded == nil {
		return s.matcher.Verify(adj)
	}
	for sh := 0; sh < s.numShards; sh++ {
		if err := s.sharded.Sub(sh).Verify(shardAdjacency{&s.lanes[sh]}); err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return s.sharded.VerifyLoads()
}
