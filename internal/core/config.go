// Package core implements the paper's round-based distributed
// video-on-demand engine: box state machines, the preloading request
// strategy of Section 3, the relayed strategy for deficient boxes of
// Section 4, per-round construction of the request-to-box bipartite graph
// of Section 2.2, connection matching (Lemma 1) via an incremental
// b-matcher, and obstruction detection with min-cut certificates.
//
// Time is discrete rounds; bandwidth is measured in stripe slots: one slot
// is the rate 1/c of a single stripe, and a box with normalized upload u_b
// serves ⌊u_b·c⌋ slots per round (the paper's effective upload u′).
package core

import (
	"fmt"
	"math"

	"repro/internal/allocation"
	"repro/internal/analysis"
	"repro/internal/video"
)

// Strategy selects how an admitted demand is turned into stripe requests.
type Strategy int

const (
	// StrategyPreload is the paper's Section 3 strategy: one preload
	// request at admission round t (stripe chosen round-robin per swarm),
	// the c−1 postponed requests at t+1. Start-up delay 3 rounds.
	StrategyPreload Strategy = iota
	// StrategyNaive requests all c stripes at admission time. It lacks the
	// preloading stagger and is the ablation baseline that breaks under
	// flash crowds (experiment E5 context).
	StrategyNaive
	// StrategyRelayed is the Section 4 heterogeneous strategy: poor boxes
	// (u_b < u*) route their preload and part of their postponed requests
	// through a reserved relay box; rich boxes postpone at t+2. The
	// request time scale doubles.
	StrategyRelayed
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyPreload:
		return "preload"
	case StrategyNaive:
		return "naive"
	case StrategyRelayed:
		return "relayed"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// FailurePolicy selects what a round with unmatched requests does.
type FailurePolicy int

const (
	// FailStop halts the simulation at the first obstruction — the strict
	// interpretation used to validate the theorems (any obstruction
	// falsifies "any sequence of demands can be satisfied").
	FailStop FailurePolicy = iota
	// FailStall lets unmatched requests stall (no progress this round) and
	// keeps running, counting stall-rounds — the resilient interpretation
	// used for realistic workloads and the protocol-gap experiment.
	FailStall
)

// String implements fmt.Stringer.
func (f FailurePolicy) String() string {
	if f == FailStop {
		return "stop"
	}
	return "stall"
}

// NoRelay marks a box without a relay in Config.Relays.
const NoRelay = -1

// Config assembles a runnable video system.
type Config struct {
	// Alloc is the static stripe allocation; it defines the catalog and
	// the number of boxes.
	Alloc *allocation.Allocation
	// Uploads holds the normalized upload capacity u_b of each box.
	Uploads []float64
	// Mu is the maximal swarm growth per round (µ ≥ 1).
	Mu float64
	// Strategy selects the request strategy (default StrategyPreload).
	Strategy Strategy
	// Failure selects the failure policy (default FailStop).
	Failure FailurePolicy
	// DisableCacheServing turns off swarming: only allocation boxes serve.
	// This is the sourcing-only baseline of experiment E9.
	DisableCacheServing bool
	// Relays assigns a relay box to each poor box for StrategyRelayed
	// (NoRelay otherwise). Built by package hetero.
	Relays []int
	// UStar is the deficiency threshold u* for StrategyRelayed.
	UStar float64
	// Paranoid enables per-round matching verification (tests).
	Paranoid bool
	// NaiveAvailability selects the retained linear-scan reference
	// availability store instead of the indexed one (which also implies
	// SweepRevalidation — the naive store emits no invalidation events).
	// It exists for the differential tests and ablations; production runs
	// leave it false.
	NaiveAvailability bool
	// SweepRevalidation forces the full per-round Revalidate sweep over
	// all assigned requests instead of event-driven targeted invalidation.
	// The reference path for differential tests and ablations; production
	// runs leave it false.
	SweepRevalidation bool
	// Shards partitions the round's hot stages (expiry, targeted
	// invalidation, certificate rechecks, matching) across this many
	// concurrent shards keyed by stripe group (stripe mod Shards). The
	// deterministic merge phase makes StepResult — including obstruction
	// certificates — bit-identical at every shard count, so Shards is a
	// pure throughput knob. 0 or 1 selects the serial engine.
	Shards int
	// LazyShardRights defers sub-matcher right-space registration to
	// first touch instead of pre-registering every (shard, holder) pair
	// from the allocation at construction. Pre-registration (the default)
	// eliminates the per-round lazy-growth allocations that fresh-video
	// churn otherwise causes on the sharded engine; the lazy mode exists
	// for populations so large that materializing ~Shards×Boxes right
	// records up front would dominate memory (see
	// BenchmarkStepTenMillionBoxes). Results are identical either way —
	// registration order only renames shard-local right ids.
	LazyShardRights bool
	// SerialAugment selects the matcher's retained per-root augmentation
	// reference instead of blocking-flow batch phases. Both reach a
	// maximum matching every round (equal cardinality, possibly different
	// assignments); the serial path exists for differential tests and
	// ablations, and production runs leave it false.
	SerialAugment bool
	// TraceRounds records per-round statistics in the report when true.
	TraceRounds bool
}

// validate checks the configuration and derives per-box matcher slot
// capacities (upload slots minus static relay reservations).
func (cfg *Config) validate() ([]int64, error) {
	if cfg.Alloc == nil {
		return nil, fmt.Errorf("core: config needs an allocation")
	}
	n := cfg.Alloc.NumBoxes()
	if len(cfg.Uploads) != n {
		return nil, fmt.Errorf("core: %d uploads for %d boxes", len(cfg.Uploads), n)
	}
	if cfg.Mu < 1 {
		return nil, fmt.Errorf("core: µ=%v must be at least 1", cfg.Mu)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: shards=%d must be non-negative", cfg.Shards)
	}
	cat := cfg.Alloc.Catalog()
	if cfg.Shards > cat.NumStripes() {
		// Stripes partition across shards (stripe mod Shards); more shards
		// than stripes leaves permanently empty lanes that still cost a
		// parked worker and a dispatch each round.
		return nil, fmt.Errorf("core: shards=%d exceeds the catalog's %d stripes; empty shards would be idle weight",
			cfg.Shards, cat.NumStripes())
	}
	caps := make([]int64, n)
	for b, u := range cfg.Uploads {
		if u < 0 {
			return nil, fmt.Errorf("core: box %d has negative upload %v", b, u)
		}
		caps[b] = int64(analysis.UploadSlots(u, cat.C))
	}
	switch cfg.Strategy {
	case StrategyPreload, StrategyNaive:
		if cfg.Relays != nil {
			return nil, fmt.Errorf("core: relays require StrategyRelayed")
		}
	case StrategyRelayed:
		if cfg.UStar <= 1 {
			return nil, fmt.Errorf("core: StrategyRelayed needs u* > 1, got %v", cfg.UStar)
		}
		if len(cfg.Relays) != n {
			return nil, fmt.Errorf("core: %d relays for %d boxes", len(cfg.Relays), n)
		}
		// Subtract the static forwarding reservation (c − c_b slots per
		// assigned poor box) from each relay's matching capacity.
		for b, r := range cfg.Relays {
			poor := cfg.Uploads[b] < cfg.UStar
			if r == NoRelay {
				if poor {
					return nil, fmt.Errorf("core: poor box %d (u=%v < u*=%v) has no relay",
						b, cfg.Uploads[b], cfg.UStar)
				}
				continue
			}
			if !poor {
				return nil, fmt.Errorf("core: rich box %d must not have a relay", b)
			}
			if r < 0 || r >= n || r == b {
				return nil, fmt.Errorf("core: box %d has invalid relay %d", b, r)
			}
			if cfg.Uploads[r] < cfg.UStar {
				return nil, fmt.Errorf("core: relay %d of box %d is itself poor", r, b)
			}
			cb := directStripeCount(cfg.Uploads[b], cat.C, cfg.Mu)
			caps[r] -= int64(cat.C - cb)
			if caps[r] < 0 {
				return nil, fmt.Errorf("core: relay %d over-reserved (capacity went negative); use a feasible compensation assignment", r)
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
	}
	return caps, nil
}

// directStripeCount returns c_b = clamp(⌊c·u_b − 4µ⁴⌋, 0, c−1): the number
// of postponed stripes a poor box fetches directly (Section 4).
func directStripeCount(ub float64, c int, mu float64) int {
	cb := int(math.Floor(ub*float64(c) - 4*math.Pow(mu, 4)))
	if cb < 0 {
		cb = 0
	}
	if cb > c-1 {
		cb = c - 1
	}
	return cb
}

// Demand is a user request: box wants to watch video. Born optionally
// records the round the user first asked (for start-up delay accounting
// across admission retries); zero or negative means "this round".
type Demand struct {
	Box   int
	Video video.ID
	Born  int
}

// Generator produces the demand sequence, one batch per round. It sees a
// read-only View of the system, which is how adversarial generators pick
// their targets.
type Generator interface {
	// Next returns the demands arriving during round `round`. Demands the
	// system cannot admit (busy box, swarm growth bound) are reported back
	// through the View on the next call via rejection counters; generators
	// that need retry semantics track their own pending sets.
	Next(v *View, round int) []Demand
}
