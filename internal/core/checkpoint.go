package core

// Checkpoint serialization of the full engine state, versioned and pinned
// to the configuration by a fingerprint. The contract is bit-identical
// resumption: a System restored from a checkpoint must produce exactly the
// StepResults, obstruction certificates, and failure rounds of the
// uncheckpointed run, at every shard count (enforced by the round-trip
// differential in checkpoint_test.go). That dictates the same discipline
// used in the bipartite and swarm encoders:
//
//   - Everything whose *order* the engine observes is written verbatim:
//     the live-request list (sweep order), slot free list (pop order
//     drives id reuse, which drives availability-list order, which drives
//     matcher visit order), the idle-box list (VisitIdle order), pending
//     and recheck ring buckets, and the availability slab with its
//     intrusive links (entry ids and chain order are behavior).
//   - Derived state is rebuilt on decode (back-pointers, counts, total
//     slots), re-validating invariants instead of trusting two copies.
//   - Volatile round scratch (event logs, assignment logs, candidate
//     buffers) is drained within every Step, so between rounds — the only
//     place a checkpoint may be taken — it is empty and not written; the
//     matcher touch logs and capacity-dirty window are the exception
//     (SetCapacity between rounds populates them) and live in the
//     bipartite encoder.
//
// Generators are external inputs and are NOT part of the checkpoint: the
// caller restarts the demand feed (a daemon's HTTP stream, a test's
// scripted schedule) alongside the restored system.

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"fmt"

	"repro/internal/ckpt"
	"repro/internal/video"
)

// coreStateVersion stamps the engine-state layout. Bump on any change to
// the field order or meaning below; restore refuses other versions.
const coreStateVersion = 1

// Fingerprint hashes the configuration facets the serialized state is
// only meaningful under: population, catalog, allocation contents, engine
// mode flags, and the capacity-shaping parameters. Restoring under a
// different fingerprint is refused — the state would silently diverge.
func (s *System) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(s.n))
	put(uint64(s.numShards))
	put(uint64(s.cat.M))
	put(uint64(s.cat.C))
	put(uint64(s.cat.T))
	put(uint64(s.cfg.Strategy))
	put(uint64(s.cfg.Failure))
	flags := uint64(0)
	if s.eventDriven {
		flags |= 1
	}
	if s.cfg.NaiveAvailability {
		flags |= 2
	}
	if s.cfg.DisableCacheServing {
		flags |= 4
	}
	if s.cfg.SerialAugment {
		flags |= 8
	}
	put(flags)
	put(math.Float64bits(s.cfg.Mu))
	put(math.Float64bits(s.cfg.UStar))
	for _, u := range s.cfg.Uploads {
		put(math.Float64bits(u))
	}
	for _, r := range s.cfg.Relays {
		put(uint64(int64(r)))
	}
	for _, holders := range s.cfg.Alloc.ByStripe {
		put(uint64(len(holders)))
		for _, b := range holders {
			put(uint64(uint32(b)))
		}
	}
	return h.Sum64()
}

// EncodeState serializes the complete engine state. Checkpoints must be
// taken between Steps (never mid-round); the daemon serializes behind its
// round mutex, and tests checkpoint after a Step returns.
func (s *System) EncodeState(w *ckpt.Writer) error {
	w.U64(coreStateVersion)
	w.U64(s.Fingerprint())
	w.Int(s.round)
	w.Bool(s.failed)

	w.Int(len(s.reqStripe))
	for _, st := range s.reqStripe {
		w.I32(int32(st))
	}
	w.I32s(s.reqStart)
	w.I32s(s.reqBox)
	w.I32s(s.reqViewer)
	w.I32s(s.reqProgress)
	w.Bools(s.reqActive)
	w.I32s(s.freeSlots)
	w.I32s(s.activeList)

	for b := range s.boxes {
		w.I32(s.boxes[b].outstanding)
		w.I32(s.boxes[b].capSlots)
		w.Bool(s.boxes[b].busy)
	}
	w.I32s(s.idleList)

	for _, bucket := range s.pendingRing {
		w.Int(len(bucket))
		for _, iss := range bucket {
			w.Int(iss.round)
			w.I32(int32(iss.stripe))
			w.I32(iss.requester)
			w.I32(iss.viewer)
			w.I32(iss.mirror)
		}
	}

	w.Bool(s.needSweep)
	encodeRing(w, s.recheckRing)
	for i := range s.lanes {
		encodeRing(w, s.lanes[i].recheckRing)
	}

	if s.sharded != nil {
		s.sharded.EncodeState(w)
	} else {
		s.matcher.EncodeState(w)
	}
	s.avail.encodeState(w)
	s.tracker.EncodeState(w)
	s.metrics.encode(w)
	return w.Err()
}

// DecodeState restores state written by EncodeState into a freshly
// constructed System built from the identical Config (same allocation,
// uploads, mode flags, shard count — enforced by the fingerprint).
func (s *System) DecodeState(r *ckpt.Reader) error {
	if v := r.U64(); v != coreStateVersion {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("core: checkpoint state version %d, this build reads %d", v, coreStateVersion)
	}
	if fp := r.U64(); fp != s.Fingerprint() {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("core: checkpoint fingerprint %016x does not match configuration %016x",
			fp, s.Fingerprint())
	}
	s.round = r.Int()
	s.failed = r.Bool()

	nSlots := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nSlots < 0 || nSlots > math.MaxInt32 {
		return fmt.Errorf("core: checkpoint slot count %d out of range", nSlots)
	}
	s.reqStripe = make([]video.StripeID, nSlots)
	for i := range s.reqStripe {
		s.reqStripe[i] = video.StripeID(r.I32())
	}
	s.reqStart = r.I32s()
	s.reqBox = r.I32s()
	s.reqViewer = r.I32s()
	s.reqProgress = r.I32s()
	s.reqActive = r.Bools()
	s.freeSlots = r.I32s()
	s.activeList = r.I32s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(s.reqStart) != nSlots || len(s.reqBox) != nSlots || len(s.reqViewer) != nSlots ||
		len(s.reqProgress) != nSlots || len(s.reqActive) != nSlots {
		return fmt.Errorf("core: checkpoint slot arrays disagree on length")
	}
	s.posInActive = make([]int32, nSlots)
	for i := range s.posInActive {
		s.posInActive[i] = -1
	}
	for pos, slot := range s.activeList {
		if slot < 0 || int(slot) >= nSlots || !s.reqActive[slot] {
			return fmt.Errorf("core: checkpoint live list holds invalid slot %d", slot)
		}
		s.posInActive[slot] = int32(pos)
	}
	s.activeReqs = len(s.activeList)

	s.totalSlots = 0
	for b := range s.boxes {
		s.boxes[b].outstanding = r.I32()
		s.boxes[b].capSlots = r.I32()
		s.boxes[b].busy = r.Bool()
		s.boxes[b].idlePos = -1
		s.totalSlots += int64(s.boxes[b].capSlots)
	}
	s.idleList = r.I32s()
	s.idleBits.initEmpty(s.n)
	for pos, b := range s.idleList {
		if b < 0 || int(b) >= s.n || s.boxes[b].busy {
			return fmt.Errorf("core: checkpoint idle list holds invalid box %d", b)
		}
		s.boxes[b].idlePos = int32(pos)
		s.idleBits.set(b)
	}

	for i := range s.pendingRing {
		n := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if n < 0 || n > math.MaxInt32 {
			return fmt.Errorf("core: checkpoint pending bucket length %d out of range", n)
		}
		bucket := make([]issuance, n)
		for j := range bucket {
			bucket[j] = issuance{
				round:     r.Int(),
				stripe:    video.StripeID(r.I32()),
				requester: r.I32(),
				viewer:    r.I32(),
				mirror:    r.I32(),
			}
		}
		s.pendingRing[i] = bucket
	}

	s.needSweep = r.Bool()
	if err := decodeRing(r, s.recheckRing); err != nil {
		return err
	}
	for i := range s.lanes {
		if err := decodeRing(r, s.lanes[i].recheckRing); err != nil {
			return err
		}
	}

	if s.sharded != nil {
		if err := s.sharded.DecodeState(r); err != nil {
			return err
		}
	} else {
		if err := s.matcher.DecodeState(r); err != nil {
			return err
		}
	}
	if err := s.avail.decodeState(r); err != nil {
		return err
	}
	if err := s.tracker.DecodeState(r); err != nil {
		return err
	}
	if err := s.metrics.decode(r); err != nil {
		return err
	}
	return r.Err()
}

// encodeRing writes a recheck ring (bucket count, then each bucket in
// order). A nil ring — sweep mode, or the other engine's half — writes
// zero buckets.
func encodeRing(w *ckpt.Writer, ring [][]int32) {
	w.Int(len(ring))
	for _, bucket := range ring {
		w.I32s(bucket)
	}
}

// decodeRing restores a ring written by encodeRing in place; the bucket
// count is fixed at construction and must match.
func decodeRing(r *ckpt.Reader, ring [][]int32) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(ring) {
		return fmt.Errorf("core: checkpoint recheck ring has %d buckets, engine has %d", n, len(ring))
	}
	for i := range ring {
		ring[i] = r.I32s()
	}
	return nil
}

// encodeEntry / decodeEntry serialize one playback-cache record.
func encodeEntry(w *ckpt.Writer, e *entry) {
	w.I32(e.box)
	w.I32(e.start)
	w.I32(e.req)
	w.I32(e.lag)
	w.I32(e.frozen)
}

func decodeEntry(r *ckpt.Reader) entry {
	return entry{box: r.I32(), start: r.I32(), req: r.I32(), lag: r.I32(), frozen: r.I32()}
}

func (na *naiveAvailability) encodeState(w *ckpt.Writer) {
	w.Int(len(na.entries))
	for st := range na.entries {
		es := na.entries[st]
		w.Int(len(es))
		for i := range es {
			encodeEntry(w, &es[i])
		}
	}
}

func (na *naiveAvailability) decodeState(r *ckpt.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(na.entries) {
		return fmt.Errorf("core: checkpoint has %d stripes, store has %d", n, len(na.entries))
	}
	for st := range na.entries {
		k := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if k < 0 || k > math.MaxInt32 {
			return fmt.Errorf("core: checkpoint stripe %d entry count %d out of range", st, k)
		}
		es := make([]entry, k)
		for i := range es {
			es[i] = decodeEntry(r)
		}
		na.entries[st] = es
	}
	return r.Err()
}

// encodeState writes the indexed store raw: the slab with its intrusive
// links (freed slots included — slab ids are behavior: the free-list pop
// order decides id reuse, id order decides list positions, list positions
// decide matcher visit order), the per-stripe heads, per-shard free lists
// and expiry ring buckets in order, and the key index as unordered pairs
// (map iteration makes checkpoint *bytes* nondeterministic; restored
// *behavior* is not, since chain order lives in nextKey links).
func (ix *indexedAvailability) encodeState(w *ckpt.Writer) {
	w.Int(len(ix.slab))
	for i := range ix.slab {
		e := &ix.slab[i]
		encodeEntry(w, &e.entry)
		w.I32(int32(e.stripe))
		w.I32(e.next)
		w.I32(e.prev)
		w.I32(e.nextKey)
		w.I32(e.boxLocal)
	}
	w.I32s(ix.byStripe)
	w.I32s(ix.liveCount)
	w.Int(len(ix.reqLinks))
	for i := range ix.reqLinks {
		w.I32(ix.reqLinks[i][0])
		w.I32(ix.reqLinks[i][1])
	}
	w.Int(ix.numShards)
	for sh := 0; sh < ix.numShards; sh++ {
		w.I32s(ix.frees[sh])
		w.Int(len(ix.byKeys[sh]))
		for key, id := range ix.byKeys[sh] {
			w.U64(key)
			w.I32(id)
		}
		ring := ix.rings[sh]
		w.Int(len(ring))
		for _, bucket := range ring {
			w.I32s(bucket)
		}
		log := ix.eventLogs[sh]
		w.Int(len(log))
		for _, ev := range log {
			w.I32(int32(ev.stripe))
			w.I32(ev.box)
		}
	}
}

func (ix *indexedAvailability) decodeState(r *ckpt.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 || n > math.MaxInt32 {
		return fmt.Errorf("core: checkpoint slab size %d out of range", n)
	}
	ix.slab = make([]idxEntry, n)
	for i := range ix.slab {
		ix.slab[i] = idxEntry{
			entry:    decodeEntry(r),
			stripe:   video.StripeID(r.I32()),
			next:     r.I32(),
			prev:     r.I32(),
			nextKey:  r.I32(),
			boxLocal: r.I32(),
		}
	}
	byStripe := r.I32s()
	liveCount := r.I32s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(byStripe) != len(ix.byStripe) || len(liveCount) != len(ix.liveCount) {
		return fmt.Errorf("core: checkpoint has %d stripes, store has %d", len(byStripe), len(ix.byStripe))
	}
	ix.byStripe = byStripe
	ix.liveCount = liveCount
	nLinks := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nLinks < 0 || nLinks > math.MaxInt32 {
		return fmt.Errorf("core: checkpoint request-link count %d out of range", nLinks)
	}
	ix.reqLinks = make([][2]int32, nLinks)
	for i := range ix.reqLinks {
		ix.reqLinks[i] = [2]int32{r.I32(), r.I32()}
	}
	if S := r.Int(); S != ix.numShards {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("core: checkpoint store has %d shards, engine has %d", S, ix.numShards)
	}
	for sh := 0; sh < ix.numShards; sh++ {
		ix.frees[sh] = r.I32s()
		nKeys := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if nKeys < 0 || nKeys > math.MaxInt32 {
			return fmt.Errorf("core: checkpoint key count %d out of range", nKeys)
		}
		byKey := make(map[uint64]int32, nKeys)
		for i := 0; i < nKeys; i++ {
			key := r.U64()
			byKey[key] = r.I32()
		}
		ix.byKeys[sh] = byKey
		nBuckets := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if nBuckets != len(ix.rings[sh]) {
			return fmt.Errorf("core: checkpoint expiry ring has %d buckets, store has %d",
				nBuckets, len(ix.rings[sh]))
		}
		for b := range ix.rings[sh] {
			ix.rings[sh][b] = r.I32s()
		}
		nEvents := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if nEvents < 0 || nEvents > math.MaxInt32 {
			return fmt.Errorf("core: checkpoint event count %d out of range", nEvents)
		}
		log := make([]availEvent, nEvents)
		for i := range log {
			log[i] = availEvent{stripe: video.StripeID(r.I32()), box: r.I32()}
		}
		ix.eventLogs[sh] = log
	}
	return r.Err()
}

func (m *runMetrics) encode(w *ckpt.Writer) {
	w.I64(m.demands)
	w.I64(m.admitted)
	w.I64(m.rejectedBusy)
	w.I64(m.rejectedSwarm)
	w.I64(m.stalls)
	w.I64(m.completedViewings)
	w.Int(m.failRound)
	w.Int(m.peakRequests)
	w.Int(len(m.obstructions))
	for _, ob := range m.obstructions {
		w.Int(ob.Round)
		w.Int(ob.Requests)
		w.Int(ob.DistinctStripes)
		w.Int(ob.Boxes)
		w.I64(ob.Slots)
	}
	w.F64s(m.startupDelays)
	w.F64(m.utilSum)
	w.I64(m.utilRounds)
	w.Int(m.maxSwarmEver)
	w.Int(len(m.trace))
	for _, rs := range m.trace {
		w.Int(rs.Round)
		w.Int(rs.ActiveReqs)
		w.Int(rs.Matched)
		w.Int(rs.Unmatched)
		w.Int(rs.Viewers)
		w.Int(rs.ActiveSwarm)
		w.Int(rs.MaxSwarm)
		w.F64(rs.Utilization)
	}
	w.I64(m.preloadReqs)
	w.I64(m.postponedReqs)
	w.I64(m.relayedReqs)
	w.I64(m.skippedSelf)
}

func (m *runMetrics) decode(r *ckpt.Reader) error {
	m.demands = r.I64()
	m.admitted = r.I64()
	m.rejectedBusy = r.I64()
	m.rejectedSwarm = r.I64()
	m.stalls = r.I64()
	m.completedViewings = r.I64()
	m.failRound = r.Int()
	m.peakRequests = r.Int()
	nObs := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nObs < 0 || nObs > math.MaxInt32 {
		return fmt.Errorf("core: checkpoint obstruction count %d out of range", nObs)
	}
	m.obstructions = make([]Obstruction, nObs)
	for i := range m.obstructions {
		m.obstructions[i] = Obstruction{
			Round:           r.Int(),
			Requests:        r.Int(),
			DistinctStripes: r.Int(),
			Boxes:           r.Int(),
			Slots:           r.I64(),
		}
	}
	m.startupDelays = r.F64s()
	m.utilSum = r.F64()
	m.utilRounds = r.I64()
	m.maxSwarmEver = r.Int()
	nTrace := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nTrace < 0 || nTrace > math.MaxInt32 {
		return fmt.Errorf("core: checkpoint trace length %d out of range", nTrace)
	}
	m.trace = make([]RoundStats, nTrace)
	for i := range m.trace {
		m.trace[i] = RoundStats{
			Round:       r.Int(),
			ActiveReqs:  r.Int(),
			Matched:     r.Int(),
			Unmatched:   r.Int(),
			Viewers:     r.Int(),
			ActiveSwarm: r.Int(),
			MaxSwarm:    r.Int(),
			Utilization: r.F64(),
		}
	}
	m.preloadReqs = r.I64()
	m.postponedReqs = r.I64()
	m.relayedReqs = r.I64()
	m.skippedSelf = r.I64()
	return r.Err()
}
