package swarm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/video"
)

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker(3, 10, 2)
	tr.BeginRound(0)
	if tr.Size(0) != 0 || tr.ActiveSwarms() != 0 {
		t.Fatal("fresh tracker not empty")
	}
	// Empty swarm: allowance ⌈1·2⌉ = 2.
	if a := tr.Allowance(0); a != 2 {
		t.Fatalf("allowance = %d, want 2", a)
	}
	if _, err := tr.Enter(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Enter(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Enter(0, 4); err == nil {
		t.Fatal("third entry should exceed growth bound")
	}
	if tr.Size(0) != 2 || tr.EnteredThisRound(0) != 2 {
		t.Fatalf("size=%d entered=%d", tr.Size(0), tr.EnteredThisRound(0))
	}
}

func TestGrowthSequence(t *testing.T) {
	// µ=2: sizes can at most double (rounded up) each round.
	tr := NewTracker(1, 100, 2)
	expect := []int{2, 4, 8, 16, 32}
	for round, want := range expect {
		tr.BeginRound(round)
		admitted := 0
		for tr.Allowance(0) > 0 {
			if _, err := tr.Enter(0, 4); err != nil {
				t.Fatal(err)
			}
			admitted++
		}
		if tr.Size(0) != want {
			t.Fatalf("round %d: size %d, want %d", round, tr.Size(0), want)
		}
		_ = admitted
	}
}

func TestFractionalGrowth(t *testing.T) {
	// µ=1.5 from size 1: ⌈1.5⌉=2, ⌈3⌉=3, ⌈4.5⌉=5...
	tr := NewTracker(1, 100, 1.5)
	tr.BeginRound(0)
	tr.Enter(0, 4)
	sizes := []int{2, 3, 5, 8, 12}
	for i, want := range sizes {
		tr.BeginRound(i + 1)
		for tr.Allowance(0) > 0 {
			tr.Enter(0, 4)
		}
		if tr.Size(0) != want {
			t.Fatalf("round %d: size %d, want %d", i+1, tr.Size(0), want)
		}
	}
}

func TestExpiry(t *testing.T) {
	tr := NewTracker(1, 5, 4)
	tr.BeginRound(0)
	tr.Enter(0, 2)
	tr.Enter(0, 2)
	for r := 1; r < 5; r++ {
		tr.BeginRound(r)
		if tr.Size(0) != 2 {
			t.Fatalf("round %d: size %d, want 2", r, tr.Size(0))
		}
	}
	tr.BeginRound(5) // entries at round 0 expire when 0+5 <= 5
	if tr.Size(0) != 0 {
		t.Fatalf("expired members linger: size %d", tr.Size(0))
	}
}

func TestExpiryFreesAllowance(t *testing.T) {
	tr := NewTracker(1, 3, 1) // µ=1 exactly: a swarm can never exceed 1
	tr.BeginRound(0)
	if _, err := tr.Enter(0, 2); err != nil {
		t.Fatal(err)
	}
	tr.BeginRound(1)
	if tr.Allowance(0) != 0 {
		t.Fatal("µ=1 should not allow growth beyond 1")
	}
	tr.BeginRound(3) // member expires (0+3 <= 3)
	// prev size was 1, allowance = ⌈1·1⌉ − 0 = 1: a fresh entry is legal.
	if _, err := tr.Enter(0, 2); err != nil {
		t.Fatalf("entry after expiry refused: %v", err)
	}
}

func TestRoundRobinCounter(t *testing.T) {
	tr := NewTracker(2, 100, 16)
	tr.BeginRound(0)
	c := 4
	var got []int
	for i := 0; i < 6; i++ {
		idx, err := tr.Enter(0, c)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, idx)
	}
	want := []int{0, 1, 2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("preload sequence %v, want %v", got, want)
		}
	}
	// Independent counter for other videos.
	if idx, _ := tr.Enter(1, c); idx != 0 {
		t.Fatalf("video 1 counter should start at 0, got %d", idx)
	}
	if tr.Counter(0) != 6 || tr.Counter(1) != 1 {
		t.Fatalf("counters: %d, %d", tr.Counter(0), tr.Counter(1))
	}
}

func TestAggregates(t *testing.T) {
	tr := NewTracker(3, 10, 4)
	tr.BeginRound(0)
	tr.Enter(0, 2)
	tr.Enter(0, 2)
	tr.Enter(2, 2)
	if tr.ActiveSwarms() != 2 {
		t.Errorf("ActiveSwarms = %d", tr.ActiveSwarms())
	}
	if tr.TotalViewers() != 3 {
		t.Errorf("TotalViewers = %d", tr.TotalViewers())
	}
	if tr.MaxSize() != 2 {
		t.Errorf("MaxSize = %d", tr.MaxSize())
	}
}

func TestPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewTracker(0, 10, 2) },
		func() { NewTracker(1, 0, 2) },
		func() { NewTracker(1, 10, 0.5) },
		func() {
			tr := NewTracker(1, 10, 2)
			tr.BeginRound(5)
			tr.BeginRound(3)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: under greedy admission, the measured growth never exceeds
// ⌈max{f,1}·µ⌉ at any round.
func TestQuickGrowthBoundHolds(t *testing.T) {
	f := func(seed uint64, muRaw uint8) bool {
		mu := 1 + float64(muRaw%30)/10 // 1.0 .. 3.9
		tr := NewTracker(1, 1000, mu)  // long T: no expiry interference
		prev := 0
		x := seed
		for round := 0; round < 12; round++ {
			tr.BeginRound(round)
			// Admit a pseudo-random number of entries up to the allowance.
			x = x*6364136223846793005 + 1442695040888963407
			want := int(x % 7)
			for i := 0; i < want && tr.Allowance(0) > 0; i++ {
				if _, err := tr.Enter(0, 4); err != nil {
					return false
				}
			}
			base := prev
			if base < 1 {
				base = 1
			}
			if tr.Size(0) > int(math.Ceil(float64(base)*mu)) {
				return false
			}
			prev = tr.Size(0)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Enter never over-admits — Allowance is consistent with Enter's
// error behaviour.
func TestQuickAllowanceConsistent(t *testing.T) {
	f := func(muRaw uint8) bool {
		mu := 1 + float64(muRaw%20)/10
		tr := NewTracker(1, 100, mu)
		tr.BeginRound(0)
		for tr.Allowance(0) > 0 {
			if _, err := tr.Enter(0, 3); err != nil {
				return false
			}
		}
		_, err := tr.Enter(0, 3)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestHotVideoQueueBounded pins the memberQueue compaction: a video with
// arrivals every round for many membership windows must keep its expiry
// queue proportional to live members, not to total entries ever admitted.
func TestHotVideoQueueBounded(t *testing.T) {
	const T = 10
	tr := NewTracker(2, T, 4.0)
	for round := 1; round <= 5000; round++ {
		tr.BeginRound(round)
		for tr.Allowance(0) > 0 && tr.EnteredThisRound(0) < 3 {
			if _, err := tr.Enter(0, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := &tr.expiry[0]
	if live := len(q.rounds) - q.head; live != tr.Size(0) {
		t.Fatalf("queue live length %d != swarm size %d", live, tr.Size(0))
	}
	// 3 entries/round for T rounds live at once; the backing array must be
	// within a small constant of that, not ~15000.
	if cap(q.rounds) > 16*3*T {
		t.Fatalf("queue backing array grew to %d for %d live members", cap(q.rounds), tr.Size(0))
	}
}

// TestMaxSizeEver pins the incremental peak against per-round MaxSize.
func TestMaxSizeEver(t *testing.T) {
	tr := NewTracker(3, 4, 2.0)
	peak := 0
	for round := 1; round <= 40; round++ {
		tr.BeginRound(round)
		v := video.ID(round % 3)
		for tr.Allowance(v) > 0 && tr.EnteredThisRound(v) < 2 {
			if _, err := tr.Enter(v, 4); err != nil {
				t.Fatal(err)
			}
		}
		if ms := tr.MaxSize(); ms > peak {
			peak = ms
		}
	}
	if tr.MaxSizeEver() != peak {
		t.Fatalf("MaxSizeEver = %d, per-round peak = %d", tr.MaxSizeEver(), peak)
	}
}
