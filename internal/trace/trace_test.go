package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/allocation"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/video"
)

func buildSystem(t *testing.T, seed uint64) *core.System {
	t.Helper()
	alloc, _, err := allocation.HomogeneousPermutation(stats.NewRNG(seed), 20, 2, 4, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]float64, 20)
	for i := range uploads {
		uploads[i] = 2.5
	}
	sys, err := core.NewSystem(core.Config{Alloc: alloc, Uploads: uploads, Mu: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRecordAndReplayIdentical(t *testing.T) {
	// Record a run, replay it on an identically-built system: reports must
	// agree exactly.
	rec := NewRecorder(&adversary.Zipf{RNG: stats.NewRNG(5), P: 0.4, S: 0.9})
	sys1 := buildSystem(t, 3)
	rep1, err := sys1.Run(rec, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Trace.Len() == 0 {
		t.Fatal("nothing recorded")
	}

	sys2 := buildSystem(t, 3)
	rep2, err := sys2.Run(NewReplayer(&rec.Trace), 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Admitted != rep2.Admitted || rep1.CompletedViewings != rep2.CompletedViewings ||
		rep1.MeanUtilization != rep2.MeanUtilization {
		t.Fatalf("replay diverged: %+v vs %+v", rep1, rep2)
	}
}

func TestReplayOnDifferentAllocation(t *testing.T) {
	// The point of traces: same demands, different allocation seed.
	rec := NewRecorder(&adversary.Zipf{RNG: stats.NewRNG(5), P: 0.4, S: 0.9})
	sys1 := buildSystem(t, 3)
	if _, err := sys1.Run(rec, 60); err != nil {
		t.Fatal(err)
	}
	sys2 := buildSystem(t, 99) // different allocation
	rep2, err := sys2.Run(NewReplayer(&rec.Trace), 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Demands != int64(rec.Trace.Len()) {
		t.Fatalf("replayed %d demands, trace has %d", rep2.Demands, rec.Trace.Len())
	}
}

func TestRewind(t *testing.T) {
	tr := &Trace{Events: []Event{{Round: 1, Box: 0, Video: 0}}}
	r := NewReplayer(tr)
	if got := r.Next(nil, 1); len(got) != 1 {
		t.Fatalf("first pass: %v", got)
	}
	if got := r.Next(nil, 1); len(got) != 0 {
		t.Fatalf("exhausted replayer emitted: %v", got)
	}
	r.Rewind()
	if got := r.Next(nil, 1); len(got) != 1 {
		t.Fatalf("after rewind: %v", got)
	}
}

func TestReplayDropsStaleEvents(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Round: 1, Box: 0, Video: 0},
		{Round: 5, Box: 1, Video: 1},
	}}
	r := NewReplayer(tr)
	// Replay starts at round 3: the round-1 event is stale and dropped.
	if got := r.Next(nil, 3); len(got) != 0 {
		t.Fatalf("stale event emitted: %v", got)
	}
	if got := r.Next(nil, 5); len(got) != 1 || got[0].Box != 1 {
		t.Fatalf("round-5 event wrong: %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := &Trace{
		Meta: "test workload",
		Events: []Event{
			{Round: 1, Box: 3, Video: 7, Born: 1},
			{Round: 2, Box: 4, Video: 1},
		},
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != tr.Meta || got.Len() != tr.Len() {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"events":[{"round":-1,"box":0,"video":0}]}`)); err == nil {
		t.Fatal("negative round accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Round: 1, Box: 3, Video: 7, Born: 1},
		{Round: 2, Box: 4, Video: 1},
		{Round: 2, Box: 5, Video: 2},
	}}
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("lost events: %d", got.Len())
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",                              // no header
		"x,y\n1,2",                      // wrong header
		"round,box,video,born\n1,2",     // wrong arity
		"round,box,video,born\na,b,c,d", // non-numeric
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRoundsOrderIndependent(t *testing.T) {
	// Rounds must report the max round even on traces that were never
	// normalized (hand-built or concatenated): it used to return the *last*
	// event's round, under-reporting whenever a late event carried an
	// earlier round.
	tr := &Trace{Events: []Event{
		{Round: 9, Box: 0, Video: 0},
		{Round: 2, Box: 1, Video: 1},
	}}
	if got := tr.Rounds(); got != 9 {
		t.Fatalf("Rounds() = %d on unsorted trace, want 9", got)
	}
	if s := tr.Summarize(); s.Rounds != 9 {
		t.Fatalf("Summarize().Rounds = %d on unsorted trace, want 9", s.Rounds)
	}
	tr.Normalize()
	if got := tr.Rounds(); got != 9 {
		t.Fatalf("Rounds() = %d after Normalize, want 9", got)
	}
	if got := (&Trace{}).Rounds(); got != 0 {
		t.Fatalf("empty Rounds() = %d, want 0", got)
	}
}

func TestCSVReadsCRLF(t *testing.T) {
	// Windows-written or re-exported files terminate lines with \r\n; the
	// stray \r used to reach strconv.Atoi on the last field.
	in := "round,box,video,born\r\n1,3,7,1\r\n2,4,1,0\r\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Round: 1, Box: 3, Video: 7, Born: 1},
		{Round: 2, Box: 4, Video: 1},
	}
	if got.Len() != len(want) {
		t.Fatalf("parsed %d events, want %d", got.Len(), len(want))
	}
	for i := range want {
		if got.Events[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], want[i])
		}
	}
}

func TestCSVSkipsBlankLines(t *testing.T) {
	// Interior blank lines (including \r-only ones) are skipped instead of
	// failing as "line N has 1 fields".
	in := "round,box,video,born\n1,3,7,1\n\n2,4,1,0\n\r\n3,5,2,0\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("parsed %d events, want 3", got.Len())
	}
	if got.Events[2].Round != 3 || got.Events[2].Box != 5 {
		t.Fatalf("last event wrong: %+v", got.Events[2])
	}
}

func TestNormalizeSorts(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Round: 5, Box: 1},
		{Round: 1, Box: 2},
		{Round: 5, Box: 3},
		{Round: 1, Box: 4},
	}}
	tr.Normalize()
	if tr.Events[0].Round != 1 || tr.Events[1].Round != 1 || tr.Events[2].Round != 5 {
		t.Fatalf("not sorted: %+v", tr.Events)
	}
	// Stability: box 2 before box 4 (insertion order within round 1).
	if tr.Events[0].Box != 2 || tr.Events[1].Box != 4 {
		t.Fatalf("not stable: %+v", tr.Events)
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Round: 1, Box: 0, Video: 0},
		{Round: 1, Box: 1, Video: 0},
		{Round: 1, Box: 2, Video: 1},
		{Round: 4, Box: 0, Video: 2},
	}}
	s := tr.Summarize()
	if s.Events != 4 || s.Rounds != 4 || s.DistinctBoxes != 3 || s.DistinctVids != 3 || s.PeakPerRound != 3 {
		t.Fatalf("stats wrong: %+v", s)
	}
	empty := (&Trace{}).Summarize()
	if empty.Events != 0 || empty.Rounds != 0 {
		t.Fatalf("empty stats wrong: %+v", empty)
	}
}

// Property: JSON round trip is lossless for arbitrary valid traces.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := stats.NewRNG(seed)
		tr := &Trace{}
		n := int(nRaw % 50)
		for i := 0; i < n; i++ {
			tr.Events = append(tr.Events, Event{
				Round: rng.Intn(100),
				Box:   rng.Intn(20),
				Video: video.ID(rng.Intn(10)),
				Born:  rng.Intn(5),
			})
		}
		var b strings.Builder
		if err := tr.WriteJSON(&b); err != nil {
			return false
		}
		got, err := ReadJSON(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		// ReadJSON normalizes; compare as multisets by re-sorting both.
		tr.Normalize()
		for i := range tr.Events {
			if got.Events[i].Round != tr.Events[i].Round {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
