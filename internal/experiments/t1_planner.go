package experiments

import (
	"repro/internal/analysis"
	"repro/internal/hetero"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:   "T1",
		Name: "planner",
		Claim: "Theorem 1 and Theorem 2 give concrete deployable parameters " +
			"(c, k, catalog) for realistic fleet sizes",
		Run: runT1,
	})
}

func runT1(o Options) Result {
	tbl := report.New("T1: Theorem 1 parameter plans (homogeneous)",
		"n", "u", "d", "µ", "c", "k (Thm 1)", "k (proof)", "m = dn/k", "u'", "ν", "bound Ω(...)")
	grid := []struct {
		n  int
		u  float64
		d  int
		mu float64
	}{
		{10000, 1.2, 4, 1.1},
		{10000, 1.5, 4, 1.1},
		{10000, 2.0, 4, 1.1},
		{10000, 3.0, 4, 1.1},
		{10000, 1.5, 16, 1.1},
		{10000, 1.5, 4, 1.5},
		{10000, 1.5, 4, 2.0},
		{100000, 1.5, 4, 1.1},
		{1000000, 1.5, 4, 1.1},
	}
	for _, g := range grid {
		p := analysis.HomogeneousParams{N: g.n, U: g.u, D: g.d, Mu: g.mu}
		plan, err := analysis.NewPlan(p)
		if err != nil {
			tbl.AddRow(report.Cell(g.n), report.Cell(g.u), report.Cell(g.d), report.Cell(g.mu),
				"infeasible: "+err.Error(), "", "", "", "", "", "")
			continue
		}
		tbl.AddRowValues(g.n, g.u, g.d, g.mu, plan.C, plan.K, plan.ProofK, plan.M,
			plan.UPrime, plan.Nu, plan.Bound)
	}
	tbl.AddNote("k is the paper's 5ν⁻¹·log d′/log u′ with the recommended c = ⌈2(2µ²−1)/(u−1)⌉")

	het := report.New("T1b: Theorem 2 parameter plans (heterogeneous, bimodal populations)",
		"n", "poor frac", "u*", "µ", "avg u", "∆(1)/n", "necessary", "compensatable", "balanced", "c", "k", "m")
	for _, g := range []struct {
		n     int
		frac  float64
		uStar float64
		mu    float64
	}{
		{10000, 0.2, 1.5, 1.05},
		{10000, 0.4, 1.5, 1.05},
		{10000, 0.6, 1.5, 1.05},
		{10000, 0.3, 1.2, 1.05},
		{10000, 0.3, 2.0, 1.05},
	} {
		pop := hetero.Bimodal(g.n, 1-g.frac, 3.0, 0.5, 2.0)
		hp := analysis.HeteroParams{
			Uploads: pop.Uploads, Storage: pop.Storage,
			UStar: g.uStar, Mu: g.mu, Duration: 7200,
		}
		plan, err := analysis.NewHeteroPlan(hp)
		if err != nil {
			het.AddRow(report.Cell(g.n), report.Cell(g.frac), report.Cell(g.uStar), report.Cell(g.mu),
				"error: "+err.Error(), "", "", "", "", "", "", "")
			continue
		}
		het.AddRowValues(g.n, g.frac, g.uStar, g.mu, hp.AvgUpload(),
			plan.Deficit1/float64(g.n),
			boolCell(plan.NecessaryOK), boolCell(plan.Compensatable), boolCell(plan.Balanced),
			plan.C, plan.K, plan.M)
	}
	het.AddNote("bimodal fleets: rich u=3.0, poor u=0.5, storage proportional (ratio 2)")
	return Result{ID: "T1", Name: "planner", Claim: registry["T1"].Claim,
		Tables: []*report.Table{tbl, het}}
}
