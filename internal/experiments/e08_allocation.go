package experiments

import (
	"math"

	"repro/internal/allocation"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/video"
)

func init() {
	register(Experiment{
		ID:   "E8",
		Name: "allocation-balance",
		Claim: "permutation allocation is exactly balanced; independent " +
			"allocation overflows boxes unless c = Ω(log n) (Theorem 1 discussion)",
		Run: runE8,
	})
}

func runE8(o Options) Result {
	ns := pick(o, []int{30, 60}, []int{50, 100, 200, 400})
	d, k, T := 2, 4, 10
	trials := pick(o, 4, 20)
	// Independent allocation gets 50% storage headroom (m = dn/(2k)): the
	// question is whether random placement still overflows some box, which
	// the paper controls with c = Ω(log n). Permutation runs at full fill
	// and is exact by construction.
	const fill = 2

	tbl := report.New("E8: allocation balance (permutation vs independent)",
		"n", "c", "scheme", "max load / mean", "P(overflow)", "min stripe replicas")
	fig := report.NewFigure("E8: independent-allocation overflow vs n (50% fill)", "n", "P(overflow > 0)")
	cFixed := fig.AddSeries("c = 4 (constant)")
	cLog := fig.AddSeries("c = ⌈2·log₂ n⌉")

	for _, n := range ns {
		for _, scheme := range []string{"permutation", "independent"} {
			for _, cChoice := range []struct {
				label string
				c     int
			}{
				{"4", 4},
				{"2log", int(math.Ceil(2 * math.Log2(float64(n))))},
			} {
				c := cChoice.c
				m := d * n / k
				if scheme == "independent" {
					m = d * n / (fill * k)
				}
				cat, err := video.NewCatalog(m, c, T)
				if err != nil {
					continue
				}
				slots := make([]int, n)
				for i := range slots {
					slots[i] = d * c
				}
				overflows := 0
				worstRatio := 0.0
				minReplicas := k
				for trial := 0; trial < trials; trial++ {
					// Hashed per (trial, n); both schemes share a stream so the
					// comparison is paired.
					rng := stats.NewRNG(mixSeed(o.Seed, uint64(trial), uint64(n)))
					var a *allocation.Allocation
					if scheme == "permutation" {
						a, err = allocation.Permutation(rng, cat, slots, k)
					} else {
						a, err = allocation.Independent(rng, cat, slots, k)
					}
					if err != nil {
						continue
					}
					st := a.Stats()
					if st.Overflow > 0 {
						overflows++
					}
					if st.BoxLoad.Mean > 0 {
						if r := float64(st.MaxBoxLoad) / st.BoxLoad.Mean; r > worstRatio {
							worstRatio = r
						}
					}
					if st.MinStripes < minReplicas {
						minReplicas = st.MinStripes
					}
				}
				pOver := float64(overflows) / float64(trials)
				tbl.AddRowValues(n, c, scheme, worstRatio, pOver, minReplicas)
				if scheme == "independent" {
					if cChoice.label == "4" {
						cFixed.Add(float64(n), pOver)
					} else {
						cLog.Add(float64(n), pOver)
					}
				}
			}
		}
	}
	tbl.AddNote("d=%d k=%d trials=%d; permutation max/mean is exactly 1 by construction", d, k, trials)
	tbl.AddNote("claim shape: independent-allocation overflow probability grows with n at constant c, " +
		"and replica-loss (min stripe replicas < k) follows; larger c tempers both")
	return Result{ID: "E8", Name: "allocation-balance", Claim: registry["E8"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
