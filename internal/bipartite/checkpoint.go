package bipartite

// Checkpoint serialization. The matching state restored here must make a
// resumed run bit-identical to the uncheckpointed one, which dictates what
// is written exactly, what is derived, and what is reset:
//
//   - Order-bearing state is written verbatim: per-right assignment lists
//     (eviction is tail-first), the active-left list (sweep order), the
//     dirty queue (augmentation order), capacities (a sub-matcher's caps
//     are stale *views* of global capacity, not derivable from anything),
//     and the pending assignment/touch logs (SetCapacity between rounds
//     leaves them non-empty).
//   - Redundant state is re-derived: loads, back-pointer arrays, the
//     matched count, and the sharded engine's global load table — decoding
//     revalidates the invariants instead of trusting two copies to agree.
//   - Pure caches reset: epoch stamps restart at zero (stamps only ever
//     compare for equality against the current epoch) and stableTo drops
//     to empty (revalidateOne re-derives it with identical outcomes).

import (
	"fmt"

	"repro/internal/ckpt"
)

// maxDecodedIDs bounds decoded element counts so a corrupt checkpoint
// fails cleanly instead of attempting a huge allocation.
const maxDecodedIDs = 1 << 31

// EncodeState serializes the matcher's matching state. Construction-time
// settings (SerialAugment, log switches) are not written: restore targets
// a matcher freshly built from the same configuration.
func (m *Matcher) EncodeState(w *ckpt.Writer) {
	w.Int(len(m.rights))
	for i := range m.rights {
		w.I64(m.rights[i].cap)
	}
	w.Bools(m.active)
	w.I32s(m.activeLefts)
	for r := range m.rightLefts {
		w.I32s(m.rightLefts[r])
	}
	w.I32s(m.dirty)
	w.I32s(m.assignLog)
	w.I32s(m.touchLog)
}

// DecodeState restores state written by EncodeState into a freshly
// constructed matcher, rebuilding every derived structure (loads,
// back-pointers, matched count) and resetting search scratch.
func (m *Matcher) DecodeState(r *ckpt.Reader) error {
	nr := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nr < 0 || nr > maxDecodedIDs {
		return fmt.Errorf("bipartite: checkpoint right count %d out of range", nr)
	}
	m.rights = make([]rightRec, nr)
	m.rightLefts = make([][]int32, nr)
	for i := range m.rights {
		m.rights[i] = rightRec{cap: r.I64(), parentLeft: -1}
	}
	m.active = r.Bools()
	nl := len(m.active)
	m.assigned = make([]int32, nl)
	m.posInRight = make([]int32, nl)
	m.posActive = make([]int32, nl)
	m.stableTo = make([]int32, nl)
	for l := range m.assigned {
		m.assigned[l] = Unassigned
		m.posInRight[l] = -1
		m.posActive[l] = -1
		m.stableTo[l] = noStable
	}
	m.epoch = 0
	m.visitL = make([]uint32, nl)
	m.levelL = make([]int32, nl)
	m.usedL = make([]uint32, nl)
	m.inDirty = make([]bool, nl)

	m.activeLefts = r.I32s()
	for pos, l := range m.activeLefts {
		if l < 0 || int(l) >= nl || !m.active[l] {
			return fmt.Errorf("bipartite: checkpoint active list holds invalid left %d", l)
		}
		m.posActive[l] = int32(pos)
	}
	m.matchedCount = 0
	for rt := 0; rt < nr; rt++ {
		lefts := r.I32s()
		m.rightLefts[rt] = lefts
		for pos, l := range lefts {
			if l < 0 || int(l) >= nl || !m.active[l] || m.assigned[l] != Unassigned {
				return fmt.Errorf("bipartite: checkpoint assignment list of right %d holds invalid left %d", rt, l)
			}
			m.assigned[l] = int32(rt)
			m.posInRight[l] = int32(pos)
			m.rights[rt].load++
			m.matchedCount++
		}
		if m.rights[rt].load > m.rights[rt].cap {
			return fmt.Errorf("bipartite: checkpoint right %d over capacity: %d > %d",
				rt, m.rights[rt].load, m.rights[rt].cap)
		}
	}
	m.dirty = r.I32s()
	for _, l := range m.dirty {
		if l < 0 || int(l) >= nl {
			return fmt.Errorf("bipartite: checkpoint dirty queue holds invalid left %d", l)
		}
		m.inDirty[l] = true
	}
	m.assignLog = r.I32s()
	m.touchLog = r.I32s()
	return r.Err()
}

// EncodeState serializes the coordinator and its sub-matchers. The l2g
// tables define each shard's local right-id space (registration order),
// so they are written exactly; g2l and the global load table are derived
// on decode. The capacity-dirty window is written in order — shards drain
// it at the start of their next parallel stage, and SetCapacity between
// rounds leaves it populated.
func (sh *Sharded) EncodeState(w *ckpt.Writer) {
	w.Int(len(sh.subs))
	w.Int(len(sh.gcap))
	w.I64s(sh.gcap)
	w.I32s(sh.leftShard)
	w.I32s(sh.capDirty)
	for s := range sh.subs {
		w.I32s(sh.l2g[s])
		sh.subs[s].EncodeState(w)
	}
}

// DecodeState restores state written by EncodeState into a freshly
// constructed coordinator with the same shard count and box population.
func (sh *Sharded) DecodeState(r *ckpt.Reader) error {
	S := r.Int()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if S != len(sh.subs) {
		return fmt.Errorf("bipartite: checkpoint has %d shards, coordinator has %d", S, len(sh.subs))
	}
	if n != len(sh.gcap) {
		return fmt.Errorf("bipartite: checkpoint has %d boxes, coordinator has %d", n, len(sh.gcap))
	}
	gcap := r.I64s()
	if len(gcap) != n {
		return fmt.Errorf("bipartite: checkpoint capacity table has %d entries, want %d", len(gcap), n)
	}
	sh.gcap = gcap
	sh.leftShard = r.I32s()
	sh.capDirty = r.I32s()
	sh.capEpoch = 1
	sh.capStamp = make([]uint32, n)
	for _, g := range sh.capDirty {
		if g < 0 || int(g) >= n {
			return fmt.Errorf("bipartite: checkpoint dirty window holds invalid box %d", g)
		}
		sh.capStamp[g] = sh.capEpoch
	}
	sh.epoch = 0
	sh.rvisit = make([]uint32, n)
	sh.rparent = make([]int32, n)
	sh.lvisit = make([]uint32, len(sh.leftShard))
	for s := range sh.subs {
		l2g := r.I32s()
		g2l := make([]int32, n)
		for i := range g2l {
			g2l[i] = -1
		}
		for lr, g := range l2g {
			if g < 0 || int(g) >= n || g2l[g] >= 0 {
				return fmt.Errorf("bipartite: shard %d checkpoint maps invalid box %d", s, g)
			}
			g2l[g] = int32(lr)
		}
		sh.l2g[s] = l2g
		sh.g2l[s] = g2l
		if err := sh.subs[s].DecodeState(r); err != nil {
			return err
		}
		if sh.subs[s].NumRight() != len(l2g) {
			return fmt.Errorf("bipartite: shard %d has %d rights for %d registrations",
				s, sh.subs[s].NumRight(), len(l2g))
		}
	}
	sh.gload = make([]int64, n)
	for g := range sh.gload {
		sh.gload[g] = sh.sumLoads(g)
		if sh.gload[g] > sh.gcap[g] {
			return fmt.Errorf("bipartite: checkpoint box %d over capacity: %d > %d",
				g, sh.gload[g], sh.gcap[g])
		}
	}
	return r.Err()
}
