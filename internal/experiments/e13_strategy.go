package experiments

import (
	"math"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:   "E13",
		Name: "strategy-ablation",
		Claim: "the Section 3 preloading strategy (1 round-robin preload stripe, " +
			"c−1 postponed requests one round later) is what absorbs flash crowds; " +
			"requesting all c stripes at once fails at identical resources " +
			"(DESIGN.md §7 ablation)",
		Run: runE13,
	})
}

func init() {
	register(Experiment{
		ID:   "E14",
		Name: "expander-audit",
		Claim: "the expansion property Theorem 1 requires of random allocations " +
			"is checkable by cheap sampled Hall-condition probes: audit violations " +
			"track simulated defeats across the replication sweep (Lemmas 1–4)",
		Run: runE14,
	})
}

func runE13(o Options) Result {
	n, d, T, k := 64, 2, 25, 2
	u := 1.25
	rounds := pick(o, 60, 80)
	trials := pick(o, 4, 10)
	mus := pick(o, []float64{1.5, 3.0}, []float64{1.2, 1.5, 2.0, 2.5, 3.0, 4.0})
	c := 6

	tbl := report.New("E13: preloading vs naive request strategy under flash crowds",
		"µ", "P(failure) preload", "P(failure) naive")
	fig := report.NewFigure("E13: strategy failure rate vs swarm growth", "µ", "P(failure)")
	pre := fig.AddSeries("preload (paper §3)")
	nai := fig.AddSeries("naive (all-at-once)")

	for _, mu := range mus {
		rates := make(map[core.Strategy]float64)
		for _, strat := range []core.Strategy{core.StrategyPreload, core.StrategyNaive} {
			strat := strat
			fails, err := parallelCount(o.workers(), trials, func(i int) (bool, error) {
				p := homParams{n: n, d: d, c: c, T: T, u: u, mu: mu}
				// Hashed per (trial, µ); both strategies share a stream so the
				// ablation is paired on identical allocations.
				sys, _, err := buildHom(mixSeed(o.Seed, uint64(i), math.Float64bits(mu)), p, k, tweakFor(o, func(cfg *core.Config) {
					cfg.Strategy = strat
				}))
				if err != nil {
					return false, err
				}
				rep, err := sys.Run(&adversary.FlashCrowd{Target: 0, Rotate: true}, rounds)
				if err != nil {
					return false, err
				}
				return rep.Failed, nil
			})
			if err != nil {
				tbl.AddRow(report.Cell(mu), "error: "+err.Error(), "")
				continue
			}
			rates[strat] = float64(fails) / float64(trials)
		}
		pre.Add(mu, rates[core.StrategyPreload])
		nai.Add(mu, rates[core.StrategyNaive])
		tbl.AddRowValues(mu, rates[core.StrategyPreload], rates[core.StrategyNaive])
	}
	tbl.AddNote("n=%d d=%d c=%d k=%d u=%.2f rounds=%d trials=%d; flash crowd at maximal growth",
		n, d, c, k, u, rounds, trials)
	tbl.AddNote("claim shape: preload failure rate stays far below naive at every µ")
	return Result{ID: "E13", Name: "strategy-ablation", Claim: registry["E13"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
