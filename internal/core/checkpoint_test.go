package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/stats"
)

// recordingGen wraps a generator and records every emitted demand batch so
// the restored system can replay the exact same external inputs. This is
// the checkpoint contract: generators are NOT serialized — the demand feed
// is an input the operator restarts alongside the restored state.
type recordingGen struct {
	inner   Generator
	byRound map[int][]Demand
}

func (g *recordingGen) Next(v *View, round int) []Demand {
	ds := g.inner.Next(v, round)
	g.byRound[round] = append([]Demand(nil), ds...)
	return ds
}

// checkpointChurn applies the same deterministic capacity flips the
// lockstep differentials use: every few rounds one box loses most of its
// upload and a previously squeezed box recovers, forcing evictions, dirty
// windows, and stall episodes around the checkpoint boundary.
func checkpointChurn(t *testing.T, sys *System, r int, origCap int64) {
	t.Helper()
	n := sys.NumBoxes()
	if r%5 == 0 {
		if err := sys.SetCapacity((r*7)%n, 1); err != nil {
			t.Fatal(err)
		}
	}
	if r%5 == 2 && r >= 5 {
		if err := sys.SetCapacity(((r-2)*7)%n, origCap); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointRoundTripBitIdentical is the tentpole differential:
// serialize at a seeded random mid-run round — under admission,
// retirement, capacity-change, and stall churn — restore into a fresh
// process-equivalent System, and demand that the next 50 rounds are
// bit-identical to the uncheckpointed continuation: StepResults with
// their obstruction certificates, per-slot progress, busy sets, and the
// final aggregate reports. Runs at shards 1, 2, and 4; paranoid mode
// cross-checks matcher invariants on the restored state every round.
func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(map[int]string{1: "serial", 2: "shards-2", 4: "shards-4"}[shards], func(t *testing.T) {
			mk := func() *System {
				return buildHomogeneous(t, 43, 18, 1, 4, 9, 2, 0.8, 2.0, func(cfg *Config) {
					cfg.Shards = shards
					cfg.Failure = FailStall
				})
			}
			live := mk()
			origCap := live.View().UploadSlots(0)
			rec := &recordingGen{
				inner:   &uniformGen{rng: stats.NewRNG(1213), p: 0.8},
				byRound: map[int][]Demand{},
			}
			ckptRound := 30 + stats.NewRNG(uint64(shards)*77+5).Intn(40)
			for r := 1; r <= ckptRound; r++ {
				checkpointChurn(t, live, r, origCap)
				if _, err := live.Step(rec); err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
			}

			var buf bytes.Buffer
			w := ckpt.NewWriter(&buf)
			if err := live.EncodeState(w); err != nil {
				t.Fatalf("encode: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}

			// Uncheckpointed continuation: 50 more rounds on the live
			// system, snapshotting per-round slot progress and busy sets so
			// the replay below can be compared round by round (not just
			// against final state).
			const tail = 50
			wantResults := make([]StepResult, 0, tail)
			wantProgress := make([][]int32, 0, tail)
			wantBusy := make([][]bool, 0, tail)
			stallRounds := 0
			for r := ckptRound + 1; r <= ckptRound+tail; r++ {
				checkpointChurn(t, live, r, origCap)
				res, err := live.Step(rec)
				if err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
				wantResults = append(wantResults, res)
				wantProgress = append(wantProgress, append([]int32(nil), live.reqProgress...))
				busy := make([]bool, live.NumBoxes())
				for b := range busy {
					busy[b] = live.boxes[b].busy
				}
				wantBusy = append(wantBusy, busy)
				if res.Unmatched > 0 {
					stallRounds++
				}
			}
			if stallRounds == 0 {
				t.Fatal("continuation never stalled: the hard half of the differential is untested")
			}

			// Restore into a fresh process-equivalent system and replay the
			// exact recorded demand schedule.
			restored := mk()
			if err := restored.DecodeState(ckpt.NewReader(bytes.NewReader(buf.Bytes()))); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if restored.Round() != ckptRound {
				t.Fatalf("restored at round %d, checkpointed at %d", restored.Round(), ckptRound)
			}
			replay := &scripted{byRound: rec.byRound}
			for i, r := 0, ckptRound+1; r <= ckptRound+tail; i, r = i+1, r+1 {
				checkpointChurn(t, restored, r, origCap)
				res, err := restored.Step(replay)
				if err != nil {
					t.Fatalf("restored round %d: %v", r, err)
				}
				if !reflect.DeepEqual(res, wantResults[i]) {
					t.Fatalf("round %d diverged after restore\nlive:     %+v\nrestored: %+v",
						r, wantResults[i], res)
				}
				if len(restored.reqProgress) != len(wantProgress[i]) {
					t.Fatalf("round %d: slot table grew to %d slots, live had %d",
						r, len(restored.reqProgress), len(wantProgress[i]))
				}
				for slot, want := range wantProgress[i] {
					if restored.reqProgress[slot] != want {
						t.Fatalf("round %d: progress of slot %d diverges: %d vs %d",
							r, slot, want, restored.reqProgress[slot])
					}
				}
				for b, want := range wantBusy[i] {
					if restored.boxes[b].busy != want {
						t.Fatalf("round %d: busy state of box %d diverges", r, b)
					}
				}
			}
			if repA, repB := live.Report(), restored.Report(); !reflect.DeepEqual(repA, repB) {
				t.Fatalf("final reports diverge\nlive:     %+v\nrestored: %+v", repA, repB)
			}
		})
	}
}

// TestCheckpointRejectsMismatch pins the safety rails: a checkpoint must
// not decode into a system with a different configuration (fingerprint),
// a different shard count, or from a truncated stream.
func TestCheckpointRejectsMismatch(t *testing.T) {
	mk := func(seed uint64, shards int) *System {
		return buildHomogeneous(t, seed, 18, 1, 4, 9, 2, 0.8, 2.0, func(cfg *Config) {
			cfg.Shards = shards
			cfg.Failure = FailStall
		})
	}
	src := mk(43, 2)
	gen := &uniformGen{rng: stats.NewRNG(7), p: 0.5}
	for r := 0; r < 10; r++ {
		if _, err := src.Step(gen); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := src.EncodeState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := mk(99, 2).DecodeState(ckpt.NewReader(bytes.NewReader(buf.Bytes()))); err == nil {
		t.Fatal("different allocation accepted")
	}
	if err := mk(43, 4).DecodeState(ckpt.NewReader(bytes.NewReader(buf.Bytes()))); err == nil {
		t.Fatal("different shard count accepted")
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := mk(43, 2).DecodeState(ckpt.NewReader(bytes.NewReader(trunc))); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestCheckpointFreshSystem covers the trivial boundary: a system that has
// never stepped round-trips and then runs normally.
func TestCheckpointFreshSystem(t *testing.T) {
	mk := func() *System {
		return buildHomogeneous(t, 5, 12, 1, 2, 6, 2, 1.5, 1.2, nil)
	}
	src := mk()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := src.EncodeState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	dst := mk()
	if err := dst.DecodeState(ckpt.NewReader(bytes.NewReader(buf.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if dst.Round() != 0 {
		t.Fatalf("fresh restore at round %d", dst.Round())
	}
	gen := &uniformGen{rng: stats.NewRNG(3), p: 0.5}
	for r := 0; r < 20; r++ {
		if _, err := dst.Step(gen); err != nil {
			t.Fatalf("round %d after fresh restore: %v", r, err)
		}
	}
}
