package analysis

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func params(n int, u float64, d int, mu float64) HomogeneousParams {
	return HomogeneousParams{N: n, U: u, D: d, Mu: mu}
}

func TestValidate(t *testing.T) {
	if err := params(100, 1.5, 4, 1.2).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []HomogeneousParams{
		{N: 0, U: 1.5, D: 4, Mu: 1.2},
		{N: 10, U: -1, D: 4, Mu: 1.2},
		{N: 10, U: 1.5, D: 0, Mu: 1.2},
		{N: 10, U: 1.5, D: 4, Mu: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestEffectiveUpload(t *testing.T) {
	cases := []struct {
		u    float64
		c    int
		want float64
	}{
		{1.5, 4, 1.5},  // 6/4
		{1.3, 4, 1.25}, // ⌊5.2⌋/4
		{0.9, 10, 0.9}, // 9/10
		{2.0, 3, 2.0},  // 6/3
		{0.99, 2, 0.5}, // ⌊1.98⌋/2
	}
	for _, tc := range cases {
		if got := EffectiveUpload(tc.u, tc.c); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("EffectiveUpload(%v,%d) = %v, want %v", tc.u, tc.c, got, tc.want)
		}
	}
	if UploadSlots(1.3, 4) != 5 {
		t.Errorf("UploadSlots(1.3,4) = %d, want 5", UploadSlots(1.3, 4))
	}
	// Float-representation guard: 0.3*10 is 2.9999... in binary.
	if UploadSlots(0.3, 10) != 3 {
		t.Errorf("UploadSlots(0.3,10) = %d, want 3", UploadSlots(0.3, 10))
	}
}

func TestMinC(t *testing.T) {
	// µ=1: bound is 1/(u−1).
	c, err := MinC(2, 1)
	if err != nil || c != 2 {
		t.Errorf("MinC(2,1) = %d,%v; want 2 (need c > 1)", c, err)
	}
	// u=1.5, µ=1.2: (2·1.44−1)/0.5 = 3.76 → c = 4.
	c, err = MinC(1.5, 1.2)
	if err != nil || c != 4 {
		t.Errorf("MinC(1.5,1.2) = %d,%v; want 4", c, err)
	}
	// Exact boundary: u=2, µ? bound (2µ²−1)/(u−1) integer → strict.
	// u=2, µ=1: bound = 1 → c must be 2 (strictly greater).
	c, _ = MinC(2, 1)
	if c != 2 {
		t.Errorf("strict inequality violated: c = %d", c)
	}
	if _, err := MinC(1, 1.2); !errors.Is(err, ErrBelowThreshold) {
		t.Error("MinC at u=1 should fail with ErrBelowThreshold")
	}
	if _, err := MinC(0.8, 1.2); err == nil {
		t.Error("MinC below threshold should fail")
	}
}

func TestNuPositivity(t *testing.T) {
	// ν > 0 exactly when c > (2µ²−1)/(u−1).
	u, mu := 1.5, 1.2
	cMin, _ := MinC(u, mu)
	if nu := Nu(u, cMin, mu); nu <= 0 {
		t.Errorf("ν at minimal c should be positive, got %v", nu)
	}
	if nu := Nu(u, cMin-1, mu); nu > 0 {
		t.Errorf("ν below minimal c should be non-positive, got %v", nu)
	}
}

func TestDPrime(t *testing.T) {
	if got := DPrime(10, 1.5); got != 10 {
		t.Errorf("DPrime(10,1.5) = %v", got)
	}
	if got := DPrime(1, 5); got != 5 {
		t.Errorf("DPrime(1,5) = %v", got)
	}
	if got := DPrime(1, 1); got != math.E {
		t.Errorf("DPrime(1,1) = %v, want e", got)
	}
}

func TestMinKSanity(t *testing.T) {
	p := params(1000, 1.5, 4, 1.2)
	c, _ := RecommendedC(p.U, p.Mu)
	k, err := MinK(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 {
		t.Fatalf("k = %d", k)
	}
	// The proof bound is at least the headline bound divided by 5·log-ratio
	// scaling; both must be positive and finite.
	pk, err := ProofK(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if pk < 1 {
		t.Fatalf("proof k = %d", pk)
	}
	// k must fail below the c threshold.
	if _, err := MinK(p, 2); err == nil {
		t.Error("MinK with too-small c should fail")
	}
}

func TestMinKDecreasesInU(t *testing.T) {
	// More upload margin → fewer replicas needed (at fixed c).
	mu := 1.1
	c := 40
	prev := math.MaxInt
	for _, u := range []float64{1.2, 1.5, 2.0, 3.0} {
		k, err := MinK(params(1000, u, 4, mu), c)
		if err != nil {
			t.Fatalf("u=%v: %v", u, err)
		}
		if k > prev {
			t.Errorf("k increased from %d to %d as u grew to %v", prev, k, u)
		}
		prev = k
	}
}

func TestCatalogSize(t *testing.T) {
	if CatalogSize(100, 4, 8) != 50 {
		t.Errorf("CatalogSize = %d", CatalogSize(100, 4, 8))
	}
	if CatalogSize(100, 4, 0) != 0 {
		t.Error("k=0 should yield 0")
	}
}

func TestCatalogBoundShape(t *testing.T) {
	// Zero at the threshold, increasing in u after it, linear in n.
	if CatalogBound(params(100, 1.0, 4, 1.2)) != 0 {
		t.Error("bound at u=1 should be 0")
	}
	b1 := CatalogBound(params(100, 1.5, 4, 1.2))
	b2 := CatalogBound(params(100, 2.0, 4, 1.2))
	if !(b2 > b1 && b1 > 0) {
		t.Errorf("bound not increasing in u: %v then %v", b1, b2)
	}
	bn := CatalogBound(params(200, 1.5, 4, 1.2))
	if math.Abs(bn/b1-2) > 1e-9 {
		t.Errorf("bound not linear in n: ratio %v", bn/b1)
	}
	// Decreasing in µ (faster growth costs catalog).
	bm := CatalogBound(params(100, 1.5, 4, 2.0))
	if bm >= b1 {
		t.Errorf("bound should shrink with µ: %v vs %v", bm, b1)
	}
}

func TestNewPlan(t *testing.T) {
	p := params(10000, 1.5, 4, 1.2)
	plan, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.C <= 0 || plan.K <= 0 || plan.M <= 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	if plan.Nu <= 0 {
		t.Errorf("plan ν must be positive: %v", plan.Nu)
	}
	if plan.UPrime <= 1 {
		t.Errorf("plan u′ must exceed 1: %v", plan.UPrime)
	}
	if plan.M != CatalogSize(p.N, p.D, plan.K) {
		t.Error("plan M inconsistent with K")
	}
	if _, err := NewPlan(params(100, 0.9, 4, 1.2)); err == nil {
		t.Error("plan below threshold should fail")
	}
	if _, err := NewPlanWithC(p, 0); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewPlanWithC(HomogeneousParams{N: 0, U: 1.5, D: 4, Mu: 1.2}, 4); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestImpossibilityCatalogCap(t *testing.T) {
	// d=4 videos of storage, chunks of 1/8 video: at most 32 videos.
	if got := ImpossibilityCatalogCap(4, 0.125); got != 32 {
		t.Errorf("cap = %d, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("ℓ <= 0 should panic")
		}
	}()
	ImpossibilityCatalogCap(4, 0)
}

func TestLemma2LowerBound(t *testing.T) {
	// i=100 requests over i1=1 distinct stripe, c=8, µ=1.2: bound must be
	// positive and at most i.
	b := Lemma2LowerBound(100, 1, 8, 1.2)
	if b <= 0 || b > 100 {
		t.Errorf("bound = %v", b)
	}
	// More distinct stripes → weaker bound.
	b2 := Lemma2LowerBound(100, 5, 8, 1.2)
	if b2 >= b {
		t.Errorf("bound should decrease in i1: %v then %v", b, b2)
	}
}

// Property: MinK from NewPlanWithC always yields ν·k ≥ 5·log d′/log u′
// (i.e. the theorem inequality holds at the returned k).
func TestQuickMinKSatisfiesTheorem(t *testing.T) {
	f := func(uRaw, muRaw uint8, dRaw uint8) bool {
		u := 1.1 + float64(uRaw%40)/10 // 1.1 .. 5.0
		mu := 1.0 + float64(muRaw%10)/10
		d := int(dRaw%16) + 1
		p := params(1000, u, d, mu)
		c, err := RecommendedC(u, mu)
		if err != nil {
			return false
		}
		k, err := MinK(p, c)
		if err != nil {
			return true // truncation can push u′ ≤ 1 at extreme params; allowed
		}
		nu := Nu(u, c, mu)
		uPrime := EffectiveUpload(u, c)
		dPrime := DPrime(float64(d), u)
		return float64(k)*nu >= 5*math.Log(dPrime)/math.Log(uPrime)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: recommended c always satisfies the strict threshold condition.
func TestQuickRecommendedCAboveMinC(t *testing.T) {
	f := func(uRaw, muRaw uint8) bool {
		u := 1.05 + float64(uRaw%50)/10
		mu := 1.0 + float64(muRaw%12)/10
		rc, err1 := RecommendedC(u, mu)
		mc, err2 := MinC(u, mu)
		if err1 != nil || err2 != nil {
			return false
		}
		return rc >= mc && Nu(u, rc, mu) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
