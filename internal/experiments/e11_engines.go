package experiments

import (
	"repro/internal/bipartite"
	"repro/internal/maxflow"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:   "E11",
		Name: "matching-engines",
		Claim: "the Lemma 1 reduction is practical: exact max-flow matching is " +
			"required (greedy strands requests an optimal matching serves), and " +
			"all exact solvers agree (solver timing lives in BenchmarkE11)",
		Run: runE11,
	})
}

// matchingInstance is a synthetic round snapshot: requests grouped by
// stripe, each stripe served by a random server subset (allocation k plus
// a swarm prefix), boxes with uniform slot capacities.
type matchingInstance struct {
	name  string
	caps  []int64
	adj   *instanceAdj
	lefts []int
}

type instanceAdj struct {
	neighbors [][]int32
}

func (a *instanceAdj) VisitServers(l int, fn func(int) bool) {
	for _, r := range a.neighbors[l] {
		if !fn(int(r)) {
			return
		}
	}
}

func (a *instanceAdj) CanServe(l, r int) bool {
	for _, x := range a.neighbors[l] {
		if int(x) == r {
			return true
		}
	}
	return false
}

// synthesizeInstance builds a flash-crowd-shaped matching instance.
func synthesizeInstance(rng *stats.RNG, name string, n, stripes, perStripe, k, slots int) matchingInstance {
	caps := make([]int64, n)
	for i := range caps {
		caps[i] = int64(slots)
	}
	adj := &instanceAdj{}
	var lefts []int
	l := 0
	for s := 0; s < stripes; s++ {
		servers := rng.SampleWithoutReplacement(n, k)
		for r := 0; r < perStripe; r++ {
			// Swarm effect: request r can also use up to r predecessors.
			nbr := make([]int32, 0, k+4)
			for _, b := range servers {
				nbr = append(nbr, int32(b))
			}
			extra := r
			if extra > 4 {
				extra = 4
			}
			for e := 0; e < extra; e++ {
				nbr = append(nbr, int32(rng.Intn(n)))
			}
			adj.neighbors = append(adj.neighbors, nbr)
			lefts = append(lefts, l)
			l++
		}
	}
	return matchingInstance{name: name, caps: caps, adj: adj, lefts: lefts}
}

func runE11(o Options) Result {
	rng := stats.NewRNG(mixSeed(o.Seed, 0xe11))
	scale := pick(o, 1, 4)
	instances := []matchingInstance{
		synthesizeInstance(rng, "sparse", 40*scale, 10*scale, 8, 3, 4),
		synthesizeInstance(rng, "flash-crowd", 40*scale, 4, 36*scale, 3, 6),
		synthesizeInstance(rng, "saturated", 30*scale, 15*scale, 8, 2, 3),
	}

	tbl := report.New("E11: matching engines — optimality gap",
		"instance", "requests", "optimal matched", "greedy matched", "greedy gap %", "solvers agree")
	for _, inst := range instances {
		m := bipartite.NewMatcher(inst.caps)
		for _, l := range inst.lefts {
			m.AddLeft(l)
		}
		m.AugmentAll(inst.adj)
		optimal := m.MatchedCount()

		g := bipartite.NewGreedy(inst.caps)
		_, greedy := g.Match(inst.adj, inst.lefts)

		// Cross-check all three max-flow solvers on the flow formulation.
		agree := solversAgree(inst, int64(optimal))

		gap := 0.0
		if optimal > 0 {
			gap = 100 * float64(optimal-greedy) / float64(optimal)
		}
		tbl.AddRowValues(inst.name, len(inst.lefts), optimal, greedy, gap, boolCell(agree))
	}
	tbl.AddNote("greedy = first-fit without reassignment; gap > 0 shows why Lemma 1's max-flow matters")
	tbl.AddNote("wall-clock comparisons (Dinic vs EK vs push-relabel vs warm-start) are in BenchmarkE11MatchingEngines")
	return Result{ID: "E11", Name: "matching-engines", Claim: registry["E11"].Claim,
		Tables: []*report.Table{tbl}}
}

func solversAgree(inst matchingInstance, want int64) bool {
	for _, mk := range []func() maxflow.Solver{
		func() maxflow.Solver { return &maxflow.Dinic{} },
		func() maxflow.Solver { return &maxflow.EdmondsKarp{} },
		func() maxflow.Solver { return &maxflow.PushRelabel{} },
	} {
		nL := len(inst.lefts)
		nR := len(inst.caps)
		g := maxflow.NewNetwork(2 + nL + nR)
		src, sink := 0, 1
		for i, l := range inst.lefts {
			g.AddEdge(src, 2+i, 1)
			inst.adj.VisitServers(l, func(r int) bool {
				g.AddEdge(2+i, 2+nL+r, 1)
				return true
			})
		}
		for r, c := range inst.caps {
			g.AddEdge(2+nL+r, sink, c)
		}
		if mk().MaxFlow(g, src, sink) != want {
			return false
		}
	}
	return true
}
