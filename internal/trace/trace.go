// Package trace records and replays demand workloads. A Trace is the
// exact sequence of demands a generator produced, round by round, so that
// different system configurations (allocation seeds, strategies, sourcing
// vs. swarming, centralized vs. decentralized matching) can be compared on
// *identical* inputs — the controlled-variable discipline behind
// experiments E9 and E12. Traces serialize to JSON for archival and to a
// compact CSV for external tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/video"
)

// Event is one demand at one round.
type Event struct {
	Round int      `json:"round"`
	Box   int      `json:"box"`
	Video video.ID `json:"video"`
	Born  int      `json:"born,omitempty"`
}

// Trace is a recorded workload.
type Trace struct {
	// Meta describes how the trace was produced (free-form).
	Meta string `json:"meta,omitempty"`
	// Events holds all demands in round order.
	Events []Event `json:"events"`
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Rounds returns the highest round with an event (0 for an empty trace).
// It scans rather than trusting order, so hand-built or concatenated
// traces that have not been normalized report the same value as sorted
// ones.
func (t *Trace) Rounds() int {
	max := 0
	for i := range t.Events {
		if t.Events[i].Round > max {
			max = t.Events[i].Round
		}
	}
	return max
}

// sorted reports whether events are in non-decreasing round order.
func (t *Trace) sorted() bool {
	for i := 1; i < len(t.Events); i++ {
		if t.Events[i].Round < t.Events[i-1].Round {
			return false
		}
	}
	return true
}

// Normalize sorts events by round (stable on insertion order within a
// round, matching generator emission order).
func (t *Trace) Normalize() {
	if !t.sorted() {
		sort.SliceStable(t.Events, func(i, j int) bool {
			return t.Events[i].Round < t.Events[j].Round
		})
	}
}

// Recorder wraps a generator and records everything it emits.
type Recorder struct {
	Inner core.Generator
	Trace Trace
}

// NewRecorder wraps gen.
func NewRecorder(gen core.Generator) *Recorder {
	return &Recorder{Inner: gen}
}

// Next implements core.Generator.
func (r *Recorder) Next(v *core.View, round int) []core.Demand {
	demands := r.Inner.Next(v, round)
	for _, d := range demands {
		r.Trace.Events = append(r.Trace.Events, Event{
			Round: round, Box: d.Box, Video: d.Video, Born: d.Born,
		})
	}
	return demands
}

// Replayer replays a trace as a generator. Demands are emitted at their
// recorded rounds regardless of system state (a busy box or a full swarm
// produces the same rejection the original run would have seen only if
// the state matches; replay across *different* configurations is the
// point, so rejections may differ).
type Replayer struct {
	trace *Trace
	pos   int
}

// NewReplayer builds a generator from a normalized trace.
func NewReplayer(t *Trace) *Replayer {
	t.Normalize()
	return &Replayer{trace: t}
}

// Next implements core.Generator.
func (r *Replayer) Next(_ *core.View, round int) []core.Demand {
	var out []core.Demand
	for r.pos < len(r.trace.Events) && r.trace.Events[r.pos].Round <= round {
		e := r.trace.Events[r.pos]
		if e.Round == round {
			out = append(out, core.Demand{Box: e.Box, Video: e.Video, Born: e.Born})
		}
		// Events for earlier rounds than the replay reached are dropped —
		// the replaying system started later than the recording one.
		r.pos++
	}
	return out
}

// Rewind restarts the replay from the first event.
func (r *Replayer) Rewind() { r.pos = 0 }

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.Normalize()
	return &t, nil
}

// WriteCSV writes "round,box,video,born" lines with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("round,box,video,born\n")
	for _, e := range t.Events {
		b.WriteString(strconv.Itoa(e.Round))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(e.Box))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(int(e.Video)))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(e.Born))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ReadCSV parses the WriteCSV format.
func ReadCSV(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "round,") {
		return nil, fmt.Errorf("trace: missing CSV header")
	}
	t := &Trace{}
	for i, line := range lines[1:] {
		// Tolerate CRLF line endings and interior blank lines (common in
		// hand-edited or re-exported files): a stray "\r" would otherwise
		// fail strconv on the last field, and a blank line would surface as
		// the confusing "has 1 fields".
		line = strings.TrimSuffix(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d has %d fields", i+2, len(fields))
		}
		var e Event
		var vid int
		if e.Round, err = strconv.Atoi(fields[0]); err == nil {
			if e.Box, err = strconv.Atoi(fields[1]); err == nil {
				if vid, err = strconv.Atoi(fields[2]); err == nil {
					e.Born, err = strconv.Atoi(fields[3])
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", i+2, err)
		}
		e.Video = video.ID(vid)
		t.Events = append(t.Events, e)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.Normalize()
	return t, nil
}

// Validate checks structural sanity.
func (t *Trace) Validate() error {
	for i, e := range t.Events {
		if e.Round < 0 || e.Box < 0 || e.Video < 0 {
			return fmt.Errorf("trace: event %d has negative field: %+v", i, e)
		}
	}
	return nil
}

// Stats summarizes a trace.
type Stats struct {
	Events        int
	Rounds        int
	DistinctBoxes int
	DistinctVids  int
	PeakPerRound  int
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	boxes := make(map[int]struct{})
	vids := make(map[video.ID]struct{})
	perRound := make(map[int]int)
	peak := 0
	for _, e := range t.Events {
		boxes[e.Box] = struct{}{}
		vids[e.Video] = struct{}{}
		perRound[e.Round]++
		if perRound[e.Round] > peak {
			peak = perRound[e.Round]
		}
	}
	return Stats{
		Events:        len(t.Events),
		Rounds:        t.Rounds(),
		DistinctBoxes: len(boxes),
		DistinctVids:  len(vids),
		PeakPerRound:  peak,
	}
}
