// Planner: the paper's closing observation is a quality/catalog trade-off —
// for a fixed physical uplink, raising the video bitrate pushes the
// normalized upload u toward 1 and the achievable catalog toward 0 like
// (u−1)³. This example prints deployment plans for one DSL uplink at
// several video bitrates.
//
//	go run ./examples/planner
package main

import (
	"fmt"

	vod "repro"
)

func main() {
	const (
		uplinkMbps = 1.2   // physical upstream of one box
		storageGB  = 100.0 // disk reserved for the catalog
		boxes      = 100000
	)
	fmt.Printf("fleet: %d boxes, %.1f Mbit/s uplink, %.0f GB of storage each\n\n",
		boxes, uplinkMbps, storageGB)
	fmt.Printf("%10s  %8s  %6s  %10s  %12s  %14s\n",
		"bitrate", "u", "c", "k (Thm 1)", "catalog m", "bound Ω(·)")

	for _, bitrate := range []float64{0.3, 0.4, 0.6, 0.8, 1.0} {
		u := uplinkMbps / bitrate
		// ~0.45 GB per hour per Mbit/s; 2h feature films.
		videoGB := bitrate * 0.45 * 2
		d := int(storageGB / videoGB)
		plan, err := vod.PlanFor(boxes, u, d, 1.2)
		if err != nil {
			fmt.Printf("%7.1f Mb  %8.2f  not scalable: %v\n", bitrate, u, err)
			continue
		}
		fmt.Printf("%7.1f Mb  %8.2f  %6d  %10d  %12d  %14.0f\n",
			bitrate, u, plan.C, plan.K, plan.M, plan.Bound)
	}

	fmt.Println("\nhigher bitrate → better quality but u → 1: the replication k the")
	fmt.Println("theorem demands explodes and the guaranteed catalog m = dn/k shrinks")
	fmt.Println("like (u−1)³ — the trade-off stated in the paper's conclusion.")
}
