package maxflow

// PushRelabel implements the FIFO push–relabel algorithm with the gap
// heuristic, O(V³). On dense matching instances it trades Dinic's
// path-following for local pushes; the E11 ablation measures where each
// wins.
//
// Unlike Dinic and Edmonds–Karp, push–relabel is not warm-startable from
// an arbitrary pre-existing flow in this implementation; it requires the
// network to carry either zero flow or flow it produced itself (a valid
// preflow is re-derived from residuals on entry only when the current flow
// is a feasible flow, which both cases satisfy).
type PushRelabel struct {
	height []int32
	excess []int64
	count  []int32 // count[h] = number of nodes at height h (gap heuristic)
	queue  []int32
	inQ    []bool
}

// Name implements Solver.
func (pr *PushRelabel) Name() string { return "push-relabel" }

// MaxFlow implements Solver.
func (pr *PushRelabel) MaxFlow(g *Network, source, sink int) int64 {
	if source == sink {
		return 0
	}
	n := g.numNodes
	pr.height = make([]int32, n)
	pr.excess = make([]int64, n)
	pr.count = make([]int32, 2*n+1)
	pr.queue = pr.queue[:0]
	pr.inQ = make([]bool, n)

	before := g.OutFlow(source)

	pr.height[source] = int32(n)
	pr.count[0] = int32(n - 1)
	pr.count[n] = 1

	// Saturate all source edges to form the initial preflow.
	for _, e := range g.adj[source] {
		if e%2 != 0 || g.cap[e] <= 0 {
			continue
		}
		w := g.to[e]
		delta := g.cap[e]
		g.cap[e] = 0
		g.cap[e^1] += delta
		pr.excess[w] += delta
		if int(w) != sink && int(w) != source && !pr.inQ[w] {
			pr.inQ[w] = true
			pr.queue = append(pr.queue, w)
		}
	}

	for len(pr.queue) > 0 {
		v := pr.queue[0]
		pr.queue = pr.queue[1:]
		pr.inQ[v] = false
		pr.discharge(g, v, source, sink)
	}

	return g.OutFlow(source) - before
}

func (pr *PushRelabel) discharge(g *Network, v int32, source, sink int) {
	for pr.excess[v] > 0 {
		pushed := false
		for _, e := range g.adj[v] {
			if g.cap[e] <= 0 {
				continue
			}
			w := g.to[e]
			if pr.height[v] != pr.height[w]+1 {
				continue
			}
			delta := pr.excess[v]
			if g.cap[e] < delta {
				delta = g.cap[e]
			}
			g.cap[e] -= delta
			g.cap[e^1] += delta
			pr.excess[v] -= delta
			pr.excess[w] += delta
			if int(w) != source && int(w) != sink && !pr.inQ[w] {
				pr.inQ[w] = true
				pr.queue = append(pr.queue, w)
			}
			if pr.excess[v] == 0 {
				pushed = true
				break
			}
		}
		if pushed {
			return
		}
		// Relabel v to one more than its lowest admissible neighbor.
		oldH := pr.height[v]
		minH := int32(2*g.numNodes + 5)
		for _, e := range g.adj[v] {
			if g.cap[e] > 0 && pr.height[g.to[e]] < minH {
				minH = pr.height[g.to[e]]
			}
		}
		if minH >= int32(2*g.numNodes) {
			// No residual edge at all: excess is stranded (flows back later
			// via reverse edges already handled by heights >= n).
			return
		}
		pr.count[oldH]--
		newH := minH + 1
		pr.height[v] = newH
		pr.count[newH]++
		// Gap heuristic: if no node remains at oldH, every node above oldH
		// (except the source) can never reach the sink; lift them past n.
		if pr.count[oldH] == 0 && oldH < int32(g.numNodes) {
			for u := 0; u < g.numNodes; u++ {
				h := pr.height[u]
				if h > oldH && h <= int32(g.numNodes) && u != source {
					pr.count[h]--
					pr.height[u] = int32(g.numNodes + 1)
					pr.count[g.numNodes+1]++
				}
			}
		}
	}
}
