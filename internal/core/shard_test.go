package core

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

// driveLockstep steps every system through the same seeded workload for
// `rounds` rounds, applying the same deterministic capacity changes to
// all of them, and fails on the first observable divergence from the
// first system: StepResult (including the obstruction certificate, which
// reflect.DeepEqual follows through the pointer), per-slot progress, and
// the busy set. Returns the number of rounds with unmatched requests.
func driveLockstep(t *testing.T, systems []*System, seed uint64, p float64, rounds int, capFlip bool) int {
	t.Helper()
	gens := make([]Generator, len(systems))
	for i := range systems {
		gens[i] = &uniformGen{rng: stats.NewRNG(seed), p: p}
	}
	ref := systems[0]
	n := ref.NumBoxes()
	origCap := ref.View().UploadSlots(0)
	stallRounds := 0
	for r := 1; r <= rounds; r++ {
		if capFlip {
			// Deterministic capacity churn: every few rounds one box loses
			// most of its upload, a previously squeezed box recovers.
			if r%5 == 0 {
				b := (r * 7) % n
				for _, sys := range systems {
					if err := sys.SetCapacity(b, 1); err != nil {
						t.Fatal(err)
					}
				}
			}
			if r%5 == 2 && r >= 5 {
				b := ((r - 2) * 7) % n
				for _, sys := range systems {
					if err := sys.SetCapacity(b, origCap); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		var refRes StepResult
		for i, sys := range systems {
			res, err := sys.Step(gens[i])
			if err != nil {
				t.Fatalf("round %d system %d: %v", r, i, err)
			}
			if i == 0 {
				refRes = res
				continue
			}
			if !reflect.DeepEqual(res, refRes) {
				t.Fatalf("round %d: step results diverge\nsystem 0: %+v\nsystem %d: %+v", r, refRes, i, res)
			}
			for _, slot := range ref.activeList {
				if ref.reqProgress[slot] != sys.reqProgress[slot] {
					t.Fatalf("round %d system %d: progress of slot %d diverges: %d vs %d",
						r, i, slot, ref.reqProgress[slot], sys.reqProgress[slot])
				}
			}
			for b := 0; b < n; b++ {
				if ref.boxes[b].busy != sys.boxes[b].busy {
					t.Fatalf("round %d system %d: busy state of box %d diverges", r, i, b)
				}
			}
		}
		if refRes.Unmatched > 0 {
			stallRounds++
		}
		if ref.Failed() {
			break
		}
	}
	return stallRounds
}

// TestShardedSerialLockstep is the tentpole differential: the serial
// engine and the sharded engine at 2, 4, and 7 shards must produce
// bit-identical StepResults — counts, obstruction certificates, per-slot
// progress, busy sets — over a FailStall workload that mixes admissions,
// retirements, capacity changes, and stall rounds. Stall rounds are the
// hard case (different maximum matchings cover different request subsets);
// CanonicalizeDeficit pins all engines to the same canonical stall set.
func TestShardedSerialLockstep(t *testing.T) {
	mk := func(shards int) *System {
		return buildHomogeneous(t, 43, 18, 1, 4, 9, 2, 0.8, 2.0, func(cfg *Config) {
			cfg.Shards = shards
			cfg.Failure = FailStall
		})
	}
	systems := []*System{mk(1), mk(2), mk(4), mk(7)}
	stalls := driveLockstep(t, systems, 1213, 0.8, 150, true)
	if stalls == 0 {
		t.Fatal("workload never stalled: the canonical-deficit comparison is untested")
	}
}

// TestShardedFailStopObstruction pins the FailStop path: all shard counts
// must stop at the same round with the same Hall-violator certificate
// (the alternating-reachable region is matching-invariant).
func TestShardedFailStopObstruction(t *testing.T) {
	mk := func(shards int) *System {
		return buildHomogeneous(t, 43, 18, 1, 4, 9, 2, 0.8, 2.0, func(cfg *Config) {
			cfg.Shards = shards
		})
	}
	systems := []*System{mk(1), mk(2), mk(4), mk(7)}
	driveLockstep(t, systems, 1213, 0.8, 150, false)
	if !systems[0].Failed() {
		t.Fatal("workload never produced an obstruction: the certificate comparison is untested")
	}
	for i, sys := range systems {
		if !sys.Failed() || sys.Round() != systems[0].Round() {
			t.Fatalf("system %d: failed=%v round=%d, want failure at round %d",
				i, sys.Failed(), sys.Round(), systems[0].Round())
		}
	}
}

// TestShardedPinsLockstep holds the existing differential pins shard-by-
// shard: at a fixed shard count, each retained reference path (naive
// availability, sweep revalidation, serial augmentation) must stay in
// lockstep with the production path, exactly as the serial pins do.
func TestShardedPinsLockstep(t *testing.T) {
	pins := []struct {
		name  string
		tweak func(*Config)
	}{
		{"naive-availability", func(cfg *Config) { cfg.NaiveAvailability = true }},
		{"sweep-revalidation", func(cfg *Config) { cfg.SweepRevalidation = true }},
		{"serial-augment", func(cfg *Config) { cfg.SerialAugment = true }},
	}
	for _, pin := range pins {
		t.Run(pin.name, func(t *testing.T) {
			mk := func(tweak func(*Config)) *System {
				return buildHomogeneous(t, 43, 18, 1, 4, 9, 2, 0.8, 2.0, func(cfg *Config) {
					cfg.Shards = 4
					cfg.Failure = FailStall
					if tweak != nil {
						tweak(cfg)
					}
				})
			}
			systems := []*System{mk(nil), mk(pin.tweak)}
			driveLockstep(t, systems, 1213, 0.8, 120, true)
		})
	}
}

// TestShardedFlashCrowdSoak drives a contended flash-crowd workload on a
// paranoid 8-shard system: the periodic bursts pile many same-video
// requests onto few holders, maximizing cross-shard capacity contention in
// Merge/GlobalAugment. Run under -race this is the concurrency soak for
// the parallel phases.
func TestShardedFlashCrowdSoak(t *testing.T) {
	const n, d, c, T, k = 40, 2, 4, 12, 5
	sys := buildHomogeneous(t, 77, n, d, c, T, k, 2.5, 1.3, func(cfg *Config) {
		cfg.Failure = FailStall
		cfg.Shards = 8
	})
	gen := &mixedGen{rng: stats.NewRNG(101)}
	rounds := 600
	if testing.Short() {
		rounds = 150
	}
	for round := 0; round < rounds; round++ {
		if _, err := sys.Step(gen); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if rep := sys.Report(); rep.CompletedViewings < 25 {
		t.Errorf("soak completed only %d viewings", rep.CompletedViewings)
	}
}
