package experiments

import (
	"math"

	"repro/internal/adversary"
	"repro/internal/allocation"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/video"
)

func init() {
	register(Experiment{
		ID:   "E6",
		Name: "hetero-threshold",
		Claim: "heterogeneous scalability needs u > 1 + ∆(1)/n; u*-balanced " +
			"systems with relaying serve any admissible sequence (§4, Theorem 2)",
		Run: runE6,
	})
}

// buildHetero assembles a relayed system over a bimodal population.
// tweak (usually tweakFor) runs on the config before construction.
func buildHetero(seed uint64, pop hetero.Population, uStar, mu float64, c, k, T int, tweak func(*core.Config)) (*core.System, int, error) {
	relays, err := hetero.Compensate(pop.Uploads, uStar)
	if err != nil {
		return nil, 0, err
	}
	slots, m, err := hetero.AllocationSlots(pop.Storage, c, k)
	if err != nil {
		return nil, 0, err
	}
	cat, err := video.NewCatalog(m, c, T)
	if err != nil {
		return nil, 0, err
	}
	alloc, err := allocation.Permutation(stats.NewRNG(seed), cat, slots, k)
	if err != nil {
		return nil, 0, err
	}
	cfg := core.Config{
		Alloc:    alloc,
		Uploads:  pop.Uploads,
		Mu:       mu,
		Strategy: core.StrategyRelayed,
		UStar:    uStar,
		Relays:   relays,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, 0, err
	}
	return sys, m, nil
}

func runE6(o Options) Result {
	n := pick(o, 30, 60)
	uRich, uPoor := 3.0, 0.5
	uStar, mu := 1.5, 1.05
	c := 25 // ≥ 10µ⁴/(u*−1) ≈ 24.3
	k := 3
	T := pick(o, 25, 40)
	rounds := pick(o, 60, 150)
	poorFracs := pick(o, []float64{0.0, 0.3, 0.8}, []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8})

	tbl := report.New("E6: heterogeneous threshold u > 1 + ∆(1)/n",
		"poor frac", "avg u", "1+∆(1)/n", "necessary ok", "compensatable", "served")
	fig := report.NewFigure("E6: service success vs poor fraction", "poor fraction", "served (1) / failed (0)")
	served := fig.AddSeries("relayed system")

	for _, frac := range poorFracs {
		pop := hetero.Bimodal(n, 1-frac, uRich, uPoor, 2.0)
		avgU := pop.AvgUpload()
		deficit := analysis.UploadDeficit(pop.Uploads, 1)
		necessary := analysis.HeteroNecessaryCondition(pop.Uploads)
		compensatable := analysis.CompensationFeasible(pop.Uploads, uStar)

		outcome := "n/a (no relay assignment)"
		val := 0.0
		if sys, _, err := buildHetero(mixSeed(o.Seed, math.Float64bits(frac)), pop, uStar, mu, c, k, T, tweakFor(o, nil)); err == nil {
			gen := &adversary.PoorFirst{UStar: uStar}
			rep, runErr := sys.Run(gen, rounds)
			if runErr != nil {
				outcome = "error: " + runErr.Error()
			} else if rep.Failed {
				outcome = "failed"
			} else {
				outcome = "served"
				val = 1
			}
		}
		served.Add(frac, val)
		tbl.AddRowValues(frac, avgU, 1+deficit/float64(n),
			report.Cell(boolCell(necessary)), report.Cell(boolCell(compensatable)), outcome)
	}
	tbl.AddNote("n=%d uRich=%.1f uPoor=%.1f u*=%.2f µ=%.2f c=%d k=%d rounds=%d; poor-first adversary",
		n, uRich, uPoor, uStar, mu, c, k, rounds)
	tbl.AddNote("claim shape: service succeeds while u > 1+∆(1)/n and compensation is feasible, fails beyond")
	return Result{ID: "E6", Name: "hetero-threshold", Claim: registry["E6"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
