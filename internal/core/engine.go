package core

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/video"
)

// StepResult reports what happened during one round.
type StepResult struct {
	Round         int
	Demanded      int
	Admitted      int
	RejectedBusy  int
	RejectedSwarm int
	Matched       int
	Unmatched     int
	Obstruction   *Obstruction // nil when all requests were served
}

// Step simulates one round: expiry, scheduled request issuance, demand
// admission, connection matching, obstruction handling, and progress.
func (s *System) Step(gen Generator) (StepResult, error) {
	if s.failed {
		return StepResult{}, fmt.Errorf("core: system already failed at round %d", s.metrics.failRound)
	}
	if s.pool != nil && s.pool.closed.Load() {
		return StepResult{}, fmt.Errorf("core: Step on closed system (round %d)", s.round)
	}
	s.round++
	res := StepResult{Round: s.round}
	s.tracker.BeginRound(s.round)
	if s.sharded == nil {
		s.avail.expire(s.round)
	}
	// The sharded engine defers expiry into the fused pre-merge dispatch
	// (matchStageShard); selfPossesses masks the deferred entries, so
	// admission below still sees the post-expiry window.

	// Retire completed requests (progress reached T). retireRequest
	// swap-removes the current slot, so only advance on survivors.
	for i := 0; i < len(s.activeList); {
		slot := s.activeList[i]
		if s.reqProgress[slot] >= int32(s.cat.T) {
			s.retireRequest(slot)
		} else {
			i++
		}
	}

	// Issue scheduled requests due this round. Strategies never schedule
	// into the current round's bucket (delay ≥ 1), so draining it before
	// admission is safe.
	bucket := s.round % len(s.pendingRing)
	due := s.pendingRing[bucket]
	s.pendingRing[bucket] = due[:0]
	for _, iss := range due {
		s.issueRequest(iss.stripe, iss.requester, iss.viewer, iss.mirror)
	}

	// Admission.
	if gen != nil {
		for _, d := range gen.Next(s.View(), s.round) {
			res.Demanded++
			switch s.admit(d) {
			case admitOK:
				res.Admitted++
			case admitBusy:
				res.RejectedBusy++
				s.metrics.rejectedBusy++
			case admitSwarmFull:
				res.RejectedSwarm++
				s.metrics.rejectedSwarm++
			}
		}
	}
	s.metrics.demands += int64(res.Demanded)
	s.metrics.admitted += int64(res.Admitted)

	// Connection matching (Lemma 1). Event-driven mode repairs only the
	// assignments that freeze/expiry events or due margin rechecks have
	// flagged; the sweep runs under Config.NaiveAvailability and while a
	// stall episode keeps certificates unreliable (see invalidation.go).
	adj := adjacency{s}
	var unmatched []int
	if s.sharded != nil {
		unmatched = s.matchSharded()
		res.Matched = s.sharded.MatchedCount()
	} else {
		if s.eventDriven && !s.needSweep {
			s.invalidateTargeted(adj)
		} else {
			if s.eventDriven {
				s.discardInvalidationBacklog()
			}
			s.matcher.Revalidate(adj)
		}
		unmatched = s.matcher.AugmentAll(adj)
		res.Matched = s.matcher.MatchedCount()
	}
	res.Unmatched = len(unmatched)

	if len(unmatched) > 0 {
		res.Obstruction = s.recordObstruction(adj, unmatched)
		if s.cfg.Failure == FailStop {
			s.failed = true
			s.metrics.failRound = s.round
			return res, nil
		}
		s.metrics.stalls += int64(len(unmatched))
		// Rewrite the deficient maximum matching to the canonical covered
		// set (unique fixpoint, see bipartite.CanonicalizeDeficit): the
		// serial engine and every shard count then agree on exactly which
		// requests stall, which is what keeps whole FailStall trajectories
		// — not just per-round counts — shard-invariant.
		if s.sharded != nil {
			s.sharded.CanonicalizeDeficit(adj, unmatched)
		} else {
			s.matcher.CanonicalizeDeficit(adj, unmatched)
		}
	}

	// Verify while edges still reflect matching-time possession; the
	// progress update below legitimately stales edges for the next round
	// (Revalidate repairs them at the top of the next Step).
	if s.cfg.Paranoid {
		if err := s.verifyMatching(adj); err != nil {
			return res, fmt.Errorf("core: round %d matcher corrupt: %w", s.round, err)
		}
	}

	// Matched requests advance one chunk, then certificates refresh. The
	// sharded engine fuses both into its second (post-merge) dispatch.
	if s.sharded != nil {
		s.advanceAndCertifySharded(res.Unmatched)
		s.timing.fold()
	} else {
		for _, slot := range s.activeList {
			if s.matcher.Server(int(slot)) != -1 {
				s.reqProgress[slot]++
			}
		}
		if s.eventDriven {
			s.refreshAssignmentCertificates(res.Unmatched)
		}
	}

	s.metrics.observeRound(s, res)
	return res, nil
}

type admitCode int

const (
	admitOK admitCode = iota
	admitBusy
	admitSwarmFull
)

// admit processes one demand: swarm-growth admission control, round-robin
// preload stripe selection, and strategy-specific request scheduling.
func (s *System) admit(d Demand) admitCode {
	if d.Box < 0 || d.Box >= s.n {
		panic(fmt.Sprintf("core: demand for unknown box %d", d.Box))
	}
	if d.Video < 0 || int(d.Video) >= s.cat.M {
		panic(fmt.Sprintf("core: demand for unknown video %d", d.Video))
	}
	if box := &s.boxes[d.Box]; box.busy || box.outstanding > 0 {
		return admitBusy
	}
	if s.tracker.Allowance(d.Video) <= 0 {
		return admitSwarmFull
	}
	preloadIdx, err := s.tracker.Enter(d.Video, s.cat.C)
	if err != nil {
		return admitSwarmFull
	}

	born := d.Born
	if born <= 0 {
		born = s.round
	}
	b := int32(d.Box)
	var planned int
	switch s.cfg.Strategy {
	case StrategyPreload:
		planned = s.planHomogeneous(b, d.Video, preloadIdx, 1)
		s.metrics.recordStartup(float64(s.round-born) + 3)
	case StrategyNaive:
		planned = s.planHomogeneous(b, d.Video, preloadIdx, 0)
		s.metrics.recordStartup(float64(s.round-born) + 2)
	case StrategyRelayed:
		if s.cfg.Uploads[d.Box] < s.cfg.UStar {
			planned = s.planRelayedPoor(b, d.Video, preloadIdx)
			s.metrics.recordStartup(float64(s.round-born) + 6)
		} else {
			planned = s.planRelayedRich(b, d.Video, preloadIdx)
			s.metrics.recordStartup(float64(s.round-born) + 4)
		}
	}

	s.boxes[d.Box].outstanding = int32(planned)
	if planned > 0 {
		s.boxes[d.Box].busy = true
		s.markBusy(b)
	} else {
		// Everything available locally: an instant viewing.
		s.metrics.completedViewings++
	}
	return admitOK
}

// planHomogeneous issues the preload stripe now and the rest after
// postponeDelay rounds (Section 3; delay 0 is the naive ablation).
// It returns the number of requests planned.
func (s *System) planHomogeneous(b int32, v video.ID, preloadIdx, postponeDelay int) int {
	planned := 0
	for i := 0; i < s.cat.C; i++ {
		st := s.cat.Stripe(v, i)
		if s.selfPossesses(b, st) {
			s.metrics.skippedSelf++
			continue
		}
		planned++
		if i == preloadIdx {
			s.metrics.preloadReqs++
		} else {
			s.metrics.postponedReqs++
		}
		if i == preloadIdx || postponeDelay == 0 {
			s.issueRequest(st, b, b, -1)
		} else {
			s.schedule(issuance{
				round: s.round + postponeDelay, stripe: st, requester: b, viewer: b, mirror: -1})
		}
	}
	return planned
}

// planRelayedRich is the Section 4 strategy for a rich box's own demand:
// preload now, postponed requests at t+2 (doubled time scale).
func (s *System) planRelayedRich(b int32, v video.ID, preloadIdx int) int {
	planned := 0
	for i := 0; i < s.cat.C; i++ {
		st := s.cat.Stripe(v, i)
		if s.selfPossesses(b, st) {
			s.metrics.skippedSelf++
			continue
		}
		planned++
		if i == preloadIdx {
			s.metrics.preloadReqs++
			s.issueRequest(st, b, b, -1)
		} else {
			s.metrics.postponedReqs++
			s.schedule(issuance{
				round: s.round + 2, stripe: st, requester: b, viewer: b, mirror: -1})
		}
	}
	return planned
}

// planRelayedPoor is the Section 4 strategy for a poor box b: the relay
// issues the preload request at t and forwards (mirror lag 1); b issues
// c_b direct postponed requests at t+2; the relay issues the remaining
// postponed requests at t+3 and forwards those too.
func (s *System) planRelayedPoor(b int32, v video.ID, preloadIdx int) int {
	r := int32(s.cfg.Relays[b])
	cb := directStripeCount(s.cfg.Uploads[b], s.cat.C, s.cfg.Mu)
	planned := 0
	direct := 0
	for i := 0; i < s.cat.C; i++ {
		st := s.cat.Stripe(v, i)
		if s.selfPossesses(b, st) {
			s.metrics.skippedSelf++
			continue // viewer plays it locally
		}
		if i == preloadIdx {
			if s.cfg.Alloc.Stores(int(r), st) {
				s.metrics.skippedSelf++
				continue // relay forwards from its own storage: no request
			}
			planned++
			s.metrics.preloadReqs++
			s.metrics.relayedReqs++
			s.issueRequest(st, r, b, b)
			continue
		}
		if direct < cb {
			direct++
			planned++
			s.metrics.postponedReqs++
			s.schedule(issuance{
				round: s.round + 2, stripe: st, requester: b, viewer: b, mirror: -1})
			continue
		}
		if s.cfg.Alloc.Stores(int(r), st) {
			s.metrics.skippedSelf++
			continue // relay forwards from its own storage
		}
		planned++
		s.metrics.relayedReqs++
		s.schedule(issuance{
			round: s.round + 3, stripe: st, requester: r, viewer: b, mirror: b})
	}
	return planned
}

// recordObstruction extracts and records the Hall-violator certificate.
// The alternating-reachable region is invariant across maximum matchings
// (Dulmage–Mendelsohn), so the serial and sharded extractions agree bit
// for bit.
func (s *System) recordObstruction(adj adjacency, unmatched []int) *Obstruction {
	var v *bipartite.Violator
	if s.sharded != nil {
		v = s.sharded.HallViolator(adj, unmatched)
	} else {
		v = s.matcher.HallViolator(adj)
	}
	if v == nil {
		return nil
	}
	distinct := make(map[video.StripeID]struct{})
	for _, l := range v.Lefts {
		distinct[s.reqStripe[l]] = struct{}{}
	}
	ob := &Obstruction{
		Round:           s.round,
		Requests:        len(v.Lefts),
		DistinctStripes: len(distinct),
		Boxes:           len(v.Rights),
		Slots:           v.Slots,
	}
	s.metrics.obstructions = append(s.metrics.obstructions, *ob)
	return ob
}

// Run simulates rounds rounds (or until a FailStop obstruction) and
// returns the aggregate report.
func (s *System) Run(gen Generator, rounds int) (Report, error) {
	for i := 0; i < rounds && !s.failed; i++ {
		if _, err := s.Step(gen); err != nil {
			return s.Report(), err
		}
	}
	return s.Report(), nil
}
