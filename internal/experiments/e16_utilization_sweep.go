package experiments

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/video"
)

func init() {
	register(Experiment{
		ID:   "E16",
		Name: "utilization-sweep",
		Claim: "round cost stays near-linear in live work as server utilization is driven " +
			"from 50% toward saturation at fixed n, and blocking-flow batch augmentation " +
			"never costs more than the per-root serial reference on the way up: on " +
			"well-expanded workloads free slots stay reachable in O(1) probes and the two " +
			"modes track each other, while the contended-crowd regime where batch wins " +
			"outright (≥2×, up to ~20×) is pinned by E5b and BenchmarkAugmentAll",
		Run: runE16,
	})
}

// pinnedBusyArrivals holds the number of busy boxes at a target by
// topping the system up with one demand per box that went idle, videos
// rotating round-robin so swarms stay small. Generator cost is O(demands
// issued) via the idle-box iterator — it never scans the population.
type pinnedBusyArrivals struct {
	targetBusy int
	nextVideo  int
}

// Next implements core.Generator.
func (g *pinnedBusyArrivals) Next(v *core.View, _ int) []core.Demand {
	want := g.targetBusy - (v.NumBoxes() - v.NumIdle())
	if want <= 0 {
		return nil
	}
	m := v.Catalog().M
	out := make([]core.Demand, 0, want)
	v.VisitIdle(func(b int) bool {
		vid := video.ID(g.nextVideo % m)
		g.nextVideo++
		if v.SwarmAllowance(vid) > 0 {
			out = append(out, core.Demand{Box: b, Video: vid})
		}
		return len(out) < want
	})
	return out
}

func runE16(o Options) Result {
	// u = 1 puts the ceiling exactly where the paper's threshold lives: a
	// busy box holds ~c live requests against c upload slots, so pinning
	// busyFrac of the population busy drives utilization to ≈ busyFrac
	// with no spare capacity anywhere else.
	n := pick(o, 256, 4096)
	const (
		d, k = 2, 2
		u    = 1.0
		mu   = 1.2
	)
	c := pick(o, 8, 40)
	T := pick(o, 20, 50)
	targets := []float64{0.50, 0.80, 0.90, 0.95, 0.99}
	rounds := pick(o, 30, 80)
	warmup := T + 10 // past the first cache-window expiry: steady-state churn

	fig := report.NewFigure("E16: serial/batch matcher speedup vs utilization", "target utilization", "speedup ×")
	speedupS := fig.AddSeries("serial ms/round ÷ batch ms/round")

	tbl := report.New("E16: utilization sweep at fixed n — batch vs serial augmentation",
		"target util", "achieved util batch", "achieved util serial", "live requests",
		"ms/round batch", "ms/round serial", "speedup ×", "stalls batch")
	for _, w := range targets {
		var ms [2]float64
		var achieved [2]float64
		var live, stallsBatch int64
		failed := false
		for mode, serial := range []bool{false, true} {
			p := homParams{n: n, d: d, c: c, T: T, u: u, mu: mu}
			sys, _, err := buildHom(mixSeed(o.Seed, math.Float64bits(w)), p, k, func(cfg *core.Config) {
				cfg.Failure = core.FailStall
				cfg.SerialAugment = serial
			})
			if err != nil {
				tbl.AddRow(report.Cell(w), "error: "+err.Error(), "", "", "", "", "", "")
				failed = true
				break
			}
			totalSlots := sys.TotalSlots()
			gen := &pinnedBusyArrivals{targetBusy: int(w * float64(n))}
			if _, err := sys.Run(gen, warmup); err != nil {
				tbl.AddRow(report.Cell(w), "error: "+err.Error(), "", "", "", "", "", "")
				failed = true
				break
			}
			var matchedSum int64
			var stepErr error
			start := time.Now()
			for r := 0; r < rounds; r++ {
				res, err := sys.Step(gen)
				if err != nil {
					stepErr = err
					break
				}
				matchedSum += int64(res.Matched)
			}
			elapsed := time.Since(start)
			if stepErr != nil {
				tbl.AddRow(report.Cell(w), "error: "+stepErr.Error(), "", "", "", "", "", "")
				failed = true
				break
			}
			ms[mode] = float64(elapsed.Microseconds()) / 1000 / float64(rounds)
			achieved[mode] = float64(matchedSum) / float64(rounds) / float64(totalSlots)
			if !serial {
				live = int64(sys.View().ActiveRequests())
				stallsBatch = sys.Report().Stalls
			}
		}
		if failed {
			continue
		}
		speedup := 0.0
		if ms[0] > 0 {
			speedup = ms[1] / ms[0]
		}
		speedupS.Add(w, speedup)
		// The two achieved-util columns are the cardinality pin made
		// visible: both modes reach maximum matchings, so on stall-free
		// rows they agree exactly.
		tbl.AddRowValues(w, achieved[0], achieved[1], live, ms[0], ms[1], speedup, stallsBatch)
	}
	tbl.AddNote("n=%d d=%d c=%d k=%d T=%d u=%.2f µ=%.1f; %d timed rounds after %d warm-up; "+
		"busy-box count pinned per target, videos rotated round-robin",
		n, d, c, k, T, u, mu, rounds, warmup)
	tbl.AddNote("claim shape: ms/round grows ~linearly with live requests and the two modes " +
		"track each other (speedup ≈ 1) — this rotating workload keeps the request graph " +
		"an expander, so completions free whole boxes and augmenting paths stay short even " +
		"at 95%%+ utilization; the contended single-video crowd where paths stretch and " +
		"batch phases win outright is E5b / BenchmarkAugmentAll; both modes reach maximum " +
		"matchings, so achieved utilization is mode-independent until the first stall " +
		"round; wall-clock timings are indicative — run with -seq on a quiet machine")
	return Result{ID: "E16", Name: "utilization-sweep", Claim: registry["E16"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
