// Package video models the catalog: m videos of equal duration T rounds,
// each encoded into c stripes of rate 1/c (paper Section 1.1). Stripes are
// identified by dense integers video*c + index so that allocation tables
// and request bookkeeping can use flat slices.
package video

import "fmt"

// ID identifies a video in [0, M).
type ID int32

// StripeID identifies a stripe in [0, M*C).
type StripeID int32

// None marks the absence of a video (an idle box).
const None ID = -1

// Catalog describes the stored video set.
type Catalog struct {
	M int // number of distinct videos
	C int // stripes per video
	T int // video duration in rounds (also cache window length)
}

// NewCatalog validates and builds a catalog description.
func NewCatalog(m, c, t int) (Catalog, error) {
	if m <= 0 || c <= 0 || t <= 0 {
		return Catalog{}, fmt.Errorf("video: invalid catalog m=%d c=%d t=%d", m, c, t)
	}
	return Catalog{M: m, C: c, T: t}, nil
}

// MustCatalog is NewCatalog for static configuration; it panics on error.
func MustCatalog(m, c, t int) Catalog {
	cat, err := NewCatalog(m, c, t)
	if err != nil {
		panic(err)
	}
	return cat
}

// NumStripes returns the total number of distinct stripes, m*c.
func (cat Catalog) NumStripes() int { return cat.M * cat.C }

// Stripe returns the StripeID of stripe index idx of video v.
func (cat Catalog) Stripe(v ID, idx int) StripeID {
	if v < 0 || int(v) >= cat.M || idx < 0 || idx >= cat.C {
		panic(fmt.Sprintf("video: stripe (%d,%d) outside catalog m=%d c=%d", v, idx, cat.M, cat.C))
	}
	return StripeID(int(v)*cat.C + idx)
}

// VideoOf returns the video a stripe belongs to.
func (cat Catalog) VideoOf(s StripeID) ID { return ID(int(s) / cat.C) }

// IndexOf returns a stripe's index within its video.
func (cat Catalog) IndexOf(s StripeID) int { return int(s) % cat.C }

// Valid reports whether s is a stripe of this catalog.
func (cat Catalog) Valid(s StripeID) bool { return s >= 0 && int(s) < cat.NumStripes() }

// ChunkCount returns the number of per-round chunks of one stripe: one
// chunk is the data a viewer consumes from one stripe in one round, so a
// stripe has T chunks.
func (cat Catalog) ChunkCount() int { return cat.T }

// StripeRate returns the stripe rate relative to the video bitrate, 1/c.
func (cat Catalog) StripeRate() float64 { return 1 / float64(cat.C) }

// String implements fmt.Stringer.
func (cat Catalog) String() string {
	return fmt.Sprintf("catalog{m=%d videos, c=%d stripes, T=%d rounds}", cat.M, cat.C, cat.T)
}
