// Package maxflow implements maximum-flow computation on directed networks
// with int64 capacities. It is the substrate behind Lemma 1 of the paper
// ("Min-cut max-flow"): the existence of a connection matching that serves
// all outstanding stripe requests is exactly a max-flow feasibility
// question, and an infeasibility certificate (an *obstruction* in the
// paper's vocabulary) is a min cut.
//
// Three solvers are provided behind the Solver interface — Dinic (the
// default), Edmonds–Karp, and FIFO push–relabel — so the experiment suite
// can ablate the choice (experiment E11).
package maxflow

import "fmt"

// Network is a directed flow network. Nodes are dense integers
// [0, NumNodes). Edges are added in forward/reverse residual pairs; edge
// IDs returned by AddEdge refer to the forward edge.
type Network struct {
	numNodes int
	// edges[i] and edges[i^1] are residual partners.
	to   []int32
	cap  []int64 // residual capacity
	init []int64 // capacity at construction time (for Reset/Flow)
	adj  [][]int32
}

// NewNetwork creates a network with n nodes and no edges.
func NewNetwork(n int) *Network {
	if n < 0 {
		panic("maxflow: negative node count")
	}
	return &Network{numNodes: n, adj: make([][]int32, n)}
}

// AddNode appends one node and returns its ID.
func (g *Network) AddNode() int {
	g.adj = append(g.adj, nil)
	g.numNodes++
	return g.numNodes - 1
}

// NumNodes returns the node count.
func (g *Network) NumNodes() int { return g.numNodes }

// NumEdges returns the number of forward edges.
func (g *Network) NumEdges() int { return len(g.to) / 2 }

// AddEdge adds a directed edge with the given capacity and returns its ID.
// Capacities must be non-negative.
func (g *Network) AddEdge(from, to int, capacity int64) int {
	if from < 0 || from >= g.numNodes || to < 0 || to >= g.numNodes {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", from, to, g.numNodes))
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, int32(to), int32(from))
	g.cap = append(g.cap, capacity, 0)
	g.init = append(g.init, capacity, 0)
	g.adj[from] = append(g.adj[from], int32(id))
	g.adj[to] = append(g.adj[to], int32(id+1))
	return id
}

// Flow returns the flow currently carried by forward edge id.
func (g *Network) Flow(id int) int64 {
	if id < 0 || id >= len(g.to) || id%2 != 0 {
		panic("maxflow: Flow wants a forward edge ID")
	}
	return g.cap[id^1]
}

// EdgeEndpoints returns (from, to) of forward edge id.
func (g *Network) EdgeEndpoints(id int) (int, int) {
	return int(g.to[id^1]), int(g.to[id])
}

// Capacity returns the original capacity of forward edge id.
func (g *Network) Capacity(id int) int64 { return g.init[id] }

// Reset restores all residual capacities to their construction values,
// erasing any computed flow.
func (g *Network) Reset() {
	copy(g.cap, g.init)
}

// SetCapacity changes the capacity of forward edge id on a network with no
// computed flow. It panics if the edge currently carries flow, because
// silently invalidating flow would corrupt warm starts.
func (g *Network) SetCapacity(id int, capacity int64) {
	if g.Flow(id) != 0 {
		panic("maxflow: SetCapacity on an edge carrying flow")
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	g.cap[id] = capacity
	g.init[id] = capacity
}

// OutFlow returns the net flow leaving node v (flow out minus flow in),
// used by conservation checks in tests.
func (g *Network) OutFlow(v int) int64 {
	var total int64
	for _, e := range g.adj[v] {
		if e%2 == 0 {
			total += g.cap[e^1] // forward edge: its flow leaves v
		} else {
			total -= g.cap[e] // reverse residual: partner's flow enters v
		}
	}
	return total
}

// MinCutSourceSide returns, after a max-flow computation, the set of nodes
// reachable from source in the residual graph. The edges from this set to
// its complement form a minimum cut.
func (g *Network) MinCutSourceSide(source int) []bool {
	seen := make([]bool, g.numNodes)
	queue := make([]int32, 0, g.numNodes)
	seen[source] = true
	queue = append(queue, int32(source))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if g.cap[e] <= 0 {
				continue
			}
			w := g.to[e]
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// Solver computes a maximum flow on a Network.
type Solver interface {
	// MaxFlow pushes as much flow as possible from source to sink,
	// starting from whatever flow the network currently carries, and
	// returns the amount pushed by this call.
	MaxFlow(g *Network, source, sink int) int64
	// Name identifies the solver in ablation reports.
	Name() string
}

// NewSolver returns a solver by name: "dinic", "ek", or "pushrelabel".
// An empty name selects Dinic.
func NewSolver(name string) (Solver, error) {
	switch name {
	case "", "dinic":
		return &Dinic{}, nil
	case "ek", "edmonds-karp":
		return &EdmondsKarp{}, nil
	case "pushrelabel", "push-relabel":
		return &PushRelabel{}, nil
	default:
		return nil, fmt.Errorf("maxflow: unknown solver %q", name)
	}
}
