package bipartite

// Cursor-based adjacency traversal.
//
// The callback form of Adjacency.VisitServers forces every traversal site
// in the matcher to build a closure over its local state; because the
// matcher mutates itself (assign/move) from inside those callbacks, the
// captured variables escape and each probe of the search costs two heap
// objects. At steady state that closure traffic is the dominant allocation
// of the whole round loop (~800 objects/round on the bounded Step
// benchmarks, ~3k per oversubscribed AugmentAll). The cursor API inverts
// control: the adjacency exposes resumable pull-style enumeration, the
// matcher owns one reusable Cursor per traversal depth, and the hot paths
// iterate with a plain loop — no closures, no escapes, no allocation.

// Cursor is the resumable state of one left node's server enumeration.
// Its fields are owned by the CursorAdjacency implementation — the
// matcher only allocates cursors (one per live traversal depth, reused
// forever) and passes them back; it never interprets Stage, Index, or ID.
type Cursor struct {
	Left  int32 // left node being enumerated (set by BeginServers)
	Stage int32 // implementation-defined enumeration stage
	Index int32 // implementation-defined position within the stage
	ID    int32 // implementation-defined auxiliary position (e.g. a slab id)
}

// CursorAdjacency is the allocation-free extension of Adjacency: the same
// edge set as VisitServers, enumerated by pulling. Implementations must
// yield exactly the sequence VisitServers would produce — traversal order
// is behavior (it decides which maximum matching the search finds, pinned
// by the bit-identity differentials) — and the sequence must be stable
// under matcher mutations: the matcher assigns, moves, and unassigns
// lefts between NextServer calls, so enumeration state must not depend on
// the matching (our adjacencies walk the static allocation and the
// availability store, both quiescent during matching).
type CursorAdjacency interface {
	Adjacency
	// BeginServers positions c at the start of left's server enumeration.
	BeginServers(left int, c *Cursor)
	// NextServer returns the next right able to serve c's left and
	// advances the cursor, or returns a negative value when the
	// enumeration is exhausted.
	NextServer(c *Cursor) int
}

// traverser owns the reusable traversal frames the matcher's searches
// enumerate servers through. The cursor path drives a CursorAdjacency
// directly; plain Adjacency implementations (tests, examples, external
// graphs) fall back to materializing each left's VisitServers output into
// a per-frame buffer first — allocation-free once warm for them too,
// except the one closure VisitServers itself costs. Frames are indexed by
// traversal depth so the batch DFS can hold an open enumeration per
// recursion level.
type traverser struct {
	cadj CursorAdjacency // non-nil when the bound adjacency supports cursors
	fadj Adjacency       // bound adjacency (fallback buffering path)
	curs []Cursor        // per-depth cursors / fallback read positions
	bufs [][]int32       // per-depth materialized server lists (fallback)
}

// bind points the traverser at adj for the duration of one public matcher
// call. The type assertion runs once per call, not once per probe.
func (t *traverser) bind(adj Adjacency) {
	t.fadj = adj
	t.cadj, _ = adj.(CursorAdjacency)
}

// begin opens the enumeration of left l's servers in frame d.
func (t *traverser) begin(l int32, d int32) {
	for int(d) >= len(t.curs) {
		t.curs = append(t.curs, Cursor{})
		t.bufs = append(t.bufs, nil)
	}
	if t.cadj != nil {
		t.cadj.BeginServers(int(l), &t.curs[d])
		return
	}
	buf := t.bufs[d][:0]
	t.fadj.VisitServers(int(l), func(r int) bool {
		buf = append(buf, int32(r))
		return true
	})
	t.bufs[d] = buf
	t.curs[d] = Cursor{Left: l}
}

// next returns the next server in frame d, or -1 when exhausted.
func (t *traverser) next(d int32) int {
	if t.cadj != nil {
		return t.cadj.NextServer(&t.curs[d])
	}
	c := &t.curs[d]
	if int(c.Index) >= len(t.bufs[d]) {
		return -1
	}
	r := t.bufs[d][c.Index]
	c.Index++
	return int(r)
}
