package bipartite

import (
	"testing"
	"testing/quick"

	"repro/internal/maxflow"
	"repro/internal/stats"
)

// listAdj is an explicit adjacency-list implementation for tests.
type listAdj struct {
	neighbors map[int][]int
}

func newListAdj() *listAdj { return &listAdj{neighbors: make(map[int][]int)} }

func (a *listAdj) add(l int, rs ...int) { a.neighbors[l] = append(a.neighbors[l], rs...) }

func (a *listAdj) VisitServers(l int, fn func(int) bool) {
	for _, r := range a.neighbors[l] {
		if !fn(r) {
			return
		}
	}
}

func (a *listAdj) CanServe(l, r int) bool {
	for _, x := range a.neighbors[l] {
		if x == r {
			return true
		}
	}
	return false
}

func TestSimpleMatch(t *testing.T) {
	m := NewMatcher([]int64{1, 1})
	adj := newListAdj()
	adj.add(0, 0)
	adj.add(1, 0, 1)
	m.AddLeft(0)
	m.AddLeft(1)
	if un := m.AugmentAll(adj); un != nil {
		t.Fatalf("unmatched: %v", un)
	}
	if m.MatchedCount() != 2 {
		t.Fatalf("matched %d, want 2", m.MatchedCount())
	}
	if err := m.Verify(adj); err != nil {
		t.Fatal(err)
	}
}

func TestReassignmentNeeded(t *testing.T) {
	// Left 0 greedily takes right 0; left 1 can only use right 0, forcing a
	// reassignment of left 0 to right 1.
	m := NewMatcher([]int64{1, 1})
	adj := newListAdj()
	adj.add(0, 0, 1)
	adj.add(1, 0)
	m.AddLeft(0)
	if m.AugmentAll(adj) != nil {
		t.Fatal("left 0 should match")
	}
	m.AddLeft(1)
	if un := m.AugmentAll(adj); un != nil {
		t.Fatalf("augment failed to reassign: unmatched %v", un)
	}
	if m.Server(1) != 0 || m.Server(0) != 1 {
		t.Errorf("servers: left0->%d left1->%d", m.Server(0), m.Server(1))
	}
	if err := m.Verify(adj); err != nil {
		t.Fatal(err)
	}
}

func TestCapacitatedRight(t *testing.T) {
	m := NewMatcher([]int64{3})
	adj := newListAdj()
	for l := 0; l < 4; l++ {
		adj.add(l, 0)
		m.AddLeft(l)
	}
	un := m.AugmentAll(adj)
	if len(un) != 1 {
		t.Fatalf("unmatched = %v, want exactly 1", un)
	}
	if m.MatchedCount() != 3 || m.Load(0) != 3 {
		t.Fatalf("matched=%d load=%d", m.MatchedCount(), m.Load(0))
	}
	v := m.HallViolator(adj)
	if v == nil {
		t.Fatal("expected a violator")
	}
	if int64(len(v.Lefts)) <= v.Slots {
		t.Fatalf("certificate invalid: |X|=%d slots=%d", len(v.Lefts), v.Slots)
	}
}

func TestRemoveLeftFreesCapacity(t *testing.T) {
	m := NewMatcher([]int64{1})
	adj := newListAdj()
	adj.add(0, 0)
	adj.add(1, 0)
	m.AddLeft(0)
	m.AddLeft(1)
	un := m.AugmentAll(adj)
	if len(un) != 1 {
		t.Fatalf("want 1 unmatched, got %v", un)
	}
	matchedLeft := 0
	if m.Server(0) == Unassigned {
		matchedLeft = 1
	}
	m.RemoveLeft(matchedLeft)
	if un := m.AugmentAll(adj); un != nil {
		t.Fatalf("freed slot not reused: %v", un)
	}
	if err := m.Verify(adj); err != nil {
		t.Fatal(err)
	}
}

func TestRevalidateDropsDeadEdges(t *testing.T) {
	m := NewMatcher([]int64{1, 1})
	adj := newListAdj()
	adj.add(0, 0)
	adj.add(1, 1)
	m.AddLeft(0)
	m.AddLeft(1)
	if m.AugmentAll(adj) != nil {
		t.Fatal("initial match failed")
	}
	// Edge (0,0) disappears; 0 can now reach only right 1.
	adj.neighbors[0] = []int{1}
	if dropped := m.Revalidate(adj); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if m.Server(0) != Unassigned {
		t.Fatal("assignment should have been dropped")
	}
	// Right 1 is taken by left 1; left 1 has no alternative, so left 0 stays
	// unmatched — capacity conflict.
	if un := m.AugmentAll(adj); len(un) != 1 {
		t.Fatalf("unmatched = %v, want 1", un)
	}
}

func TestSetCapacityEviction(t *testing.T) {
	m := NewMatcher([]int64{2})
	adj := newListAdj()
	adj.add(0, 0)
	adj.add(1, 0)
	m.AddLeft(0)
	m.AddLeft(1)
	if m.AugmentAll(adj) != nil {
		t.Fatal("initial match failed")
	}
	victims := m.SetCapacity(0, 1)
	if len(victims) != 1 {
		t.Fatalf("victims = %v, want 1", victims)
	}
	if m.Load(0) != 1 || m.Capacity(0) != 1 {
		t.Fatalf("load=%d cap=%d", m.Load(0), m.Capacity(0))
	}
	if err := m.Verify(adj); err != nil {
		t.Fatal(err)
	}
}

func TestAddLeftTwicePanics(t *testing.T) {
	m := NewMatcher([]int64{1})
	m.AddLeft(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.AddLeft(0)
}

func TestRemoveInactivePanics(t *testing.T) {
	m := NewMatcher([]int64{1})
	m.EnsureLeft(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.RemoveLeft(0)
}

func TestHallViolatorNilWhenMatched(t *testing.T) {
	m := NewMatcher([]int64{1})
	adj := newListAdj()
	adj.add(0, 0)
	m.AddLeft(0)
	m.AugmentAll(adj)
	if v := m.HallViolator(adj); v != nil {
		t.Fatalf("expected nil violator, got %+v", v)
	}
}

func TestGreedySuboptimal(t *testing.T) {
	// Greedy strands left 1 but the optimal matching serves both: the gap
	// that justifies augmenting paths.
	adj := newListAdj()
	adj.add(0, 0, 1)
	adj.add(1, 0)
	g := NewGreedy([]int64{1, 1})
	_, matched := g.Match(adj, []int{0, 1})
	if matched != 1 {
		t.Fatalf("greedy matched %d, want 1 (the suboptimal outcome)", matched)
	}
	g.Reset()
	_, matched = g.Match(adj, []int{1, 0})
	if matched != 2 {
		t.Fatalf("greedy with lucky order matched %d, want 2", matched)
	}
}

// optimalViaMaxflow computes the true maximum matching size with Dinic.
func optimalViaMaxflow(adj *listAdj, lefts []int, caps []int64) int64 {
	n := len(lefts)
	r := len(caps)
	g := maxflow.NewNetwork(2 + n + r)
	src, sink := 0, 1
	for i, l := range lefts {
		g.AddEdge(src, 2+i, 1)
		for _, rr := range adj.neighbors[l] {
			g.AddEdge(2+i, 2+n+rr, 1)
		}
	}
	for j, c := range caps {
		g.AddEdge(2+n+j, sink, c)
	}
	var d maxflow.Dinic
	return d.MaxFlow(g, src, sink)
}

func randomInstance(rng *stats.RNG) (*listAdj, []int, []int64) {
	nl := 1 + rng.Intn(12)
	nr := 1 + rng.Intn(6)
	caps := make([]int64, nr)
	for i := range caps {
		caps[i] = int64(rng.Intn(3))
	}
	adj := newListAdj()
	lefts := make([]int, nl)
	for l := 0; l < nl; l++ {
		lefts[l] = l
		for r := 0; r < nr; r++ {
			if rng.Bool(0.4) {
				adj.add(l, r)
			}
		}
	}
	return adj, lefts, caps
}

// Property: the incremental matcher reaches the max-flow optimum.
func TestQuickMatcherIsOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		adj, lefts, caps := randomInstance(rng)
		m := NewMatcher(caps)
		for _, l := range lefts {
			m.AddLeft(l)
		}
		m.AugmentAll(adj)
		if err := m.Verify(adj); err != nil {
			return false
		}
		return int64(m.MatchedCount()) == optimalViaMaxflow(adj, lefts, caps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: incremental arrival order does not change the matching size.
func TestQuickIncrementalEqualsBatch(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		adj, lefts, caps := randomInstance(rng)

		batch := NewMatcher(caps)
		for _, l := range lefts {
			batch.AddLeft(l)
		}
		batch.AugmentAll(adj)

		inc := NewMatcher(caps)
		for _, l := range lefts {
			inc.AddLeft(l)
			inc.AugmentAll(adj) // augment after every single arrival
		}
		return inc.MatchedCount() == batch.MatchedCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: departures then re-augmentation stays optimal.
func TestQuickDeparturesStayOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		adj, lefts, caps := randomInstance(rng)
		m := NewMatcher(caps)
		for _, l := range lefts {
			m.AddLeft(l)
		}
		m.AugmentAll(adj)
		// Remove a random subset.
		var remaining []int
		for _, l := range lefts {
			if rng.Bool(0.4) {
				m.RemoveLeft(l)
			} else {
				remaining = append(remaining, l)
			}
		}
		m.AugmentAll(adj)
		if err := m.Verify(adj); err != nil {
			return false
		}
		return int64(m.MatchedCount()) == optimalViaMaxflow(adj, remaining, caps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: when requests go unmatched, the extracted Hall violator is a
// genuine certificate: every server of every left in X is inside Rights,
// and capacity is insufficient.
func TestQuickHallCertificate(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		adj, lefts, caps := randomInstance(rng)
		m := NewMatcher(caps)
		for _, l := range lefts {
			m.AddLeft(l)
		}
		un := m.AugmentAll(adj)
		v := m.HallViolator(adj)
		if len(un) == 0 {
			return v == nil
		}
		if v == nil {
			return false
		}
		inRights := make(map[int]bool)
		for _, r := range v.Rights {
			inRights[r] = true
		}
		var slots int64
		for _, r := range v.Rights {
			slots += caps[r]
		}
		if slots != v.Slots {
			return false
		}
		for _, l := range v.Lefts {
			for _, r := range adj.neighbors[l] {
				if !inRights[r] {
					return false // B(X) escapes the certificate
				}
			}
		}
		return int64(len(v.Lefts)) > v.Slots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: greedy never beats the optimal matcher.
func TestQuickGreedyNeverBeatsOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		adj, lefts, caps := randomInstance(rng)
		g := NewGreedy(caps)
		_, greedyMatched := g.Match(adj, lefts)
		m := NewMatcher(caps)
		for _, l := range lefts {
			m.AddLeft(l)
		}
		m.AugmentAll(adj)
		return greedyMatched <= m.MatchedCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	m := NewMatcher([]int64{1})
	adj := newListAdj()
	adj.add(0, 0)
	m.AddLeft(0)
	m.AugmentAll(adj)
	// Corrupt: claim the edge is gone.
	adj.neighbors[0] = nil
	if err := m.Verify(adj); err == nil {
		t.Fatal("Verify should detect missing edge")
	}
}

// TestInvalidateMatchesRevalidate pins the event-driven invalidation
// contract: repairing via targeted Invalidate calls on exactly the lefts
// whose assigned edge disappeared must leave the matcher in the same
// state as a full Revalidate sweep. Two identically driven matchers run
// side by side through randomized edge deletions and churn.
func TestInvalidateMatchesRevalidate(t *testing.T) {
	const nL, nR, deg, rounds = 160, 40, 3, 60
	rng := stats.NewRNG(0xeed)
	adj := newListAdj()
	caps := make([]int64, nR)
	for r := range caps {
		caps[r] = 4
	}
	for l := 0; l < nL; l++ {
		adj.add(l, rng.SampleWithoutReplacement(nR, deg)...)
	}
	sweep, event := NewMatcher(caps), NewMatcher(caps)
	for l := 0; l < nL; l++ {
		sweep.AddLeft(l)
		event.AddLeft(l)
	}
	sweep.AugmentAll(adj)
	event.AugmentAll(adj)

	removeEdge := func(l, r int) bool {
		ns := adj.neighbors[l]
		for i, x := range ns {
			if x == r {
				adj.neighbors[l] = append(ns[:i], ns[i+1:]...)
				return true
			}
		}
		return false
	}

	for round := 0; round < rounds; round++ {
		// Delete the current edge under a few random assignments (plus an
		// unassigned edge, which must be a no-op for both paths).
		var touched []int
		for i := 0; i < 1+rng.Intn(4); i++ {
			l := rng.Intn(nL)
			if !sweep.Active(l) {
				continue
			}
			if r := sweep.Server(l); r != Unassigned {
				if removeEdge(l, r) {
					touched = append(touched, l)
				}
			} else if ns := adj.neighbors[l]; len(ns) > 0 {
				removeEdge(l, ns[rng.Intn(len(ns))])
				touched = append(touched, l)
			}
		}
		// Churn a few lefts identically on both matchers.
		for i := 0; i < rng.Intn(3); i++ {
			l := rng.Intn(nL)
			if sweep.Active(l) {
				sweep.RemoveLeft(l)
				event.RemoveLeft(l)
			} else {
				sweep.AddLeft(l)
				event.AddLeft(l)
			}
		}

		dropsSweep := sweep.Revalidate(adj)
		batch := make([]int32, 0, len(touched))
		for _, l := range touched {
			batch = append(batch, int32(l))
		}
		dropsEvent := event.InvalidateBatch(adj, batch)
		if dropsSweep != dropsEvent {
			t.Fatalf("round %d: sweep dropped %d, targeted dropped %d", round, dropsSweep, dropsEvent)
		}
		sweep.AugmentAll(adj)
		event.AugmentAll(adj)
		for l := 0; l < nL; l++ {
			if sweep.Server(l) != event.Server(l) {
				t.Fatalf("round %d: left %d assigned %d (sweep) vs %d (targeted)",
					round, l, sweep.Server(l), event.Server(l))
			}
		}
		if err := sweep.Verify(adj); err != nil {
			t.Fatalf("round %d: sweep matcher corrupt: %v", round, err)
		}
		if err := event.Verify(adj); err != nil {
			t.Fatalf("round %d: targeted matcher corrupt: %v", round, err)
		}
	}
}

// TestBatchEqualsSerialLockstep is the blocking-flow differential: a
// batch-phase matcher and a SerialAugment reference are driven through
// identical randomized rounds of arrivals, departures, edge invalidation
// (adjacency mutation + Revalidate), and capacity changes. Batch phases
// may pick a different maximum matching than root-by-root augmentation,
// so the pin is cardinality + feasibility, not bit-identity: after every
// round both matchers must (a) match exactly the same number of lefts,
// (b) equal the max-flow optimum on the live instance, and (c) pass
// Verify. See AugmentAll's contract.
func TestBatchEqualsSerialLockstep(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		rng := stats.NewRNG(0xb10c ^ seed)
		nR := 3 + rng.Intn(8)
		caps := make([]int64, nR)
		for r := range caps {
			caps[r] = int64(rng.Intn(4))
		}
		batch := NewMatcher(caps)
		serial := NewMatcher(caps)
		serial.SerialAugment = true

		adj := newListAdj()
		var nextLeft int
		var free []int // recycled left IDs
		active := make(map[int]bool)
		newNeighbors := func() []int {
			var ns []int
			for r := 0; r < nR; r++ {
				if rng.Bool(0.4) {
					ns = append(ns, r)
				}
			}
			return ns
		}

		for round := 0; round < 50; round++ {
			// Arrivals.
			for i := rng.Intn(4); i > 0; i-- {
				l := nextLeft
				if n := len(free); n > 0 && rng.Bool(0.5) {
					l = free[n-1]
					free = free[:n-1]
				} else {
					nextLeft++
				}
				adj.neighbors[l] = newNeighbors()
				active[l] = true
				batch.AddLeft(l)
				serial.AddLeft(l)
			}
			// Departures.
			for l := range active {
				if rng.Bool(0.15) {
					delete(active, l)
					free = append(free, l)
					batch.RemoveLeft(l)
					serial.RemoveLeft(l)
				}
			}
			// Edge invalidation: rewire a few lefts, then Revalidate both.
			// (The matchers hold different assignments, so the *drop counts*
			// may legitimately differ; only cardinality after re-augmenting
			// is pinned.)
			for l := range active {
				if rng.Bool(0.2) {
					adj.neighbors[l] = newNeighbors()
				}
			}
			batch.Revalidate(adj)
			serial.Revalidate(adj)
			// Capacity change: eviction victims are re-queued internally.
			if rng.Bool(0.5) {
				r := rng.Intn(nR)
				c := int64(rng.Intn(4))
				batch.SetCapacity(r, c)
				serial.SetCapacity(r, c)
			}

			unB := batch.AugmentAll(adj)
			unS := serial.AugmentAll(adj)
			if batch.MatchedCount() != serial.MatchedCount() {
				t.Fatalf("seed %d round %d: batch matched %d, serial %d",
					seed, round, batch.MatchedCount(), serial.MatchedCount())
			}
			if len(unB) != len(unS) {
				t.Fatalf("seed %d round %d: batch unmatched %v, serial %v", seed, round, unB, unS)
			}
			var lefts []int
			for l := range active {
				lefts = append(lefts, l)
			}
			capsNow := make([]int64, nR)
			for r := 0; r < nR; r++ {
				capsNow[r] = batch.Capacity(r)
			}
			if opt := optimalViaMaxflow(adj, lefts, capsNow); int64(batch.MatchedCount()) != opt {
				t.Fatalf("seed %d round %d: matched %d, optimum %d", seed, round, batch.MatchedCount(), opt)
			}
			if err := batch.Verify(adj); err != nil {
				t.Fatalf("seed %d round %d: batch matcher corrupt: %v", seed, round, err)
			}
			if err := serial.Verify(adj); err != nil {
				t.Fatalf("seed %d round %d: serial matcher corrupt: %v", seed, round, err)
			}
		}
	}
}

// TestBatchLongPaths exercises the phase machinery on an instance whose
// last augmenting path is forced to be maximally long: a chain of
// capacity-1 rights where left 0 can only enter at the occupied head, so
// its augmentation must cascade every other left one hop down the chain
// (path length n — also a recursion-depth check for the phase DFS).
func TestBatchLongPaths(t *testing.T) {
	const n = 512
	caps := make([]int64, n)
	for r := range caps {
		caps[r] = 1
	}
	adj := newListAdj()
	adj.add(0, 0)
	for l := 1; l < n; l++ {
		adj.add(l, l-1, l) // probes right l−1 first
	}
	m := NewMatcher(caps)
	for l := n - 1; l >= 0; l-- {
		m.AddLeft(l)
		if un := m.AugmentAll(adj); un != nil {
			t.Fatalf("left %d unmatched: %v", l, un)
		}
	}
	if m.MatchedCount() != n {
		t.Fatalf("matched %d, want %d", m.MatchedCount(), n)
	}
	if err := m.Verify(adj); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDepthFallback crosses maxBatchDepth with the same cascade
// chain: the phase BFS measures a shortest path longer than the DFS
// recursion bound, so the batch path must hand the frontier to the
// iterative serial reference and still reach the maximum matching.
func TestBatchDepthFallback(t *testing.T) {
	const n = maxBatchDepth + 64
	caps := make([]int64, n)
	for r := range caps {
		caps[r] = 1
	}
	adj := newListAdj()
	adj.add(0, 0)
	for l := 1; l < n; l++ {
		adj.add(l, l-1, l)
	}
	m := NewMatcher(caps)
	// Reverse arrival keeps every augmentation greedy (left l takes the
	// free right l−1) until left 0 arrives and needs the full-length
	// cascade through all n rights.
	for l := n - 1; l >= 1; l-- {
		m.AddLeft(l)
		if un := m.AugmentAll(adj); un != nil {
			t.Fatalf("left %d unmatched: %v", l, un)
		}
	}
	m.AddLeft(0)
	if un := m.AugmentAll(adj); un != nil {
		t.Fatalf("cascade unmatched: %v", un)
	}
	if m.MatchedCount() != n {
		t.Fatalf("matched %d, want %d", m.MatchedCount(), n)
	}
	if err := m.Verify(adj); err != nil {
		t.Fatal(err)
	}
}

// TestSetCapacityScratchReuse pins the scratch-buffer contract: the
// victims slice is only valid until the next SetCapacity call.
func TestSetCapacityScratchReuse(t *testing.T) {
	m := NewMatcher([]int64{2, 2})
	adj := newListAdj()
	for l := 0; l < 4; l++ {
		adj.add(l, l/2)
		m.AddLeft(l)
	}
	if m.AugmentAll(adj) != nil {
		t.Fatal("initial match failed")
	}
	first := m.SetCapacity(0, 0)
	if len(first) != 2 {
		t.Fatalf("victims = %v, want 2", first)
	}
	second := m.SetCapacity(1, 1)
	if len(second) != 1 {
		t.Fatalf("victims = %v, want 1", second)
	}
	if &first[0] == &second[0] && first[0] == second[0] {
		// Shared backing storage is the point; just document that the
		// earlier slice now aliases the newer victims.
		t.Logf("scratch reused as documented")
	}
	if got := m.SetCapacity(1, 4); got != nil {
		t.Fatalf("no-eviction call returned %v, want nil", got)
	}
}

// TestAssignmentLog checks that LogAssignments records every left that
// receives a server (including path moves) and that draining resets it.
func TestAssignmentLog(t *testing.T) {
	m := NewMatcher([]int64{1, 1})
	m.LogAssignments(true)
	adj := newListAdj()
	adj.add(0, 0, 1)
	adj.add(1, 0)
	m.AddLeft(0)
	m.AugmentAll(adj)
	m.AddLeft(1) // forces the augmenting path to move left 0
	m.AugmentAll(adj)
	log := m.DrainAssigned(nil)
	seen := map[int32]bool{}
	for _, l := range log {
		seen[l] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("assignment log %v missing a left", log)
	}
	if got := m.DrainAssigned(nil); len(got) != 0 {
		t.Fatalf("second drain returned %v, want empty", got)
	}
	m.LogAssignments(false)
	m.RemoveLeft(0)
	m.AddLeft(0)
	m.AugmentAll(adj)
	if got := m.DrainAssigned(nil); len(got) != 0 {
		t.Fatalf("disabled log returned %v, want empty", got)
	}
}
