package experiments

import (
	"repro/internal/bipartite"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:   "E12",
		Name: "protocol-gap",
		Claim: "a practical decentralized proposal protocol approaches the " +
			"centralized max-flow matching (the paper's closing future-work remark: " +
			"the existence result \"does not yield directly a practical distributed algorithm\")",
		Run: runE12,
	})
}

func runE12(o Options) Result {
	rng := stats.NewRNG(mixSeed(o.Seed, 0xe12))
	scale := pick(o, 1, 4)
	instances := []matchingInstance{
		synthesizeInstance(rng, "sparse", 40*scale, 10*scale, 8, 3, 4),
		synthesizeInstance(rng, "flash-crowd", 40*scale, 4, 36*scale, 3, 6),
		synthesizeInstance(rng, "saturated", 30*scale, 15*scale, 8, 2, 3),
		synthesizeInstance(rng, "scarce", 30*scale, 20*scale, 6, 1, 2),
	}

	tbl := report.New("E12: decentralized protocol vs centralized optimum",
		"instance", "requests", "optimal", "blind", "gap %", "herd", "gap %", "rand-informed", "gap %", "blind msgs", "informed msgs")
	fig := report.NewFigure("E12: protocol optimality gap", "instance #", "matched fraction of optimal")
	series := fig.AddSeries("blind / optimal")
	seriesHerd := fig.AddSeries("herd / optimal")
	seriesInf := fig.AddSeries("rand-informed / optimal")

	for idx, mi := range instances {
		// Exact optimum via the incremental matcher.
		m := bipartite.NewMatcher(mi.caps)
		for _, l := range mi.lefts {
			m.AddLeft(l)
		}
		m.AugmentAll(mi.adj)
		optimal := m.MatchedCount()

		// Convert to a protocol instance.
		inst := protocol.Instance{Caps: mi.caps, Candidates: make([][]int32, len(mi.lefts))}
		for i, l := range mi.lefts {
			mi.adj.VisitServers(l, func(r int) bool {
				inst.Candidates[i] = append(inst.Candidates[i], int32(r))
				return true
			})
		}
		nsCfg := netsim.Config{BaseLatency: 1, Jitter: 0.4, Seed: mixSeed(o.Seed, 0xe12a, uint64(idx))}
		blind := protocol.Run(inst, nsCfg)
		herd := protocol.RunInformed(inst, nsCfg, protocol.VariantHerd)
		informed := protocol.RunInformed(inst, nsCfg, protocol.VariantRandomInformed)
		bad := false
		for _, res := range []protocol.Result{blind, herd, informed} {
			if err := res.Verify(inst); err != nil {
				tbl.AddRow(mi.name, "error: "+err.Error(), "", "", "", "", "", "", "", "", "")
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		gapOf := func(matched int) (float64, float64) {
			if optimal == 0 {
				return 0, 1
			}
			return 100 * float64(optimal-matched) / float64(optimal),
				float64(matched) / float64(optimal)
		}
		bGap, bFrac := gapOf(blind.Matched)
		hGap, hFrac := gapOf(herd.Matched)
		iGap, iFrac := gapOf(informed.Matched)
		series.Add(float64(idx), bFrac)
		seriesHerd.Add(float64(idx), hFrac)
		seriesInf.Add(float64(idx), iFrac)
		tbl.AddRowValues(mi.name, len(mi.lefts), optimal,
			blind.Matched, bGap, herd.Matched, hGap, informed.Matched, iGap,
			blind.Messages, informed.Messages)
	}
	tbl.AddNote("all variants yield maximal matchings (≥ 1/2 optimal); 'herd' uses the polled load snapshot best-first " +
		"and collapses via stale-load herding; randomizing over advertised-free candidates repairs it")
	return Result{ID: "E12", Name: "protocol-gap", Claim: registry["E12"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
