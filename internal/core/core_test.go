package core

import (
	"testing"

	"repro/internal/allocation"
	"repro/internal/stats"
	"repro/internal/video"
)

// scripted replays a fixed demand schedule.
type scripted struct {
	byRound map[int][]Demand
}

func (g *scripted) Next(_ *View, round int) []Demand { return g.byRound[round] }

// uniformGen has every idle box demand a random non-stored video with
// probability p, respecting swarm allowances.
type uniformGen struct {
	rng *stats.RNG
	p   float64
}

func (g *uniformGen) Next(v *View, _ int) []Demand {
	var out []Demand
	cat := v.Catalog()
	for b := 0; b < v.NumBoxes(); b++ {
		if !v.BoxIdle(b) || !g.rng.Bool(g.p) {
			continue
		}
		vid := video.ID(g.rng.Intn(cat.M))
		if v.SwarmAllowance(vid) <= 0 {
			continue
		}
		out = append(out, Demand{Box: b, Video: vid})
	}
	return out
}

// buildHomogeneous builds a homogeneous test system.
func buildHomogeneous(t *testing.T, seed uint64, n, d, c, T, k int, u, mu float64, tweak func(*Config)) *System {
	t.Helper()
	rng := stats.NewRNG(seed)
	alloc, _, err := allocation.HomogeneousPermutation(rng, n, d, c, T, k)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]float64, n)
	for i := range uploads {
		uploads[i] = u
	}
	cfg := Config{Alloc: alloc, Uploads: uploads, Mu: mu, Paranoid: true}
	if tweak != nil {
		tweak(&cfg)
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	alloc, _, err := allocation.HomogeneousPermutation(rng, 4, 2, 2, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	ups := []float64{1.5, 1.5, 1.5, 1.5}
	cases := []Config{
		{},                           // no allocation
		{Alloc: alloc},               // missing uploads
		{Alloc: alloc, Uploads: ups}, // µ < 1
		{Alloc: alloc, Uploads: ups[:2], Mu: 1.2},                                    // wrong upload count
		{Alloc: alloc, Uploads: []float64{-1, 1, 1, 1}, Mu: 1.2},                     // negative upload
		{Alloc: alloc, Uploads: ups, Mu: 1.2, Relays: []int{-1, -1, -1, -1}},         // relays without strategy
		{Alloc: alloc, Uploads: ups, Mu: 1.2, Strategy: StrategyRelayed},             // relayed without u*
		{Alloc: alloc, Uploads: ups, Mu: 1.2, Strategy: StrategyRelayed, UStar: 1.2}, // relayed without relays
		{Alloc: alloc, Uploads: ups, Mu: 1.2, Strategy: Strategy(99)},                // unknown strategy
		{Alloc: alloc, Uploads: ups, Mu: 1.2, Shards: -1},                            // negative shard count
		{Alloc: alloc, Uploads: ups, Mu: 1.2, Shards: 9},                             // more shards than the 8 stripes
	}
	for i, cfg := range cases {
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("config case %d should fail", i)
		}
	}
	// The boundary case — exactly one stripe per shard — must construct.
	sys, err := NewSystem(Config{Alloc: alloc, Uploads: ups, Mu: 1.2, Shards: 8})
	if err != nil {
		t.Fatalf("shards == stripes should be valid: %v", err)
	}
	sys.Close()
}

func TestSingleViewingLifecycle(t *testing.T) {
	const T = 10
	sys := buildHomogeneous(t, 2, 12, 2, 3, T, 4, 2.0, 1.5, nil)
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 0, Video: 0}}}}
	rep, err := sys.Run(gen, T+3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("single viewing failed: %+v", rep.Obstructions)
	}
	if rep.Admitted != 1 {
		t.Fatalf("admitted = %d", rep.Admitted)
	}
	if rep.CompletedViewings != 1 {
		t.Fatalf("completed = %d, want 1", rep.CompletedViewings)
	}
	if rep.StartupDelay.Mean != 3 {
		t.Errorf("preload startup delay = %v, want 3", rep.StartupDelay.Mean)
	}
	// Box must be idle again at the end.
	if !sys.View().BoxIdle(0) {
		t.Error("box 0 still busy after viewing")
	}
}

func TestBusyBoxRejected(t *testing.T) {
	sys := buildHomogeneous(t, 3, 12, 2, 3, 10, 4, 2.0, 1.5, nil)
	gen := &scripted{byRound: map[int][]Demand{
		1: {{Box: 0, Video: 0}},
		2: {{Box: 0, Video: 1}}, // box 0 is mid-viewing
	}}
	rep, err := sys.Run(gen, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedBusy != 1 {
		t.Errorf("rejectedBusy = %d, want 1", rep.RejectedBusy)
	}
}

func TestSwarmGrowthRejection(t *testing.T) {
	// µ=1.5 and an empty swarm admit ⌈1.5⌉=2 boxes at round 0; a third
	// demand the same round must be rejected.
	sys := buildHomogeneous(t, 4, 12, 2, 3, 10, 4, 2.0, 1.5, nil)
	gen := &scripted{byRound: map[int][]Demand{
		1: {{Box: 0, Video: 0}, {Box: 1, Video: 0}, {Box: 2, Video: 0}},
	}}
	rep, err := sys.Run(gen, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != 2 || rep.RejectedSwarm != 1 {
		t.Errorf("admitted=%d rejectedSwarm=%d, want 2 and 1", rep.Admitted, rep.RejectedSwarm)
	}
}

func TestRandomWorkloadNoObstruction(t *testing.T) {
	// Comfortable parameters: u=2.5, c=4, k=6, µ=1.2 — swarming plus
	// allocation should serve random demand without obstruction.
	sys := buildHomogeneous(t, 5, 30, 2, 4, 15, 6, 2.5, 1.2, nil)
	gen := &uniformGen{rng: stats.NewRNG(99), p: 0.3}
	rep, err := sys.Run(gen, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("random workload failed at round %d: %+v", rep.FailRound, rep.Obstructions)
	}
	if rep.CompletedViewings == 0 {
		t.Fatal("nothing completed")
	}
	if rep.MeanUtilization <= 0 || rep.MeanUtilization > 1 {
		t.Errorf("utilization = %v", rep.MeanUtilization)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Report {
		sys := buildHomogeneous(t, 7, 20, 2, 4, 12, 5, 2.5, 1.2, nil)
		gen := &uniformGen{rng: stats.NewRNG(123), p: 0.4}
		rep, err := sys.Run(gen, 60)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Admitted != b.Admitted || a.CompletedViewings != b.CompletedViewings ||
		a.Stalls != b.Stalls || a.MeanUtilization != b.MeanUtilization {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestImpossibilityBelowThreshold(t *testing.T) {
	// u = 0.5 < 1 and every box demands a video it has no data of: the
	// Section 1.3 adversary. Aggregate demand exceeds aggregate upload, so
	// an obstruction must appear.
	const n, d, c, T, k = 10, 1, 4, 12, 1 // m = dn/k = 10 videos
	sys := buildHomogeneous(t, 8, n, d, c, T, k, 0.5, 2.0, nil)
	gen := genAvoidStored{}
	rep, err := sys.Run(gen, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("u<1 with avoid-possession demands should produce an obstruction")
	}
	ob := rep.Obstructions[0]
	if int64(ob.Requests) <= ob.Slots {
		t.Errorf("certificate invalid: requests=%d slots=%d", ob.Requests, ob.Slots)
	}
	if ob.DistinctStripes <= 0 || ob.Boxes < 0 {
		t.Errorf("degenerate certificate: %+v", ob)
	}
}

// genAvoidStored makes every idle box demand a video it stores nothing of.
type genAvoidStored struct{}

func (genAvoidStored) Next(v *View, _ int) []Demand {
	var out []Demand
	cat := v.Catalog()
	for b := 0; b < v.NumBoxes(); b++ {
		if !v.BoxIdle(b) {
			continue
		}
		for m := 0; m < cat.M; m++ {
			vid := video.ID(m)
			stored := false
			for i := 0; i < cat.C; i++ {
				if v.Stores(b, cat.Stripe(vid, i)) {
					stored = true
					break
				}
			}
			if !stored && v.SwarmAllowance(vid) > 0 {
				out = append(out, Demand{Box: b, Video: vid})
				break
			}
		}
	}
	return out
}

func TestFailStallKeepsRunning(t *testing.T) {
	const n, d, c, T, k = 10, 1, 4, 12, 1
	sys := buildHomogeneous(t, 8, n, d, c, T, k, 0.5, 2.0, func(cfg *Config) {
		cfg.Failure = FailStall
	})
	rep, err := sys.Run(genAvoidStored{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatal("stall mode must not fail-stop")
	}
	if rep.Stalls == 0 {
		t.Fatal("expected stalls under starvation")
	}
	if rep.Rounds != 30 {
		t.Errorf("rounds = %d, want 30", rep.Rounds)
	}
}

func TestFlashCrowdPreloadSurvives(t *testing.T) {
	// Everyone piles onto video 0 at maximal growth µ=1.5 with c=4 >
	// (2µ²−1)/(u−1) = 2.33: the preloading strategy must absorb it.
	const n, d, c, T, k = 24, 2, 4, 20, 4
	sys := buildHomogeneous(t, 9, n, d, c, T, k, 2.5, 1.5, nil)
	rep, err := sys.Run(genFlashCrowd{target: 0}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("flash crowd broke the preload strategy at round %d: %+v",
			rep.FailRound, rep.Obstructions)
	}
	if rep.MaxSwarm < n/2 {
		t.Errorf("flash crowd never grew: max swarm %d", rep.MaxSwarm)
	}
}

// genFlashCrowd floods one video at the maximum admissible rate.
type genFlashCrowd struct{ target video.ID }

func (g genFlashCrowd) Next(v *View, _ int) []Demand {
	var out []Demand
	allow := v.SwarmAllowance(g.target)
	for b := 0; b < v.NumBoxes() && allow > 0; b++ {
		if v.BoxIdle(b) {
			out = append(out, Demand{Box: b, Video: g.target})
			allow--
		}
	}
	return out
}

func TestSourcingOnlyWeakerThanSwarming(t *testing.T) {
	// With caches disabled (sourcing-only baseline, experiment E9) a flash
	// crowd larger than the per-stripe sourcing capacity k·⌊uc⌋ = 40 must
	// hit an obstruction...
	const n, d, c, T, k = 48, 2, 4, 20, 4
	sourcing := buildHomogeneous(t, 9, n, d, c, T, k, 2.5, 1.5, func(cfg *Config) {
		cfg.DisableCacheServing = true
	})
	rep, err := sourcing.Run(genFlashCrowd{target: 0}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("sourcing-only baseline should collapse under a flash crowd")
	}
	// ...that swarming absorbs at identical parameters.
	swarming := buildHomogeneous(t, 9, n, d, c, T, k, 2.5, 1.5, nil)
	rep2, err := swarming.Run(genFlashCrowd{target: 0}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Failed {
		t.Fatalf("swarming should absorb the same crowd; failed at round %d: %+v",
			rep2.FailRound, rep2.Obstructions)
	}
}

func TestSelfPossessionSkipsRequests(t *testing.T) {
	// One box stores the full catalog (n=1... use 2 boxes, box 0 stores
	// everything of video 0 by construction): build a tiny custom
	// allocation where box 0 stores all stripes of video 0.
	cat := video.MustCatalog(2, 2, 8)
	alloc, err := allocation.Permutation(stats.NewRNG(1), cat, []int{4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Find a box and video fully self-stored, if any; otherwise force the
	// scenario through FullReplication.
	full, _ := allocation.FullReplication(cat, []int{4, 4}, 2)
	_ = alloc
	cfg := Config{Alloc: full, Uploads: []float64{2, 2}, Mu: 2, Paranoid: true}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With k=2 over 2 boxes round-robin, both boxes store every stripe:
	// a demand completes instantly with zero requests.
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 0, Video: 0}}}}
	rep, err := sys.Run(gen, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompletedViewings != 1 {
		t.Fatalf("self-possessed viewing did not complete instantly: %+v", rep)
	}
	if rep.PeakRequests != 0 {
		t.Errorf("no requests should have been issued, peak = %d", rep.PeakRequests)
	}
}

func TestNaiveStrategyStartupDelay(t *testing.T) {
	sys := buildHomogeneous(t, 11, 12, 2, 3, 10, 4, 2.0, 1.5, func(cfg *Config) {
		cfg.Strategy = StrategyNaive
	})
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 0, Video: 0}}}}
	rep, err := sys.Run(gen, 13)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("naive single viewing failed")
	}
	if rep.StartupDelay.Mean != 2 {
		t.Errorf("naive startup delay = %v, want 2", rep.StartupDelay.Mean)
	}
}

func TestTraceRounds(t *testing.T) {
	sys := buildHomogeneous(t, 12, 12, 2, 3, 10, 4, 2.0, 1.5, func(cfg *Config) {
		cfg.TraceRounds = true
	})
	gen := &uniformGen{rng: stats.NewRNG(5), p: 0.5}
	rep, err := sys.Run(gen, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) != 20 {
		t.Fatalf("trace has %d rounds, want 20", len(rep.Trace))
	}
	for i, rs := range rep.Trace {
		if rs.Round != i+1 {
			t.Fatalf("trace round %d labeled %d", i, rs.Round)
		}
		if rs.Utilization < 0 || rs.Utilization > 1 {
			t.Fatalf("utilization %v out of range", rs.Utilization)
		}
	}
}

func TestStepAfterFailureErrors(t *testing.T) {
	const n, d, c, T, k = 10, 1, 4, 12, 1
	sys := buildHomogeneous(t, 8, n, d, c, T, k, 0.5, 2.0, nil)
	if _, err := sys.Run(genAvoidStored{}, 10); err != nil {
		t.Fatal(err)
	}
	if !sys.Failed() {
		t.Fatal("system should have failed")
	}
	if _, err := sys.Step(nil); err == nil {
		t.Fatal("stepping a failed system should error")
	}
}

func TestStartupDelayWithBorn(t *testing.T) {
	sys := buildHomogeneous(t, 13, 12, 2, 3, 10, 4, 2.0, 1.5, nil)
	// Demand born at round 1 but only admitted at round 4.
	gen := &scripted{byRound: map[int][]Demand{4: {{Box: 0, Video: 0, Born: 1}}}}
	rep, err := sys.Run(gen, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StartupDelay.Mean != 6 { // 3 waiting + 3 intrinsic
		t.Errorf("delay with Born = %v, want 6", rep.StartupDelay.Mean)
	}
}

func TestViewAccessors(t *testing.T) {
	sys := buildHomogeneous(t, 14, 12, 2, 3, 10, 4, 2.0, 1.5, nil)
	v := sys.View()
	if v.NumBoxes() != 12 {
		t.Errorf("NumBoxes = %d", v.NumBoxes())
	}
	if v.Upload(0) != 2.0 {
		t.Errorf("Upload = %v", v.Upload(0))
	}
	if v.UploadSlots(0) != 6 {
		t.Errorf("UploadSlots = %d, want ⌊2·3⌋ = 6", v.UploadSlots(0))
	}
	idle := v.IdleBoxes(nil)
	if len(idle) != 12 {
		t.Errorf("IdleBoxes = %d", len(idle))
	}
	if v.ActiveRequests() != 0 {
		t.Errorf("ActiveRequests = %d", v.ActiveRequests())
	}
	st := v.Catalog().Stripe(0, 0)
	if v.Replicas(st) != 4 {
		t.Errorf("Replicas = %d", v.Replicas(st))
	}
	if len(v.StripeHolders(st)) != 4 {
		t.Errorf("StripeHolders = %d", len(v.StripeHolders(st)))
	}
}

func TestBackToBackViewings(t *testing.T) {
	// A box watches two videos in sequence; its playback cache from the
	// first viewing stays serviceable (window T) during the second.
	const T = 8
	sys := buildHomogeneous(t, 15, 12, 2, 3, T, 4, 2.0, 1.5, nil)
	gen := &scripted{byRound: map[int][]Demand{
		1:     {{Box: 0, Video: 0}},
		T + 3: {{Box: 0, Video: 1}},
	}}
	rep, err := sys.Run(gen, 2*T+8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatal("sequential viewings failed")
	}
	if rep.CompletedViewings != 2 {
		t.Fatalf("completed = %d, want 2", rep.CompletedViewings)
	}
}
