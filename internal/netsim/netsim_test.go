package netsim

import (
	"testing"
)

// echoNode replies to every ping with a pong; the origin counts pongs.
type echoNode struct {
	pings int
	pongs int
}

type ping struct{ hop int }
type pong struct{}

func (e *echoNode) OnTimer(ctx *Context, kind int) {
	ctx.Send(NodeID(kind), ping{})
}

func (e *echoNode) OnMessage(ctx *Context, msg Message) {
	switch msg.Payload.(type) {
	case ping:
		e.pings++
		ctx.Send(msg.From, pong{})
	case pong:
		e.pongs++
	}
}

func TestPingPong(t *testing.T) {
	net := New(Config{BaseLatency: 1, Seed: 1})
	a := net.AddNode(&echoNode{})
	b := net.AddNode(&echoNode{})
	net.Timer(a, 0, int(b)) // a pings b at t=0
	net.RunAll(100)
	nodeA := getNode(t, net, a)
	nodeB := getNode(t, net, b)
	if nodeB.pings != 1 || nodeA.pongs != 1 {
		t.Fatalf("pings=%d pongs=%d", nodeB.pings, nodeA.pongs)
	}
	if net.MessagesSent() != 2 || net.MessagesDelivered() != 2 {
		t.Fatalf("sent=%d delivered=%d", net.MessagesSent(), net.MessagesDelivered())
	}
	if net.Now() != 2 { // two hops of latency 1
		t.Fatalf("now=%v, want 2", net.Now())
	}
}

func getNode(t *testing.T, net *Network, id NodeID) *echoNode {
	t.Helper()
	// White-box access through the handler slice.
	return net.nodes[id].(*echoNode)
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		net := New(Config{BaseLatency: 1, Jitter: 0.5, Seed: 99})
		var ids []NodeID
		for i := 0; i < 5; i++ {
			ids = append(ids, net.AddNode(&echoNode{}))
		}
		// Everyone pings everyone.
		for _, from := range ids {
			for _, to := range ids {
				if from != to {
					net.Timer(from, 0, int(to))
				}
			}
		}
		net.RunAll(1000)
		return net.MessagesSent(), net.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("runs differ: (%d,%v) vs (%d,%v)", s1, t1, s2, t2)
	}
	if s1 != 40 { // 20 pings + 20 pongs
		t.Fatalf("sent=%d, want 40", s1)
	}
}

func TestEventOrderingByTime(t *testing.T) {
	net := New(Config{BaseLatency: 1, Seed: 1})
	rec := &recorder{}
	id := net.AddNode(rec)
	net.Timer(id, 5, 5)
	net.Timer(id, 1, 1)
	net.Timer(id, 3, 3)
	net.RunAll(10)
	if len(rec.kinds) != 3 || rec.kinds[0] != 1 || rec.kinds[1] != 3 || rec.kinds[2] != 5 {
		t.Fatalf("timer order: %v", rec.kinds)
	}
}

type recorder struct{ kinds []int }

func (r *recorder) OnTimer(_ *Context, kind int) { r.kinds = append(r.kinds, kind) }
func (r *recorder) OnMessage(*Context, Message)  {}

func TestTieBreakBySequence(t *testing.T) {
	net := New(Config{BaseLatency: 1, Seed: 1})
	rec := &recorder{}
	id := net.AddNode(rec)
	for k := 0; k < 10; k++ {
		net.Timer(id, 2, k) // all at the same instant
	}
	net.RunAll(100)
	for k, got := range rec.kinds {
		if got != k {
			t.Fatalf("tie-break order broken: %v", rec.kinds)
		}
	}
}

func TestRunUntil(t *testing.T) {
	net := New(Config{BaseLatency: 1, Seed: 1})
	rec := &recorder{}
	id := net.AddNode(rec)
	net.Timer(id, 1, 1)
	net.Timer(id, 10, 10)
	if n := net.Run(5); n != 1 {
		t.Fatalf("processed %d events, want 1", n)
	}
	if len(rec.kinds) != 1 {
		t.Fatalf("kinds=%v", rec.kinds)
	}
	if n := net.Run(20); n != 1 {
		t.Fatalf("second run processed %d", n)
	}
}

func TestLivelockGuard(t *testing.T) {
	net := New(Config{BaseLatency: 1, Seed: 1})
	id := net.AddNode(&selfPinger{})
	net.Timer(id, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected livelock panic")
		}
	}()
	net.RunAll(50)
}

type selfPinger struct{}

func (s *selfPinger) OnTimer(ctx *Context, int2 int) { ctx.SetTimer(1, 0) }
func (s *selfPinger) OnMessage(*Context, Message)    {}

func TestPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { New(Config{BaseLatency: -1}) },
		func() {
			net := New(Config{BaseLatency: 1})
			id := net.AddNode(&recorder{})
			net.Timer(id, 1, 0)
			net.Run(10)
			net.Timer(id, 0, 0) // in the past
		},
		func() {
			net := New(Config{BaseLatency: 1})
			net.AddNode(&selfPinger{})
			ctx := &Context{net: net, self: 0}
			ctx.Send(99, nil) // unknown node
		},
		func() {
			net := New(Config{BaseLatency: 1})
			net.AddNode(&selfPinger{})
			ctx := &Context{net: net, self: 0}
			ctx.SetTimer(-1, 0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestJitterWithinBounds(t *testing.T) {
	net := New(Config{BaseLatency: 2, Jitter: 1, Seed: 7})
	rec := &arrivalRecorder{}
	a := net.AddNode(rec)
	b := net.AddNode(rec)
	_ = b
	for i := 0; i < 100; i++ {
		net.send(b, a, i)
	}
	net.RunAll(1000)
	for _, at := range rec.times {
		if at < 2 || at >= 3 {
			t.Fatalf("delivery at %v outside [2,3)", at)
		}
	}
}

type arrivalRecorder struct{ times []float64 }

func (r *arrivalRecorder) OnTimer(*Context, int) {}
func (r *arrivalRecorder) OnMessage(ctx *Context, _ Message) {
	r.times = append(r.times, ctx.Now())
}

func TestZeroLatencyDefaulted(t *testing.T) {
	net := New(Config{})
	if net.cfg.BaseLatency != 1 {
		t.Fatalf("zero config should default base latency to 1, got %v", net.cfg.BaseLatency)
	}
}
