package ckpt

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(0)
	w.U64(math.MaxUint64)
	w.I64(-1)
	w.I64(math.MinInt64)
	w.Int(42)
	w.I32(-7)
	w.Bool(true)
	w.Bool(false)
	w.F64(-0.5)
	w.F64(math.Inf(1))
	w.Bytes([]byte("hello"))
	w.Bytes(nil)
	w.I32s([]int32{-1, 0, 1 << 30})
	w.I64s([]int64{math.MinInt64, math.MaxInt64})
	w.Ints([]int{3, 2, 1})
	w.F64s([]float64{1.5, -2.25})
	w.Bools([]bool{true, false, true})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.U64(); got != 0 {
		t.Fatalf("U64: %d", got)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Fatalf("U64 max: %d", got)
	}
	if got := r.I64(); got != -1 {
		t.Fatalf("I64: %d", got)
	}
	if got := r.I64(); got != math.MinInt64 {
		t.Fatalf("I64 min: %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Fatalf("Int: %d", got)
	}
	if got := r.I32(); got != -7 {
		t.Fatalf("I32: %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool order")
	}
	if got := r.F64(); got != -0.5 {
		t.Fatalf("F64: %v", got)
	}
	if got := r.F64(); !math.IsInf(got, 1) {
		t.Fatalf("F64 inf: %v", got)
	}
	if got := r.Bytes(); string(got) != "hello" {
		t.Fatalf("Bytes: %q", got)
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("nil Bytes: %v", got)
	}
	if got := r.I32s(); !reflect.DeepEqual(got, []int32{-1, 0, 1 << 30}) {
		t.Fatalf("I32s: %v", got)
	}
	if got := r.I64s(); !reflect.DeepEqual(got, []int64{math.MinInt64, math.MaxInt64}) {
		t.Fatalf("I64s: %v", got)
	}
	if got := r.Ints(); !reflect.DeepEqual(got, []int{3, 2, 1}) {
		t.Fatalf("Ints: %v", got)
	}
	if got := r.F64s(); !reflect.DeepEqual(got, []float64{1.5, -2.25}) {
		t.Fatalf("F64s: %v", got)
	}
	if got := r.Bools(); !reflect.DeepEqual(got, []bool{true, false, true}) {
		t.Fatalf("Bools: %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderStickyErrorOnTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64s(make([]int64, 100))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()[:10]))
	_ = r.I64s()
	if r.Err() == nil {
		t.Fatal("truncated slice decoded without error")
	}
	// Error must stick: further reads are no-ops, not fresh attempts.
	first := r.Err()
	_ = r.U64()
	_ = r.Bytes()
	if r.Err() != first {
		t.Fatalf("error did not stick: %v then %v", first, r.Err())
	}
}

func TestReaderRejectsHugeSliceLen(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(math.MaxUint64) // absurd length prefix
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.I32s(); got != nil || r.Err() == nil {
		t.Fatalf("huge slice length accepted: %d elems, err %v", len(got), r.Err())
	}
}

func TestEmptyStream(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("read from empty stream succeeded")
	}
}
