package bipartite

import (
	"fmt"
	"sort"
)

// Sharded coordinates one sub-Matcher per stripe shard so the hot stages
// of a round can run concurrently. Left nodes partition cleanly — a
// request for stripe s only ever edges into boxes possessing s, and
// stripes are assigned to shards statically — but box capacity is shared
// across shards, so each sub-matcher works against a *capacity view*:
//
//	view_s(b) = cap(b) − load(b) + load_s(b)
//
// i.e. the box's true capacity minus what the *other* shards held at the
// start of the round. Views make every provisional claim a shard takes
// individually feasible against round-start state, but simultaneous
// claims can oversubscribe a box; the deterministic reduction phase
// (Merge) recomputes true loads from per-shard touch logs in fixed shard
// order, evicts over-capacity claims tail-first from the highest shard
// down, and the spilled lefts are re-augmented in a short serial pass
// over the global graph (GlobalAugment), which also runs cross-shard
// alternating paths so the final matching is globally maximum. Every step
// is a fixed-order fold over per-shard state, so results depend only on
// the shard count, never on GOMAXPROCS or scheduling.
//
// Sub-matchers address rights in a shard-local dense id space grown on
// first touch (AddRight): at ten million boxes a shard only materializes
// state for the boxes its stripes' holders and cache entries actually
// reach, not the whole population. The l2g/g2l tables translate between
// the spaces; global left ids are shared by all sub-matchers (each left
// is active in exactly one).
type Sharded struct {
	subs []*Matcher
	g2l  [][]int32 // per shard: global box -> local right, -1 unregistered
	l2g  [][]int32 // per shard: local right -> global box

	gcap      []int64
	gload     []int64
	leftShard []int32 // left -> owning shard

	// Capacity-view refresh window: rights whose true load (or local
	// distribution) changed since the last refresh. Shards drain the list
	// read-only at the start of their parallel stage; all writes happen in
	// the serial phases.
	capStamp []uint32
	capEpoch uint32
	capDirty []int32

	// Merge / global-search scratch, reused across rounds. outBuf is the
	// GlobalAugment return buffer (DrainAssigned convention: valid until
	// the next call, never retained by callers).
	touches []int32
	spill   []int
	roots   []int
	outBuf  []int

	epoch   uint32
	rvisit  []uint32
	rparent []int32
	lvisit  []uint32
	queue   []int32
	reached []int32

	// trav owns the reusable traversal frames for the serial global
	// searches (see cursor.go); bound at each public entry point.
	trav traverser
}

// NewSharded builds a coordinator over the given box capacities with the
// given shard count (≥ 1). Sub-matchers start empty and grow as shards
// touch boxes.
func NewSharded(caps []int64, shards int) *Sharded {
	sh := &Sharded{
		subs:     make([]*Matcher, shards),
		g2l:      make([][]int32, shards),
		l2g:      make([][]int32, shards),
		gcap:     append([]int64(nil), caps...),
		gload:    make([]int64, len(caps)),
		capStamp: make([]uint32, len(caps)),
		capEpoch: 1,
		rvisit:   make([]uint32, len(caps)),
		rparent:  make([]int32, len(caps)),
	}
	for s := range sh.subs {
		sh.subs[s] = NewMatcher(nil)
		sh.subs[s].LogTouches(true)
		g2l := make([]int32, len(caps))
		for i := range g2l {
			g2l[i] = -1
		}
		sh.g2l[s] = g2l
	}
	return sh
}

// NumShards returns the shard count.
func (sh *Sharded) NumShards() int { return len(sh.subs) }

// Sub returns shard s's sub-matcher for shard-local operations (per-shard
// augmentation, invalidation, assignment logs). Callers must confine
// concurrent use of a sub-matcher to its own shard's stage.
func (sh *Sharded) Sub(s int) *Matcher { return sh.subs[s] }

// Register maps global box g into shard s's right space, materializing
// the right on first touch with the current capacity view. Safe to call
// from shard s's own parallel stage (only shard s mutates its tables) and
// from any serial phase.
func (sh *Sharded) Register(s, g int) int {
	if lr := sh.g2l[s][g]; lr >= 0 {
		return int(lr)
	}
	sub := sh.subs[s]
	lr := sub.AddRight(sh.gcap[g] - sh.gload[g])
	sh.g2l[s][g] = int32(lr)
	sh.l2g[s] = append(sh.l2g[s], int32(g))
	return lr
}

// Local returns shard s's right id for global box g, or -1 when the box
// was never registered there.
func (sh *Sharded) Local(s, g int) int {
	return int(sh.g2l[s][g])
}

// Global translates shard s's local right id back to the global box id.
func (sh *Sharded) Global(s, lr int) int { return int(sh.l2g[s][lr]) }

// AddLeft activates left l in shard s.
func (sh *Sharded) AddLeft(l, s int) {
	for len(sh.leftShard) <= l {
		sh.leftShard = append(sh.leftShard, -1)
		sh.lvisit = append(sh.lvisit, 0)
	}
	sh.leftShard[l] = int32(s)
	sh.subs[s].AddLeft(l)
}

// RemoveLeft deactivates left l, releasing its slot in both the owning
// sub-matcher and the global load table.
func (sh *Sharded) RemoveLeft(l int) {
	s := sh.leftShard[l]
	sub := sh.subs[s]
	was := sub.Server(l)
	sub.RemoveLeft(l)
	if was != Unassigned {
		g := int(sh.l2g[s][was])
		sh.gload[g]--
		sh.markCapDirty(g)
	}
}

// Shard returns the shard owning left l.
func (sh *Sharded) Shard(l int) int { return int(sh.leftShard[l]) }

// Server returns the global box assigned to left l, or Unassigned.
func (sh *Sharded) Server(l int) int {
	if l >= len(sh.leftShard) || sh.leftShard[l] < 0 {
		return Unassigned
	}
	s := sh.leftShard[l]
	lr := sh.subs[s].Server(l)
	if lr == Unassigned {
		return Unassigned
	}
	return int(sh.l2g[s][lr])
}

// Load returns the true load of global box g (fresh in serial phases;
// during parallel stages it reflects round-start state).
func (sh *Sharded) Load(g int) int64 { return sh.gload[g] }

// Capacity returns the capacity of global box g.
func (sh *Sharded) Capacity(g int) int64 { return sh.gcap[g] }

// MatchedCount sums the sub-matchers' matched counts.
func (sh *Sharded) MatchedCount() int {
	n := 0
	for _, sub := range sh.subs {
		n += sub.MatchedCount()
	}
	return n
}

func (sh *Sharded) markCapDirty(g int) {
	if sh.capStamp[g] == sh.capEpoch {
		return
	}
	sh.capStamp[g] = sh.capEpoch
	sh.capDirty = append(sh.capDirty, int32(g))
}

// RefreshCapacities re-derives shard s's capacity views for every right
// in the current dirty window. Called by each shard at the start of its
// parallel stage: the window is read-only there (all writers are serial),
// and gcap − gload is exactly the spare capacity the other shards left at
// round start plus this shard's own held load.
func (sh *Sharded) RefreshCapacities(s int) {
	sub := sh.subs[s]
	g2l := sh.g2l[s]
	for _, g := range sh.capDirty {
		if lr := g2l[g]; lr >= 0 {
			sub.SetCapacity(int(lr), sh.gcap[g]-sh.gload[g]+sub.Load(int(lr)))
		}
	}
}

// sumLoads recomputes the true load of global box g across all shards.
func (sh *Sharded) sumLoads(g int) int64 {
	var sum int64
	for s := range sh.subs {
		if lr := sh.g2l[s][g]; lr >= 0 {
			sum += sh.subs[s].Load(int(lr))
		}
	}
	return sum
}

// Merge is the deterministic reduction phase run after the parallel
// augmentation stage: it opens a fresh capacity-dirty window, folds every
// shard's touch log in fixed shard order to recompute true box loads, and
// evicts over-capacity claims — highest shard first, each shard's
// assignment-list tail first — until every box is feasible. The evicted
// lefts are returned (ascending) for the serial re-augmentation pass.
// Identical per-shard inputs produce identical spills at any GOMAXPROCS.
func (sh *Sharded) Merge() []int {
	sh.capDirty = sh.capDirty[:0]
	sh.capEpoch++
	if sh.capEpoch == 0 {
		for i := range sh.capStamp {
			sh.capStamp[i] = 0
		}
		sh.capEpoch = 1
	}
	sh.spill = sh.spill[:0]
	for s := range sh.subs {
		sh.touches = sh.subs[s].DrainTouched(sh.touches[:0])
		for _, lr := range sh.touches {
			g := int(sh.l2g[s][lr])
			if sh.capStamp[g] == sh.capEpoch {
				continue
			}
			sh.markCapDirty(g)
			sh.gload[g] = sh.sumLoads(g)
		}
	}
	// Second sweep: evict where claims oversubscribed a box. capDirty is
	// in deterministic first-touch order; eviction order across boxes is
	// immaterial (boxes are independent here).
	for _, g32 := range sh.capDirty {
		g := int(g32)
		for s := len(sh.subs) - 1; s >= 0 && sh.gload[g] > sh.gcap[g]; s-- {
			lr := sh.g2l[s][g]
			if lr < 0 {
				continue
			}
			sub := sh.subs[s]
			for sh.gload[g] > sh.gcap[g] {
				lefts := sub.AssignedLefts(int(lr))
				if len(lefts) == 0 {
					break
				}
				victim := int(lefts[len(lefts)-1])
				sub.Unassign(victim)
				sh.gload[g]--
				sh.spill = append(sh.spill, victim)
			}
		}
	}
	sort.Ints(sh.spill)
	return sh.spill
}

// beginSearch opens a global alternating-search scope (epoch-stamped
// scratch, cleared only on the rare wrap).
func (sh *Sharded) beginSearch() {
	sh.epoch++
	if sh.epoch == 0 {
		for i := range sh.rvisit {
			sh.rvisit[i] = 0
		}
		for i := range sh.lvisit {
			sh.lvisit[i] = 0
		}
		sh.epoch = 1
	}
}

// expand pushes every left assigned to global box g (across all shards,
// in shard order) onto the search queue.
func (sh *Sharded) expand(g int32) {
	for s := range sh.subs {
		lr := sh.g2l[s][g]
		if lr < 0 {
			continue
		}
		for _, l2 := range sh.subs[s].AssignedLefts(int(lr)) {
			if sh.lvisit[l2] != sh.epoch {
				sh.lvisit[l2] = sh.epoch
				sh.queue = append(sh.queue, l2)
			}
		}
	}
}

// applyPath shifts assignments back along the global parent chain from a
// box with spare true capacity, maintaining gload and the dirty window.
func (sh *Sharded) applyPath(g int) {
	r := g
	for {
		l := int(sh.rparent[r])
		s := int(sh.leftShard[l])
		sub := sh.subs[s]
		lr := sh.Register(s, r)
		cur := sub.Server(l)
		sh.gload[r]++
		sh.markCapDirty(r)
		sub.ForceAssign(l, lr)
		if cur == Unassigned {
			return
		}
		prev := int(sh.l2g[s][cur])
		sh.gload[prev]--
		sh.markCapDirty(prev)
		r = prev
	}
}

// augmentOne runs one alternating BFS from an unmatched root over the
// global graph (true capacities, cross-shard expansions) and applies the
// augmenting path if a box with spare capacity is reached.
func (sh *Sharded) augmentOne(root int) bool {
	sh.beginSearch()
	sh.queue = sh.queue[:0]
	sh.queue = append(sh.queue, int32(root))
	sh.lvisit[root] = sh.epoch
	for head := 0; head < len(sh.queue); head++ {
		l := sh.queue[head]
		found := -1
		sh.trav.begin(l, 0)
		for r := sh.trav.next(0); r >= 0; r = sh.trav.next(0) {
			if sh.rvisit[r] == sh.epoch {
				continue
			}
			sh.rvisit[r] = sh.epoch
			sh.rparent[r] = l
			if sh.gload[r] < sh.gcap[r] {
				found = r
				break
			}
			sh.expand(int32(r))
		}
		if found >= 0 {
			sh.applyPath(found)
			return true
		}
	}
	return false
}

// GlobalAugment is the short serial pass completing the round's matching:
// it retries the merge spill plus every shard's unmatched frontier with
// alternating searches over the *global* graph, whose paths may cross
// shard boundaries (shard-local maximality does not imply global
// maximality). On return no augmenting path exists from any returned
// left, so the matching is maximum; the remainder is returned ascending.
// The returned slice is coordinator-owned scratch (the DrainAssigned
// convention): valid until the next GlobalAugment call only.
func (sh *Sharded) GlobalAugment(adj Adjacency, spill []int, shardUnmatched [][]int) []int {
	sh.trav.bind(adj)
	hinter, hinted := adj.(Hinted)
	roots := sh.roots[:0]
	roots = append(roots, spill...)
	for _, um := range shardUnmatched {
		roots = append(roots, um...)
	}
	sort.Ints(roots)
	for len(roots) > 0 {
		progressed := false
		rest := roots[:0]
		for _, l := range roots {
			if hinted && hinter.ServerCountHint(l) == 0 {
				rest = append(rest, l)
				continue
			}
			if sh.augmentOne(l) {
				progressed = true
			} else {
				rest = append(rest, l)
			}
		}
		roots = rest
		if !progressed {
			break
		}
	}
	sh.roots = roots[:0]
	if len(roots) == 0 {
		return nil
	}
	sh.outBuf = append(sh.outBuf[:0], roots...)
	return sh.outBuf
}

// CanonicalizeDeficit is the sharded counterpart of
// Matcher.CanonicalizeDeficit: it drives a deficient maximum matching to
// the canonical covered set (no unmatched left can displace a matched
// left with a larger id) with exchanges over the global graph. Because
// the fixpoint is unique, the serial engine and every shard count agree
// on exactly which requests stall.
func (sh *Sharded) CanonicalizeDeficit(adj Adjacency, unmatched []int) []int {
	sh.trav.bind(adj)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(unmatched); i++ {
			u := unmatched[i]
			if sh.Server(u) != Unassigned {
				continue
			}
			if v, ok := sh.displace(adj, u); ok {
				if v >= 0 {
					unmatched[i] = v
				} else {
					unmatched = append(unmatched[:i], unmatched[i+1:]...)
					i--
				}
				changed = true
			}
		}
		if changed {
			sort.Ints(unmatched)
		}
	}
	return unmatched
}

// displace mirrors Matcher.displace over the global graph: BFS from the
// unmatched root, stop at the first reached assigned left with a larger
// id, unassign it, and shift the path.
func (sh *Sharded) displace(adj Adjacency, root int) (int, bool) {
	if hinter, ok := adj.(Hinted); ok && hinter.ServerCountHint(root) == 0 {
		return -1, false
	}
	sh.beginSearch()
	sh.queue = sh.queue[:0]
	sh.queue = append(sh.queue, int32(root))
	sh.lvisit[root] = sh.epoch
	for head := 0; head < len(sh.queue); head++ {
		l := sh.queue[head]
		victim, server := -1, -1
		sh.trav.begin(l, 0)
	probe:
		for r := sh.trav.next(0); r >= 0; r = sh.trav.next(0) {
			if sh.rvisit[r] == sh.epoch {
				continue
			}
			sh.rvisit[r] = sh.epoch
			sh.rparent[r] = l
			if sh.gload[r] < sh.gcap[r] {
				server = r
				break
			}
			for s := range sh.subs {
				lr := sh.g2l[s][r]
				if lr < 0 {
					continue
				}
				for _, l2 := range sh.subs[s].AssignedLefts(int(lr)) {
					if sh.lvisit[l2] == sh.epoch {
						continue
					}
					sh.lvisit[l2] = sh.epoch
					if int(l2) > root {
						victim, server = int(l2), r
						break probe
					}
					sh.queue = append(sh.queue, l2)
				}
			}
		}
		if server >= 0 {
			if victim >= 0 {
				vs := int(sh.leftShard[victim])
				sh.subs[vs].Unassign(victim)
				sh.gload[server]--
				sh.markCapDirty(server)
			}
			sh.applyPath(server)
			return victim, true
		}
	}
	return -1, false
}

// HallViolator extracts the Lemma 1 obstruction certificate from the
// final unmatched set: alternating reachability over the global graph.
// The reachable region is invariant across maximum matchings
// (Dulmage–Mendelsohn), so the certificate matches the serial engine's
// bit for bit.
func (sh *Sharded) HallViolator(adj Adjacency, unmatched []int) *Violator {
	if len(unmatched) == 0 {
		return nil
	}
	sh.trav.bind(adj)
	sh.beginSearch()
	sh.queue = sh.queue[:0]
	sh.reached = sh.reached[:0]
	for _, l := range unmatched {
		if sh.lvisit[l] != sh.epoch {
			sh.lvisit[l] = sh.epoch
			sh.queue = append(sh.queue, int32(l))
		}
	}
	for head := 0; head < len(sh.queue); head++ {
		l := sh.queue[head]
		sh.trav.begin(l, 0)
		for r := sh.trav.next(0); r >= 0; r = sh.trav.next(0) {
			if sh.rvisit[r] == sh.epoch {
				continue
			}
			sh.rvisit[r] = sh.epoch
			sh.reached = append(sh.reached, int32(r))
			sh.expand(int32(r))
		}
	}
	v := &Violator{
		Lefts:  make([]int, len(sh.queue)),
		Rights: make([]int, len(sh.reached)),
	}
	for i, l := range sh.queue {
		v.Lefts[i] = int(l)
	}
	sort.Ints(v.Lefts)
	for i, r := range sh.reached {
		v.Rights[i] = int(r)
		v.Slots += sh.gcap[r]
	}
	sort.Ints(v.Rights)
	return v
}

// SetCapacity changes global box g's capacity between rounds. Lowering
// below the current true load evicts assigned lefts — highest shard
// first, list tails first, the same deterministic rule Merge uses — and
// the victims re-enter their shards' dirty queues for the next round's
// augmentation. Returns the number of evictions.
func (sh *Sharded) SetCapacity(g int, c int64) int {
	if c < 0 {
		panic("bipartite: negative capacity")
	}
	sh.gcap[g] = c
	sh.markCapDirty(g)
	evicted := 0
	for s := len(sh.subs) - 1; s >= 0 && sh.gload[g] > c; s-- {
		lr := sh.g2l[s][g]
		if lr < 0 {
			continue
		}
		sub := sh.subs[s]
		for sh.gload[g] > c {
			lefts := sub.AssignedLefts(int(lr))
			if len(lefts) == 0 {
				break
			}
			sub.Unassign(int(lefts[len(lefts)-1]))
			sh.gload[g]--
			evicted++
		}
	}
	// Local capacity views are not touched here: g sits in the dirty
	// window, so RefreshCapacities re-derives every shard's view before
	// the next parallel stage — and nothing matches in between.
	return evicted
}

// VerifyLoads cross-checks the global load table against the sub-matchers
// (paranoid mode): every box's true load must equal the sum of its
// per-shard loads and respect capacity.
func (sh *Sharded) VerifyLoads() error {
	for g := range sh.gcap {
		sum := sh.sumLoads(g)
		if sum != sh.gload[g] {
			return fmt.Errorf("box %d: global load %d != shard sum %d", g, sh.gload[g], sum)
		}
		if sum > sh.gcap[g] {
			return fmt.Errorf("box %d over capacity: %d > %d", g, sum, sh.gcap[g])
		}
	}
	return nil
}
