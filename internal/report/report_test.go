package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := New("demo", "a", "bbbb")
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.Text()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title in:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns must align: header and rows share prefix widths.
	if !strings.HasPrefix(lines[1], "a  ") {
		t.Errorf("header misaligned: %q", lines[1])
	}
}

func TestTableArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	New("x", "a", "b").AddRow("only-one")
}

func TestAddRowValuesFormatting(t *testing.T) {
	tb := New("fmt", "s", "f", "i", "small", "big")
	tb.AddRowValues("str", 1.5, 42, 0.0000123, 3.5e7)
	row := tb.Rows[0]
	if row[0] != "str" {
		t.Errorf("string cell: %q", row[0])
	}
	if row[1] != "1.5000" {
		t.Errorf("float cell: %q", row[1])
	}
	if row[2] != "42" {
		t.Errorf("int cell: %q", row[2])
	}
	if !strings.Contains(row[3], "e-") {
		t.Errorf("small float should be scientific: %q", row[3])
	}
	if !strings.Contains(row[4], "e+") {
		t.Errorf("big float should be scientific: %q", row[4])
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("md", "x", "y")
	tb.AddNote("a note")
	tb.AddRow("1", "2")
	var b strings.Builder
	if err := tb.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### md", "> a note", "| x | y |", "|---|---|", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := New("csv", "a", "b")
	tb.AddRow(`plain`, `has,comma`)
	tb.AddRow(`has"quote`, "has\nnewline")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
}

func TestSeriesAndFigure(t *testing.T) {
	f := NewFigure("fig", "u", "catalog")
	s1 := f.AddSeries("measured")
	s2 := f.AddSeries("bound")
	s1.Add(1.1, 10)
	s1.Add(1.5, 50)
	s2.Add(1.1, 8)
	if s1.Len() != 2 || s2.Len() != 1 {
		t.Fatalf("series lengths wrong: %d %d", s1.Len(), s2.Len())
	}
	tb := f.Table()
	if len(tb.Cols) != 3 || tb.Cols[0] != "u" || tb.Cols[1] != "measured" {
		t.Fatalf("figure table columns: %v", tb.Cols)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("figure table rows: %d", len(tb.Rows))
	}
	if tb.Rows[1][2] != "" {
		t.Errorf("short series should pad with empty cell, got %q", tb.Rows[1][2])
	}
	if !strings.Contains(f.Text(), "fig") {
		t.Error("figure text missing title")
	}
}

func TestASCIIPlot(t *testing.T) {
	f := NewFigure("plot", "x", "y")
	s := f.AddSeries("s")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out := f.ASCIIPlot(40, 10)
	if !strings.Contains(out, "*") {
		t.Errorf("plot has no marks:\n%s", out)
	}
	if out2 := f.ASCIIPlot(2, 2); out2 != "" {
		t.Error("tiny plot should be empty")
	}
	empty := NewFigure("e", "x", "y")
	if empty.ASCIIPlot(40, 10) != "" {
		t.Error("empty figure should render nothing")
	}
}

func TestASCIIPlotDegenerateRange(t *testing.T) {
	f := NewFigure("flat", "x", "y")
	s := f.AddSeries("s")
	s.Add(1, 5)
	s.Add(1, 5) // zero x-range and y-range
	if out := f.ASCIIPlot(20, 5); !strings.Contains(out, "*") {
		t.Errorf("degenerate plot should still mark points:\n%s", out)
	}
}
