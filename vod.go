// Package vod is the public API of this reproduction of Boufkhad, Mathieu,
// de Montgolfier, Perino & Viennot, "An Upload Bandwidth Threshold for
// Peer-to-Peer Video-on-Demand Scalability" (IPDPS 2009).
//
// It assembles the internal substrates — stripe catalogs, random
// allocations, the round-based swarm engine with max-flow connection
// matching, heterogeneous relay compensation, and the analytical bounds —
// behind one builder:
//
//	sys, err := vod.New(vod.Spec{
//		Boxes:   200,
//		Upload:  1.5,
//		Storage: 4,
//		Growth:  1.2,
//		Seed:    42,
//	})
//	report, err := sys.Run(vod.NewZipfWorkload(7, 0.3, 0.9), 1000)
//
// Theorem-level planning is exposed through Plan and HeteroPlan; the
// adversarial generators and experiment harness used to reproduce the
// paper's claims live under internal/ and are driven by cmd/vodbench.
package vod

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/allocation"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/expander"
	"repro/internal/hetero"
	"repro/internal/stats"
	"repro/internal/video"
)

// Re-exported domain types. The aliases make the internal packages' types
// part of the public API surface without duplicating them.
type (
	// Catalog describes the video set: m videos, c stripes, T rounds.
	Catalog = video.Catalog
	// VideoID identifies a video.
	VideoID = video.ID
	// StripeID identifies a stripe.
	StripeID = video.StripeID
	// Demand is one user request (box wants video).
	Demand = core.Demand
	// Generator produces the demand sequence, one batch per round.
	Generator = core.Generator
	// View is the read-only system window handed to generators.
	View = core.View
	// Report aggregates a simulation run.
	Report = core.Report
	// Obstruction is a Lemma 1 infeasibility certificate.
	Obstruction = core.Obstruction
	// StepResult reports a single simulated round.
	StepResult = core.StepResult
	// Plan is a full Theorem 1 parameterization.
	Plan = analysis.Plan
	// HeteroPlan is a full Theorem 2 parameterization.
	HeteroPlan = analysis.HeteroPlan
	// Population is a heterogeneous box capacity profile.
	Population = hetero.Population
)

// Spec configures a video system. Zero values select paper defaults where
// they exist.
type Spec struct {
	// Boxes is the number of set-top boxes n (required).
	Boxes int
	// Upload is the homogeneous normalized upload capacity u. Ignored
	// when Uploads is set.
	Upload float64
	// Uploads gives per-box capacities for heterogeneous systems.
	Uploads []float64
	// Storage is the per-box storage d in videos (homogeneous). Ignored
	// when Storages is set.
	Storage float64
	// Storages gives per-box storage for heterogeneous systems.
	Storages []float64
	// Stripes is the stripe count c; 0 derives it from Theorem 1/2.
	Stripes int
	// Replicas is the per-stripe replication k; 0 picks a practical
	// default (4; the theorem bound is available via PlanFor).
	Replicas int
	// Duration is the video length T in rounds (default 100).
	Duration int
	// Growth is the maximal swarm growth µ (default 1.2).
	Growth float64
	// UStar activates the Section 4 heterogeneous relay construction for
	// boxes with upload below it (0 = homogeneous strategy).
	UStar float64
	// SourcingOnly disables playback-cache serving (baseline mode).
	SourcingOnly bool
	// Resilient keeps running through obstructions, counting stalls,
	// instead of halting at the first one.
	Resilient bool
	// Trace records per-round statistics into the report.
	Trace bool
	// Shards runs the round's hot stages on this many concurrent shards
	// (stripe mod Shards). Results are bit-identical at every shard count
	// — seeded runs stay reproducible — so this is purely a throughput
	// knob for large populations. 0 or 1 selects the serial engine; it is
	// deliberately NOT defaulted to GOMAXPROCS so single-run experiments
	// stay single-threaded unless asked.
	Shards int
	// LazyShardRights defers sharded right-space registration to first
	// touch instead of pre-registering from the allocation. Only worth
	// setting for extreme populations where ~Shards×Boxes right records
	// would dominate memory; results are identical either way.
	LazyShardRights bool
	// Seed drives the random allocation (and nothing else).
	Seed uint64
}

// System is a runnable video system.
type System struct {
	inner   *core.System
	spec    Spec
	catalog Catalog
	alloc   *allocation.Allocation
	caps    []int64
}

// New validates the spec, draws the random permutation allocation,
// computes relay compensation when UStar is set, and builds the system.
func New(spec Spec) (*System, error) {
	if spec.Boxes <= 0 {
		return nil, fmt.Errorf("vod: Spec.Boxes must be positive")
	}
	uploads := spec.Uploads
	if uploads == nil {
		if spec.Upload <= 0 {
			return nil, fmt.Errorf("vod: set Spec.Upload or Spec.Uploads")
		}
		uploads = make([]float64, spec.Boxes)
		for i := range uploads {
			uploads[i] = spec.Upload
		}
	}
	if len(uploads) != spec.Boxes {
		return nil, fmt.Errorf("vod: %d uploads for %d boxes", len(uploads), spec.Boxes)
	}
	storages := spec.Storages
	if storages == nil {
		d := spec.Storage
		if d <= 0 {
			d = 4
		}
		storages = make([]float64, spec.Boxes)
		for i := range storages {
			storages[i] = d
		}
	}
	if len(storages) != spec.Boxes {
		return nil, fmt.Errorf("vod: %d storages for %d boxes", len(storages), spec.Boxes)
	}
	mu := spec.Growth
	if mu == 0 {
		mu = 1.2
	}
	T := spec.Duration
	if T == 0 {
		T = 100
	}
	k := spec.Replicas
	if k == 0 {
		k = 4
	}
	c := spec.Stripes
	if c == 0 {
		var err error
		if spec.UStar > 0 {
			c, err = analysis.Theorem2ConstructionC(spec.UStar, mu)
		} else {
			avg := 0.0
			for _, u := range uploads {
				avg += u
			}
			avg /= float64(len(uploads))
			c, err = analysis.MinC(avg, mu)
		}
		if err != nil {
			return nil, fmt.Errorf("vod: cannot derive stripe count: %w", err)
		}
	}

	slots, m, err := hetero.AllocationSlots(storages, c, k)
	if err != nil {
		return nil, fmt.Errorf("vod: %w", err)
	}
	cat, err := video.NewCatalog(m, c, T)
	if err != nil {
		return nil, fmt.Errorf("vod: %w", err)
	}
	alloc, err := allocation.Permutation(stats.NewRNG(spec.Seed), cat, slots, k)
	if err != nil {
		return nil, fmt.Errorf("vod: %w", err)
	}

	cfg := core.Config{
		Alloc:               alloc,
		Uploads:             uploads,
		Mu:                  mu,
		DisableCacheServing: spec.SourcingOnly,
		TraceRounds:         spec.Trace,
		Shards:              spec.Shards,
		LazyShardRights:     spec.LazyShardRights,
	}
	if spec.Resilient {
		cfg.Failure = core.FailStall
	}
	if spec.UStar > 0 {
		relays, err := hetero.Compensate(uploads, spec.UStar)
		if err != nil {
			return nil, fmt.Errorf("vod: %w", err)
		}
		cfg.Strategy = core.StrategyRelayed
		cfg.UStar = spec.UStar
		cfg.Relays = relays
	}
	inner, err := core.NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("vod: %w", err)
	}
	capSlots := make([]int64, spec.Boxes)
	for b, u := range uploads {
		capSlots[b] = int64(analysis.UploadSlots(u, c))
	}
	return &System{inner: inner, spec: spec, catalog: cat, alloc: alloc, caps: capSlots}, nil
}

// Catalog returns the catalog the allocation achieved (its M is the
// largest catalog the spec's storage and replication admit).
func (s *System) Catalog() Catalog { return s.catalog }

// View returns the read-only view used by generators.
func (s *System) View() *View { return s.inner.View() }

// Step simulates one round with demands from gen (nil for none).
func (s *System) Step(gen Generator) (StepResult, error) { return s.inner.Step(gen) }

// Run simulates `rounds` rounds (stopping early at an obstruction unless
// the spec was Resilient) and returns the aggregate report.
func (s *System) Run(gen Generator, rounds int) (Report, error) { return s.inner.Run(gen, rounds) }

// Close releases the sharded engine's persistent shard workers (a no-op
// for serial systems). Idempotent; Step after Close returns an error.
// Systems dropped without Close are reclaimed by a runtime cleanup, but
// long-lived processes should Close explicitly.
func (s *System) Close() { s.inner.Close() }

// StageTiming is the sharded engine's per-round wall-clock split between
// the pooled parallel dispatches and the serial merge tail (zeros on the
// serial engine).
type StageTiming = core.StageTiming

// StageTiming reports the last round's parallel/serial split plus EWMAs.
func (s *System) StageTiming() StageTiming { return s.inner.StageTiming() }

// Failed reports whether the system hit a fail-stop obstruction.
func (s *System) Failed() bool { return s.inner.Failed() }

// Spec returns the spec the system was built from.
func (s *System) Spec() Spec { return s.spec }

// Round returns the current round number.
func (s *System) Round() int { return s.inner.Round() }

// Report returns the aggregate report for the rounds simulated so far.
func (s *System) Report() Report { return s.inner.Report() }

// SetCapacity changes box b's matching capacity to `slots` upload slots,
// effective next round. Excess assignments are evicted deterministically.
func (s *System) SetCapacity(b int, slots int64) error { return s.inner.SetCapacity(b, slots) }

// AuditSummary reports the sampled Hall-condition screening of the
// system's allocation (see internal/expander): Margin is the lowest
// observed slots/requests ratio over all probes — below 1 some request
// multiset provably overwhelms its sourcing capacity (a sourcing-only
// obstruction); the higher above 1, the more adversarial headroom.
type AuditSummary struct {
	Probes     int
	Violations int
	Margin     float64
}

// AuditAllocation runs the expansion audit on this system's allocation:
// per-video saturation probes plus `probes` random-subset and greedy
// min-cut-shaped probes.
func (s *System) AuditAllocation(seed uint64, probes int) AuditSummary {
	aud := expander.New(s.alloc, s.caps).Full(stats.NewRNG(seed), probes, probes/10+1)
	return AuditSummary{
		Probes:     aud.Probes,
		Violations: aud.Violations,
		Margin:     aud.Worst.Ratio,
	}
}

// PlanFor derives the full Theorem 1 parameterization for a homogeneous
// system: stripe count, replication, catalog size, and the lower bound.
func PlanFor(n int, u float64, d int, mu float64) (Plan, error) {
	return analysis.NewPlan(analysis.HomogeneousParams{N: n, U: u, D: d, Mu: mu})
}

// HeteroPlanFor derives the Theorem 2 parameterization for a population.
func HeteroPlanFor(pop Population, uStar, mu float64) (HeteroPlan, error) {
	return analysis.NewHeteroPlan(analysis.HeteroParams{
		Uploads: pop.Uploads, Storage: pop.Storage, UStar: uStar, Mu: mu, Duration: 1,
	})
}

// Bimodal builds a rich/poor capacity profile with proportional storage.
func Bimodal(n int, richFrac, uRich, uPoor, storagePerUpload float64) Population {
	return hetero.Bimodal(n, richFrac, uRich, uPoor, storagePerUpload)
}

// NewZipfWorkload returns a realistic background workload: idle boxes
// demand with probability p per round, video popularity Zipf(s).
func NewZipfWorkload(seed uint64, p, s float64) Generator {
	return &adversary.Zipf{RNG: stats.NewRNG(seed), P: p, S: s}
}

// NewFlashCrowd returns the flash-crowd adversary aimed at target,
// rotating to the next video when the crowd drains.
func NewFlashCrowd(target VideoID) Generator {
	return &adversary.FlashCrowd{Target: target, Rotate: true}
}

// NewAvoidPossession returns the Section 1.3 impossibility adversary.
func NewAvoidPossession() Generator { return &adversary.AvoidPossession{} }

// NewDistinctVideos returns the maximal-sourcing-load adversary.
func NewDistinctVideos() Generator { return &adversary.DistinctVideos{} }

// NewPoorFirst returns the relay-stressing generator: boxes below uStar
// demand before rich ones.
func NewPoorFirst(uStar float64) Generator { return &adversary.PoorFirst{UStar: uStar} }

// WithRetry wraps gen with admission-queue retry semantics so start-up
// delay measurements include queueing.
func WithRetry(gen Generator) Generator { return &adversary.Retry{Inner: gen} }
