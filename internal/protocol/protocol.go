// Package protocol implements a decentralized connection-matching protocol
// over the netsim substrate — the practical counterpart to the paper's
// centralized max-flow argument (Lemma 1), addressing its closing remark
// that the existence proof "does not yield directly a practical
// distributed algorithm".
//
// The protocol is proposal-based, in the spirit of deficit-round
// b-matching: each unserved request proposes to one candidate server at a
// time; servers grant up to their slot capacity (first-come, first-served)
// and reject the rest; rejected requests move to their next candidate and
// retry. The result is a maximal (not maximum) matching; experiment E12
// measures its optimality gap and message cost against the exact matcher.
package protocol

import (
	"fmt"

	"repro/internal/netsim"
)

// Instance is a bipartite matching instance: request i may be served by
// any server in Candidates[i]; server j has Caps[j] slots.
type Instance struct {
	Candidates [][]int32
	Caps       []int64
}

// message payloads.
type propose struct{ request int32 }
type grant struct{ request int32 }
type reject struct{ request int32 }

const timerStart = 0

// requesterNode drives one request's proposal loop.
type requesterNode struct {
	request    int32
	candidates []int32
	next       int
	serverBase int
	matched    int32 // server index or -1
	done       bool
}

func (r *requesterNode) OnTimer(ctx *netsim.Context, kind int) {
	if kind == timerStart {
		r.proposeNext(ctx)
	}
}

func (r *requesterNode) proposeNext(ctx *netsim.Context) {
	if r.next >= len(r.candidates) {
		r.done = true // exhausted all candidates: unserved
		return
	}
	target := r.candidates[r.next]
	r.next++
	ctx.Send(netsim.NodeID(r.serverBase+int(target)), propose{request: r.request})
}

func (r *requesterNode) OnMessage(ctx *netsim.Context, msg netsim.Message) {
	switch m := msg.Payload.(type) {
	case grant:
		if m.request == r.request && !r.done {
			r.matched = int32(int(msg.From) - r.serverBase)
			r.done = true
		}
	case reject:
		if m.request == r.request && !r.done {
			r.proposeNext(ctx)
		}
	default:
		panic(fmt.Sprintf("protocol: requester got %T", msg.Payload))
	}
}

// serverNode grants proposals while slots remain.
type serverNode struct {
	free int64
}

func (s *serverNode) OnTimer(*netsim.Context, int) {}

func (s *serverNode) OnMessage(ctx *netsim.Context, msg netsim.Message) {
	p, ok := msg.Payload.(propose)
	if !ok {
		panic(fmt.Sprintf("protocol: server got %T", msg.Payload))
	}
	if s.free > 0 {
		s.free--
		ctx.Send(msg.From, grant{request: p.request})
	} else {
		ctx.Send(msg.From, reject{request: p.request})
	}
}

// Result reports a protocol run.
type Result struct {
	Matched     int
	Unserved    int
	Assignments []int32 // per request: server or -1
	Messages    int64
	Time        float64 // simulated convergence time
	Events      int
}

// Run executes the proposal protocol on the instance and returns the
// outcome. Latency jitter (and hence arrival order at servers) is
// deterministic in cfg.Seed.
func Run(inst Instance, cfg netsim.Config) Result {
	net := netsim.New(cfg)
	nR := len(inst.Candidates)
	requesters := make([]*requesterNode, nR)
	for i := range requesters {
		requesters[i] = &requesterNode{
			request:    int32(i),
			candidates: inst.Candidates[i],
			serverBase: nR,
			matched:    -1,
		}
		net.AddNode(requesters[i])
	}
	for _, c := range inst.Caps {
		net.AddNode(&serverNode{free: c})
	}
	for i := range requesters {
		net.Timer(netsim.NodeID(i), 0, timerStart)
	}
	// Each request sends at most len(candidates) proposals; every proposal
	// triggers exactly one reply. Bound events accordingly.
	maxEvents := 0
	for _, cand := range inst.Candidates {
		maxEvents += 2*len(cand) + 2
	}
	events := net.RunAll(maxEvents + nR)

	res := Result{
		Assignments: make([]int32, nR),
		Messages:    net.MessagesSent(),
		Time:        net.Now(),
		Events:      events,
	}
	for i, r := range requesters {
		res.Assignments[i] = r.matched
		if r.matched >= 0 {
			res.Matched++
		} else {
			res.Unserved++
		}
	}
	return res
}

// Verify checks that the assignment respects candidate lists and
// capacities; the protocol must never produce an invalid matching.
func (r Result) Verify(inst Instance) error {
	load := make([]int64, len(inst.Caps))
	for i, srv := range r.Assignments {
		if srv < 0 {
			continue
		}
		valid := false
		for _, c := range inst.Candidates[i] {
			if c == srv {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("protocol: request %d assigned to non-candidate %d", i, srv)
		}
		load[srv]++
		if load[srv] > inst.Caps[srv] {
			return fmt.Errorf("protocol: server %d over capacity", srv)
		}
	}
	return nil
}

// Maximality reports whether the matching is maximal: no unserved request
// has a candidate with a free slot. The proposal protocol guarantees this
// (an unserved request was rejected by every candidate, and servers never
// release slots).
func (r Result) Maximality(inst Instance) bool {
	load := make([]int64, len(inst.Caps))
	for _, srv := range r.Assignments {
		if srv >= 0 {
			load[srv]++
		}
	}
	for i, srv := range r.Assignments {
		if srv >= 0 {
			continue
		}
		for _, c := range inst.Candidates[i] {
			if load[c] < inst.Caps[c] {
				return false
			}
		}
	}
	return true
}
