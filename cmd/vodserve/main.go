// Command vodserve runs a video system as a long-lived serving daemon:
// demands stream in over HTTP, rounds advance on request (POST /step) or
// on a timer (-tick), and the full engine state can be checkpointed and
// restored across restarts with bit-identical continuation.
//
// Examples:
//
//	vodserve -n 200 -u 1.5 -addr :8080                # manual stepping
//	vodserve -n 200 -u 1.5 -tick 500ms                # one round per 500ms
//	vodserve -restore state.ckpt -addr :8080          # resume a checkpoint
//	vodserve -scenario spec.yaml                      # system from a scenario spec
//	vodserve -n 200 -u 1.5 -checkpoint-every 100 \
//	         -checkpoint-keep 3 -checkpoint-dir ckpts # periodic auto-checkpoints
//
//	curl -X POST localhost:8080/demand -d '{"box":3,"video":0}'
//	curl -X POST localhost:8080/step -d '{"rounds":10}'
//	curl -X POST localhost:8080/checkpoint -d '{"path":"state.ckpt"}'
//	curl localhost:8080/metrics
//
// The daemon defaults to resilient mode: an infeasible round produces an
// obstruction certificate in /metrics and stalls the affected requests
// instead of killing the server.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	vod "repro"
	"repro/internal/scenario"
	"repro/internal/serve"
)

func main() {
	var (
		n         = flag.Int("n", 100, "number of boxes")
		u         = flag.Float64("u", 1.5, "normalized upload capacity (homogeneous)")
		d         = flag.Float64("d", 4, "storage per box in videos")
		c         = flag.Int("c", 0, "stripes per video (0 = derive from Theorem 1/2)")
		k         = flag.Int("k", 4, "replicas per stripe")
		duration  = flag.Int("T", 100, "video duration in rounds")
		mu        = flag.Float64("mu", 1.2, "maximal swarm growth per round")
		heteroP   = flag.Float64("hetero", 0, "poor-box fraction (0 = homogeneous); poor u=0.5, rich u=3.0")
		uStar     = flag.Float64("ustar", 0, "deficiency threshold u* (activates relaying)")
		shards    = flag.Int("shards", 0, "round-engine shards (0 = serial); bit-identical at any count")
		seed      = flag.Uint64("seed", 1, "allocation seed")
		resilient = flag.Bool("resilient", true, "stall through obstructions instead of halting")
		addr      = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		tick      = flag.Duration("tick", 0, "auto-advance one round per interval (0 = step via POST /step only)")
		restore   = flag.String("restore", "", "restore state from this checkpoint file (spec flags are ignored)")
		scenPath  = flag.String("scenario", "", "build the system from a scenario spec (YAML/JSON) instead of the -n/-u/… flags; stream its corpus with vodgen -post")
		ckptEvery = flag.Int("checkpoint-every", 0, "write an auto-checkpoint every N rounds (0 = off)")
		ckptKeep  = flag.Int("checkpoint-keep", 3, "how many auto-checkpoints to retain (oldest pruned)")
		ckptDir   = flag.String("checkpoint-dir", "checkpoints", "directory for auto-checkpoints")
	)
	flag.Parse()
	if *shards < 0 {
		log.Fatalf("vodserve: -shards %d is negative; use 0 for the serial engine or a positive shard count", *shards)
	}

	// An explicitly set -mu survives the heterogeneous defaults (same
	// rule as vodsim): only flags the user did not pass are defaulted.
	muSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "mu" {
			muSet = true
		}
	})

	var (
		sys      *vod.System
		err      error
		restored bool
	)
	if *restore != "" {
		f, ferr := os.Open(*restore)
		if ferr != nil {
			log.Fatalf("vodserve: %v", ferr)
		}
		sys, err = vod.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			log.Fatalf("vodserve: restore %s: %v", *restore, err)
		}
		restored = true
	} else if *scenPath != "" {
		sc, err := scenario.ParseFile(*scenPath)
		if err != nil {
			log.Fatalf("vodserve: %v", err)
		}
		scSpec := sc.VodSpec(func() uint64 {
			seedSet := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "seed" {
					seedSet = true
				}
			})
			if seedSet {
				return *seed
			}
			return sc.Seed
		}())
		scSpec.Shards = *shards
		sys, err = vod.New(scSpec)
		if err != nil {
			log.Fatalf("vodserve: %v", err)
		}
		log.Printf("vodserve: system from scenario %s (%d rounds of corpus; stream with vodgen -spec %s -post)",
			sc.Name, sc.TotalRounds(), *scenPath)
	} else {
		spec := vod.Spec{
			Boxes:     *n,
			Upload:    *u,
			Storage:   *d,
			Stripes:   *c,
			Replicas:  *k,
			Duration:  *duration,
			Growth:    *mu,
			Resilient: *resilient,
			Shards:    *shards,
			Seed:      *seed,
		}
		if *heteroP > 0 {
			pop := vod.Bimodal(*n, 1-*heteroP, 3.0, 0.5, 2.0)
			spec.Uploads = pop.Uploads
			spec.Storages = pop.Storage
			spec.UStar = *uStar
			if spec.UStar == 0 {
				spec.UStar = 1.5
			}
			if !muSet {
				spec.Growth = 1.05
			}
		}
		sys, err = vod.New(spec)
		if err != nil {
			log.Fatalf("vodserve: %v", err)
		}
	}

	srv := serve.New(sys, restored)
	if *ckptEvery > 0 {
		if err := srv.EnableAutoCheckpoint(*ckptDir, *ckptEvery, *ckptKeep); err != nil {
			log.Fatalf("vodserve: %v", err)
		}
		log.Printf("vodserve: auto-checkpointing every %d rounds to %s (keeping %d)",
			*ckptEvery, *ckptDir, *ckptKeep)
	}
	spec := sys.Spec()
	cat := sys.Catalog()
	mode := "serial"
	if spec.Shards > 1 {
		mode = fmt.Sprintf("sharded-%d", spec.Shards)
	}
	log.Printf("vodserve: n=%d catalog m=%d c=%d T=%d µ=%.2f engine=%s round=%d restored=%v",
		spec.Boxes, cat.M, cat.C, cat.T, spec.Growth, mode, sys.Round(), restored)

	if *tick > 0 {
		go func() {
			for range time.Tick(*tick) {
				if _, err := srv.StepRounds(1); err != nil {
					log.Printf("vodserve: tick: %v", err)
				}
			}
		}()
		log.Printf("vodserve: auto-advancing one round per %v", *tick)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and
	// release the engine's persistent shard workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("vodserve: listening on %s", *addr)
	select {
	case err := <-errc:
		log.Fatalf("vodserve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("vodserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("vodserve: shutdown: %v", err)
	}
	srv.Close()
}
