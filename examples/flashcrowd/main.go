// Flash crowd: the entire fleet piles onto one video at the maximal
// admissible growth rate µ. With the paper's preloading strategy the swarm
// feeds itself; with sourcing only (caches never serve), the k allocation
// holders saturate and the system collapses — the contrast at the heart of
// the paper's sourcing-vs-swarming trade-off.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	vod "repro"
)

func main() {
	run := func(label string, sourcingOnly bool) {
		sys, err := vod.New(vod.Spec{
			Boxes:        300,
			Upload:       2.0,
			Storage:      2,
			Stripes:      4,
			Replicas:     4,
			Duration:     40,
			Growth:       1.5, // crowd grows 50% per round
			SourcingOnly: sourcingOnly,
			Resilient:    sourcingOnly, // let the baseline limp along and count stalls
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Run(vod.NewFlashCrowd(0), 120)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s max swarm %3d  completed %4d  stalls %5d  obstructions %d\n",
			label, rep.MaxSwarm, rep.CompletedViewings, rep.Stalls, len(rep.Obstructions))
	}

	fmt.Println("flash crowd on video 0, µ = 1.5, n = 300, u = 2.0, k = 4:")
	run("swarming (paper):", false)
	run("sourcing-only:", true)
	fmt.Println("\nswarming absorbs the crowd (viewers serve each other through their")
	fmt.Println("playback caches); the sourcing-only baseline drowns the 4 replica")
	fmt.Println("holders of each stripe and stalls almost everyone.")
}
