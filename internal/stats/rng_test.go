package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(123)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d deviates too far from %v", i, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	expected := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("first-element bucket %d count %d deviates from %v", i, c, expected)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(11)
	for _, tc := range []struct{ n, k int }{{10, 10}, {10, 3}, {1000, 5}, {100, 90}, {1, 1}, {5, 0}} {
		s := r.SampleWithoutReplacement(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("sample(%d,%d) returned %d items", tc.n, tc.k, len(s))
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= tc.n {
				t.Fatalf("sample value %d out of range [0,%d)", v, tc.n)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d in sample", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when count > n")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(17)
	weights := []float64{1, 0, 3, 0, 6}
	const trials = 100000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight buckets were chosen: %v", counts)
	}
	// Expect roughly 10% / 30% / 60%.
	for i, want := range map[int]float64{0: 0.1, 2: 0.3, 4: 0.6} {
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("bucket %d frequency %.3f, want ~%.3f", i, got, want)
		}
	}
}

func TestWeightedChoicePanicsAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	NewRNG(1).WeightedChoice([]float64{0, 0})
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(21)
	for _, mean := range []float64{0.5, 3, 25, 100} {
		const trials = 20000
		sum := 0
		for i := 0; i < trials; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / trials
		if math.Abs(got-mean) > 4*math.Sqrt(mean/trials)+0.6 {
			t.Errorf("Poisson(%v) sample mean %.3f too far off", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(31)
	const trials = 50000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.05 {
		t.Errorf("exponential mean %.3f, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(41)
	const trials = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %.4f, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(55)
	child := parent.Split()
	// The child must be deterministic given the parent state...
	parent2 := NewRNG(55)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
	// ...and differ from the parent's continued stream.
	if parent.Uint64() == child.Uint64() {
		t.Error("child stream suspiciously equals parent stream")
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(4)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if f := float64(hits) / trials; math.Abs(f-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", f)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1.1) {
		t.Error("Bool(>1) returned false")
	}
}

func TestShuffleFunc(t *testing.T) {
	r := NewRNG(5)
	xs := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[string]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	for _, x := range orig {
		if !seen[x] {
			t.Fatalf("shuffle lost element %q", x)
		}
	}
	// Shuffle(0) and Shuffle(1) are no-ops.
	r.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	r.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

// Property: Intn never leaves its range, for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Perm always returns a valid permutation.
func TestQuickPermValid(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
