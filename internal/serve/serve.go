// Package serve wraps a vod.System in a long-lived serving daemon: demand
// arrivals stream in over HTTP and are mapped onto the round clock, the
// round engine is advanced explicitly (POST /step) or on a timer, and the
// full system state can be checkpointed to disk and restored into a new
// process with bit-identical continuation (see the vod checkpoint
// envelope).
//
// Endpoints:
//
//	POST /demand      queue one demand {"box":B,"video":V} or a batch
//	                  {"demands":[...]}; delivered at the next round
//	POST /capacity    {"box":B,"slots":S} live capacity change
//	POST /step        {"rounds":N} advance N rounds (default 1)
//	POST /checkpoint  {"path":P} write a checkpoint atomically
//	GET  /metrics     operational metrics (rounds/sec, live requests,
//	                  matcher mode, obstructions, allocs/round)
//	GET  /state       spec + full aggregate report
//	GET  /healthz     liveness probe
//
// All handlers serialize on one mutex: the round engine is single-writer
// by design, and the daemon's job is ordering concurrent arrivals onto
// the round clock, not parallelizing them.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	vod "repro"
)

// Server is a serving daemon around one vod.System.
type Server struct {
	mu  sync.Mutex
	sys *vod.System

	// pending holds demands queued over HTTP, delivered (in arrival
	// order) to the engine at the next Step. Born is stamped at delivery:
	// an arrival between rounds r and r+1 is born in round r+1.
	// Its backing array and the per-call results buffer are reused across
	// Step calls — both are only touched with mu held, and the engine
	// consumes demands within the round they are delivered.
	pending []vod.Demand
	results []vod.StepResult

	// Step timing and allocation accounting for /metrics.
	stepRounds int64         // rounds stepped by this process
	stepWall   time.Duration // wall time inside Step
	allocBytes uint64        // heap bytes allocated across Step calls

	// Periodic auto-checkpointing (EnableAutoCheckpoint): every autoEvery
	// rounds a checkpoint lands in autoDir, retaining the autoKeep newest.
	autoDir   string
	autoEvery int
	autoKeep  int
	autoCount int64  // checkpoints written by this process
	autoLast  string // most recent auto-checkpoint path
	autoErr   error  // most recent auto-checkpoint failure, nil when healthy

	restored bool // whether sys came from a checkpoint
}

// New wraps sys (fresh or restored from a checkpoint) in a server.
func New(sys *vod.System, restored bool) *Server {
	return &Server{sys: sys, restored: restored}
}

// Close releases the engine's persistent shard workers. Call it when the
// daemon shuts down; handlers racing a Close serialize on the server
// mutex, and a Step after Close surfaces as an engine error, not a hang.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.Close()
}

// EnableAutoCheckpoint turns on periodic checkpointing: after every
// `every`-th round the engine reaches, a checkpoint is written atomically
// to dir as ckpt-<round>.vodckpt and only the `keep` newest are retained.
// A failed write never fails the round — the error is surfaced through
// /metrics and the next interval retries.
func (s *Server) EnableAutoCheckpoint(dir string, every, keep int) error {
	if every <= 0 {
		return fmt.Errorf("serve: checkpoint interval must be positive, got %d", every)
	}
	if keep <= 0 {
		return fmt.Errorf("serve: checkpoint retention must be positive, got %d", keep)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.autoDir, s.autoEvery, s.autoKeep = dir, every, keep
	return nil
}

// autoCheckpointLocked writes the periodic checkpoint for `round` and
// prunes beyond the retention limit. Caller holds s.mu.
func (s *Server) autoCheckpointLocked(round int) {
	path := filepath.Join(s.autoDir, fmt.Sprintf("ckpt-%09d.vodckpt", round))
	if _, err := s.checkpointLocked(path); err != nil {
		s.autoErr = err
		return
	}
	s.autoErr = nil
	s.autoLast = path
	s.autoCount++
	s.pruneCheckpointsLocked()
}

// pruneCheckpointsLocked removes the oldest auto-checkpoints past the
// retention limit. Zero-padded round numbers make the lexicographic
// directory order the chronological one.
func (s *Server) pruneCheckpointsLocked() {
	entries, err := filepath.Glob(filepath.Join(s.autoDir, "ckpt-*.vodckpt"))
	if err != nil {
		s.autoErr = err
		return
	}
	sort.Strings(entries)
	for len(entries) > s.autoKeep {
		if err := os.Remove(entries[0]); err != nil {
			s.autoErr = err
			return
		}
		entries = entries[1:]
	}
}

// drainGen feeds the queued demands to the engine. Next runs inside
// Step, which runs with srv.mu held.
type drainGen struct{ srv *Server }

func (g drainGen) Next(_ *vod.View, round int) []vod.Demand {
	ds := g.srv.pending
	g.srv.pending = ds[:0]
	for i := range ds {
		ds[i].Born = round
	}
	return ds
}

// StepRounds advances the engine n rounds, delivering queued demands to
// the first round. Used by both POST /step and the -tick loop.
func (s *Server) StepRounds(n int) ([]vod.StepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepLocked(n)
}

func (s *Server) stepLocked(n int) ([]vod.StepResult, error) {
	if n <= 0 {
		return nil, errors.New("rounds must be positive")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	allocBefore := ms.TotalAlloc
	start := time.Now()
	results := s.results[:0]
	for i := 0; i < n; i++ {
		res, err := s.sys.Step(drainGen{s})
		if err != nil {
			s.results = results
			return results, err
		}
		results = append(results, res)
		if s.autoEvery > 0 && s.sys.Round()%s.autoEvery == 0 {
			s.autoCheckpointLocked(s.sys.Round())
		}
	}
	s.stepWall += time.Since(start)
	s.stepRounds += int64(n)
	runtime.ReadMemStats(&ms)
	s.allocBytes += ms.TotalAlloc - allocBefore
	s.results = results
	return results, nil
}

// Checkpoint writes the system state to path atomically (temp file in
// the same directory, then rename), so a crash mid-write never leaves a
// truncated checkpoint behind. Returns the byte size written.
func (s *Server) Checkpoint(path string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked(path)
}

func (s *Server) checkpointLocked(path string) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".vodckpt-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if err := s.sys.SaveCheckpoint(tmp); err != nil {
		tmp.Close()
		return 0, err
	}
	size, err := tmp.Seek(0, 2)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return size, nil
}

// Metrics is the GET /metrics payload.
type Metrics struct {
	Round           int              `json:"round"`
	Restored        bool             `json:"restored"`
	MatcherMode     string           `json:"matcher_mode"`
	LiveRequests    int              `json:"live_requests"`
	IdleBoxes       int              `json:"idle_boxes"`
	PendingDemands  int              `json:"pending_demands"`
	Demands         int64            `json:"demands"`
	Admitted        int64            `json:"admitted"`
	RejectedBusy    int64            `json:"rejected_busy"`
	RejectedSwarm   int64            `json:"rejected_swarm"`
	Completed       int64            `json:"completed_viewings"`
	Stalls          int64            `json:"stall_request_rounds"`
	Obstructions    int              `json:"obstructions"`
	LastObstruction *vod.Obstruction `json:"last_obstruction,omitempty"`
	Failed          bool             `json:"failed"`
	RoundsPerSec    float64          `json:"rounds_per_sec"`
	AllocsPerRound  uint64           `json:"alloc_bytes_per_round"`
	SteppedRounds   int64            `json:"stepped_rounds"`
	AutoCheckpoints int64            `json:"auto_checkpoints,omitempty"`
	LastCheckpoint  string           `json:"last_checkpoint,omitempty"`
	CheckpointError string           `json:"checkpoint_error,omitempty"`

	// Sharded-engine stage timing (zeros under the serial engine): the
	// last round's wall-clock split between the pooled parallel shard
	// dispatches and the serial Merge/GlobalAugment tail, plus EWMAs
	// (alpha 0.1) — the merge tail's share of the round on a live daemon.
	StageParallelNS     int64   `json:"stage_parallel_ns"`
	StageSerialNS       int64   `json:"stage_serial_tail_ns"`
	StageParallelEWMANS float64 `json:"stage_parallel_ewma_ns"`
	StageSerialEWMANS   float64 `json:"stage_serial_tail_ewma_ns"`
}

func (s *Server) metricsLocked() Metrics {
	rep := s.sys.Report()
	view := s.sys.View()
	mode := "serial"
	if sh := s.sys.Spec().Shards; sh > 1 {
		mode = fmt.Sprintf("sharded-%d", sh)
	}
	m := Metrics{
		Round:           s.sys.Round(),
		Restored:        s.restored,
		MatcherMode:     mode,
		LiveRequests:    view.ActiveRequests(),
		IdleBoxes:       view.NumIdle(),
		PendingDemands:  len(s.pending),
		Demands:         rep.Demands,
		Admitted:        rep.Admitted,
		RejectedBusy:    rep.RejectedBusy,
		RejectedSwarm:   rep.RejectedSwarm,
		Completed:       rep.CompletedViewings,
		Stalls:          rep.Stalls,
		Obstructions:    len(rep.Obstructions),
		Failed:          rep.Failed,
		SteppedRounds:   s.stepRounds,
		AutoCheckpoints: s.autoCount,
		LastCheckpoint:  s.autoLast,
	}
	if s.autoErr != nil {
		m.CheckpointError = s.autoErr.Error()
	}
	if n := len(rep.Obstructions); n > 0 {
		m.LastObstruction = &rep.Obstructions[n-1]
	}
	if s.stepWall > 0 {
		m.RoundsPerSec = float64(s.stepRounds) / s.stepWall.Seconds()
	}
	if s.stepRounds > 0 {
		m.AllocsPerRound = s.allocBytes / uint64(s.stepRounds)
	}
	st := s.sys.StageTiming()
	m.StageParallelNS = st.ParallelNS
	m.StageSerialNS = st.SerialNS
	m.StageParallelEWMANS = st.ParallelEWMANS
	m.StageSerialEWMANS = st.SerialEWMANS
	return m
}

type demandIn struct {
	Box   int `json:"box"`
	Video int `json:"video"`
}

type demandReq struct {
	demandIn
	Demands []demandIn `json:"demands"`
}

type capacityReq struct {
	Box   int   `json:"box"`
	Slots int64 `json:"slots"`
}

type stepReq struct {
	Rounds int `json:"rounds"`
}

type checkpointReq struct {
	Path string `json:"path"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /demand", s.handleDemand)
	mux.HandleFunc("POST /capacity", s.handleCapacity)
	mux.HandleFunc("POST /step", s.handleStep)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /state", s.handleState)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

func (s *Server) handleDemand(w http.ResponseWriter, r *http.Request) {
	var req demandReq
	if !decodeBody(w, r, &req) {
		return
	}
	batch := req.Demands
	if batch == nil {
		batch = []demandIn{req.demandIn}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.sys.View().NumBoxes()
	m := s.sys.Catalog().M
	for _, d := range batch {
		if d.Box < 0 || d.Box >= n {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("box %d out of range [0,%d)", d.Box, n))
			return
		}
		if d.Video < 0 || d.Video >= m {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("video %d out of range [0,%d)", d.Video, m))
			return
		}
	}
	for _, d := range batch {
		s.pending = append(s.pending, vod.Demand{Box: d.Box, Video: vod.VideoID(d.Video)})
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"queued": len(batch), "pending": len(s.pending), "round": s.sys.Round(),
	})
}

func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	var req capacityReq
	if !decodeBody(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sys.SetCapacity(req.Box, req.Slots); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"box": req.Box, "slots": req.Slots})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	req := stepReq{Rounds: 1}
	if r.ContentLength != 0 {
		if !decodeBody(w, r, &req) {
			return
		}
		if req.Rounds == 0 {
			req.Rounds = 1
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	results, err := s.stepLocked(req.Rounds)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	matched, unmatched := 0, 0
	for _, res := range results {
		matched += res.Matched
		unmatched += res.Unmatched
	}
	resp := map[string]any{
		"round":     s.sys.Round(),
		"stepped":   len(results),
		"matched":   matched,
		"unmatched": unmatched,
	}
	if n := len(results); n > 0 {
		resp["last"] = results[n-1]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req checkpointReq
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		writeErr(w, http.StatusBadRequest, errors.New("path required"))
		return
	}
	size, err := s.Checkpoint(req.Path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	round := s.sys.Round()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"path": req.Path, "bytes": size, "round": round})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	m := s.metricsLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := map[string]any{
		"spec":   s.sys.Spec(),
		"round":  s.sys.Round(),
		"report": s.sys.Report(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
