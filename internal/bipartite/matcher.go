// Package bipartite maintains the per-round connection matching of the
// paper's Section 2.2: unit-demand left nodes (stripe requests) are matched
// to capacitated right nodes (boxes, capacity in stripe slots ⌊u_b·c⌋).
//
// The Matcher is incremental: requests persist across rounds, and each
// round only repairs invalidated assignments and augments new or unmatched
// requests, which is dramatically cheaper than recomputing a max flow from
// scratch (ablated in experiment E11). When augmentation stalls, the
// alternating-reachability set from the unmatched requests is exactly a
// Hall violator — the paper's *obstruction* certificate (Lemma 1): a set X
// of requests with total box capacity U_B(X) < |X|/c.
package bipartite

import "fmt"

// Unassigned marks a left node with no current server.
const Unassigned = -1

// Adjacency exposes the dynamic bipartite graph. The simulator implements
// it directly over its swarm and allocation state so that edges never need
// to be materialized.
type Adjacency interface {
	// VisitServers calls fn for every right node currently able to serve
	// left node l, stopping early if fn returns false.
	VisitServers(left int, fn func(right int) bool)
	// CanServe reports whether right can currently serve left.
	CanServe(left, right int) bool
}

// Matcher holds the incremental assignment state.
type Matcher struct {
	caps []int64 // capacity per right node, in slots
	load []int64 // current load per right node

	assigned []int32 // left -> right, or Unassigned; -2 marks a dead slot
	active   []bool  // left liveness

	// Per-right list of assigned lefts, with back-pointers for O(1) removal.
	rightLefts [][]int32
	posInRight []int32

	// BFS scratch.
	visitedL   []bool
	visitedR   []bool
	parentLeft []int32 // for right r, the left that discovered it
	queue      []int32

	matchedCount int
}

// NewMatcher creates a matcher over numRight boxes with the given slot
// capacities (len(caps) == numRight).
func NewMatcher(caps []int64) *Matcher {
	m := &Matcher{
		caps:       append([]int64(nil), caps...),
		load:       make([]int64, len(caps)),
		rightLefts: make([][]int32, len(caps)),
		visitedR:   make([]bool, len(caps)),
		parentLeft: make([]int32, len(caps)),
	}
	return m
}

// NumRight returns the number of right nodes.
func (m *Matcher) NumRight() int { return len(m.caps) }

// Capacity returns the capacity of right node r.
func (m *Matcher) Capacity(r int) int64 { return m.caps[r] }

// Load returns the current load of right node r.
func (m *Matcher) Load(r int) int64 { return m.load[r] }

// MatchedCount returns the number of currently matched left nodes.
func (m *Matcher) MatchedCount() int { return m.matchedCount }

// SetCapacity adjusts the capacity of right node r. Lowering below the
// current load unassigns arbitrary assigned lefts until feasible; the
// victims are returned so the caller can retry them.
func (m *Matcher) SetCapacity(r int, c int64) []int {
	if c < 0 {
		panic("bipartite: negative capacity")
	}
	m.caps[r] = c
	var victims []int
	for m.load[r] > c {
		lefts := m.rightLefts[r]
		victim := lefts[len(lefts)-1]
		m.unassign(int(victim))
		victims = append(victims, int(victim))
	}
	return victims
}

// EnsureLeft grows internal storage so left IDs up to n-1 are addressable.
func (m *Matcher) EnsureLeft(n int) {
	for len(m.assigned) < n {
		m.assigned = append(m.assigned, Unassigned)
		m.active = append(m.active, false)
		m.posInRight = append(m.posInRight, -1)
		m.visitedL = append(m.visitedL, false)
	}
}

// AddLeft activates a left node (a new stripe request). The ID must be
// dense-ish; the simulator recycles IDs through a free list.
func (m *Matcher) AddLeft(l int) {
	m.EnsureLeft(l + 1)
	if m.active[l] {
		panic(fmt.Sprintf("bipartite: AddLeft(%d) already active", l))
	}
	m.active[l] = true
	m.assigned[l] = Unassigned
}

// RemoveLeft deactivates a left node, releasing its server slot.
func (m *Matcher) RemoveLeft(l int) {
	if !m.active[l] {
		panic(fmt.Sprintf("bipartite: RemoveLeft(%d) not active", l))
	}
	if m.assigned[l] != Unassigned {
		m.unassign(l)
	}
	m.active[l] = false
}

// Active reports whether left l is active.
func (m *Matcher) Active(l int) bool { return l < len(m.active) && m.active[l] }

// Server returns the right node assigned to left l, or Unassigned.
func (m *Matcher) Server(l int) int {
	if l >= len(m.assigned) {
		return Unassigned
	}
	return int(m.assigned[l])
}

func (m *Matcher) assign(l, r int) {
	if m.assigned[l] != Unassigned {
		m.unassign(l)
	}
	m.assigned[l] = int32(r)
	m.posInRight[l] = int32(len(m.rightLefts[r]))
	m.rightLefts[r] = append(m.rightLefts[r], int32(l))
	m.load[r]++
	m.matchedCount++
}

func (m *Matcher) unassign(l int) {
	r := m.assigned[l]
	lefts := m.rightLefts[r]
	pos := m.posInRight[l]
	last := lefts[len(lefts)-1]
	lefts[pos] = last
	m.posInRight[last] = pos
	m.rightLefts[r] = lefts[:len(lefts)-1]
	m.load[r]--
	m.assigned[l] = Unassigned
	m.posInRight[l] = -1
	m.matchedCount--
}

// move reassigns l from its current server to r without touching other
// bookkeeping invariants.
func (m *Matcher) move(l, r int) {
	m.unassign(l)
	m.assign(l, r)
}

// Revalidate drops every assignment whose edge has disappeared (server no
// longer possesses the chunk, e.g. a playback cache rolled past the
// window). Returns the number of dropped assignments.
func (m *Matcher) Revalidate(adj Adjacency) int {
	dropped := 0
	for l := range m.assigned {
		if !m.active[l] || m.assigned[l] == Unassigned {
			continue
		}
		if !adj.CanServe(l, int(m.assigned[l])) {
			m.unassign(l)
			dropped++
		}
	}
	return dropped
}

// AugmentAll drives the matching to maximum: it repeatedly attempts an
// alternating augmenting path from every unmatched active left until a
// full pass makes no progress (at which point no augmenting path exists
// from the implicit super-source, so the matching is maximum). It returns
// the remaining unmatched lefts; a non-empty result certifies a Lemma 1
// obstruction, extractable via HallViolator.
func (m *Matcher) AugmentAll(adj Adjacency) []int {
	for {
		progressed := false
		stalled := false
		for l := range m.assigned {
			if m.active[l] && m.assigned[l] == Unassigned {
				if m.augment(adj, l) {
					progressed = true
				} else {
					stalled = true
				}
			}
		}
		if !stalled {
			return nil
		}
		if !progressed {
			break
		}
	}
	var unmatched []int
	for l := range m.assigned {
		if m.active[l] && m.assigned[l] == Unassigned {
			unmatched = append(unmatched, l)
		}
	}
	return unmatched
}

// augment searches one alternating BFS tree rooted at unmatched left root
// and applies the augmenting path if a right node with spare capacity is
// found.
func (m *Matcher) augment(adj Adjacency, root int) bool {
	m.resetScratch()
	m.queue = m.queue[:0]
	m.queue = append(m.queue, int32(root))
	m.visitedL[root] = true
	// prevRight[l] is implicit: for non-root lefts it is assigned[l].
	for head := 0; head < len(m.queue); head++ {
		l := m.queue[head]
		found := -1
		adj.VisitServers(int(l), func(r int) bool {
			if m.visitedR[r] {
				return true
			}
			m.visitedR[r] = true
			m.parentLeft[r] = l
			if m.load[r] < m.caps[r] {
				found = r
				return false
			}
			for _, l2 := range m.rightLefts[r] {
				if !m.visitedL[l2] {
					m.visitedL[l2] = true
					m.queue = append(m.queue, l2)
				}
			}
			return true
		})
		if found >= 0 {
			m.applyPath(found)
			return true
		}
	}
	return false
}

// applyPath walks parent pointers back from the free right node, shifting
// assignments along the alternating path.
func (m *Matcher) applyPath(freeRight int) {
	r := freeRight
	for {
		l := int(m.parentLeft[r])
		if m.assigned[l] == Unassigned {
			m.assign(l, r)
			return
		}
		prev := int(m.assigned[l])
		m.move(l, r)
		r = prev
	}
}

func (m *Matcher) resetScratch() {
	for i := range m.visitedL {
		m.visitedL[i] = false
	}
	for i := range m.visitedR {
		m.visitedR[i] = false
	}
}

// Violator is a Hall-condition violation certificate: a set of requests
// Lefts whose entire server set Rights has insufficient capacity —
// the paper's "obstruction". Slots == Σ caps(Rights) < len(Lefts).
type Violator struct {
	Lefts  []int
	Rights []int
	Slots  int64
}

// HallViolator extracts the obstruction certificate after AugmentAll has
// returned a non-empty unmatched set. It computes alternating reachability
// from all unmatched lefts; the reached lefts X and rights B(X) satisfy
// U_B(X) < |X| (in slots). Returns nil if every active left is matched.
func (m *Matcher) HallViolator(adj Adjacency) *Violator {
	m.resetScratch()
	m.queue = m.queue[:0]
	for l := range m.assigned {
		if m.active[l] && m.assigned[l] == Unassigned {
			m.visitedL[l] = true
			m.queue = append(m.queue, int32(l))
		}
	}
	if len(m.queue) == 0 {
		return nil
	}
	for head := 0; head < len(m.queue); head++ {
		l := m.queue[head]
		adj.VisitServers(int(l), func(r int) bool {
			if m.visitedR[r] {
				return true
			}
			m.visitedR[r] = true
			for _, l2 := range m.rightLefts[r] {
				if !m.visitedL[l2] {
					m.visitedL[l2] = true
					m.queue = append(m.queue, l2)
				}
			}
			return true
		})
	}
	v := &Violator{}
	for l, ok := range m.visitedL {
		if ok && m.active[l] {
			v.Lefts = append(v.Lefts, l)
		}
	}
	for r, ok := range m.visitedR {
		if ok {
			v.Rights = append(v.Rights, r)
			v.Slots += m.caps[r]
		}
	}
	return v
}

// Verify checks internal consistency and edge validity of the current
// matching; it returns an error describing the first violation found.
// Tests and the simulator's paranoid mode call it.
func (m *Matcher) Verify(adj Adjacency) error {
	var matched int
	loads := make([]int64, len(m.caps))
	for l := range m.assigned {
		if !m.active[l] {
			if m.assigned[l] != Unassigned {
				return fmt.Errorf("inactive left %d has assignment %d", l, m.assigned[l])
			}
			continue
		}
		r := m.assigned[l]
		if r == Unassigned {
			continue
		}
		matched++
		loads[r]++
		if !adj.CanServe(l, int(r)) {
			return fmt.Errorf("assignment %d->%d has no edge", l, r)
		}
		if m.posInRight[l] < 0 || int(m.posInRight[l]) >= len(m.rightLefts[r]) ||
			m.rightLefts[r][m.posInRight[l]] != int32(l) {
			return fmt.Errorf("back-pointer corrupt for left %d", l)
		}
	}
	if matched != m.matchedCount {
		return fmt.Errorf("matchedCount=%d, actual=%d", m.matchedCount, matched)
	}
	for r := range m.caps {
		if loads[r] != m.load[r] {
			return fmt.Errorf("right %d load=%d, actual=%d", r, m.load[r], loads[r])
		}
		if loads[r] > m.caps[r] {
			return fmt.Errorf("right %d over capacity: %d > %d", r, loads[r], m.caps[r])
		}
		if int64(len(m.rightLefts[r])) != loads[r] {
			return fmt.Errorf("right %d list length %d != load %d", r, len(m.rightLefts[r]), loads[r])
		}
	}
	return nil
}
