// Threshold: sweep the normalized upload capacity u across 1.0 and watch
// the paper's scalability threshold appear. For each u, the example probes
// which catalog sizes survive the impossibility adversary (every box
// demands a video it stores nothing of) plus a flash crowd.
//
//	go run ./examples/threshold
package main

import (
	"fmt"
	"log"

	vod "repro"
)

func main() {
	const (
		n      = 48
		d      = 2
		c      = 4
		rounds = 60
	)
	fmt.Println("max surviving catalog m by upload capacity u")
	fmt.Println("(n = 48 boxes, d = 2 videos of storage, c = 4 stripes)")
	fmt.Println()
	fmt.Printf("%8s  %12s  %s\n", "u", "max m", "")
	for _, u := range []float64{0.6, 0.8, 0.9, 1.1, 1.25, 1.5, 2.0} {
		best := 0
		// Probe catalogs from large to small: m = dn/k for k = 1, 2, ...
		for k := 1; k <= d*n; k++ {
			m := d * n / k
			if m <= best {
				break
			}
			if survives(u, k) {
				best = m
				break
			}
		}
		bar := ""
		for i := 0; i < best/4; i++ {
			bar += "#"
		}
		fmt.Printf("%8.2f  %12d  %s\n", u, best, bar)
	}
	fmt.Println("\nthe catalog collapses to O(1) below u = 1 (every box must hold data")
	fmt.Println("of nearly every video) and jumps to Ω(n) above it — Theorem 1.")
}

// survives builds the system at replication k and runs both adversaries.
func survives(u float64, k int) bool {
	for _, mk := range []func() vod.Generator{
		vod.NewAvoidPossession,
		func() vod.Generator { return vod.NewFlashCrowd(0) },
		vod.NewDistinctVideos,
	} {
		sys, err := vod.New(vod.Spec{
			Boxes: 48, Upload: u, Storage: 2, Stripes: 4, Replicas: k,
			Duration: 20, Growth: 1.2, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Run(mk(), 60)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Failed {
			return false
		}
	}
	return true
}
