// Package analysis implements, as executable closed forms, every bound and
// threshold stated in the paper: Theorem 1 (homogeneous systems), Theorem 2
// (balanced heterogeneous systems), the expansion bound of Lemma 2, the
// allocation probability bounds of Lemmas 3–4, the first-moment union bound
// on the obstruction probability, and the impossibility bound for u < 1.
//
// The experiment harness plots these next to the measured quantities, so a
// reader can see where the theory's (intentionally loose) constants sit
// relative to simulated behaviour.
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// ErrBelowThreshold is returned when a parameter request is unsatisfiable
// because the system sits at or below the scalability threshold.
var ErrBelowThreshold = errors.New("analysis: upload capacity at or below scalability threshold")

// HomogeneousParams bundles the inputs of Theorem 1.
type HomogeneousParams struct {
	N  int     // number of boxes
	U  float64 // normalized upload capacity of every box
	D  int     // storage capacity of every box, in videos
	Mu float64 // maximal swarm growth per round (µ > 1)
}

// Validate checks structural sanity (not the threshold).
func (p HomogeneousParams) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("analysis: n=%d must be positive", p.N)
	}
	if p.D <= 0 {
		return fmt.Errorf("analysis: d=%d must be positive", p.D)
	}
	if p.U < 0 {
		return fmt.Errorf("analysis: u=%v must be non-negative", p.U)
	}
	if p.Mu < 1 {
		return fmt.Errorf("analysis: µ=%v must be at least 1", p.Mu)
	}
	return nil
}

// EffectiveUpload returns u′ = ⌊u·c⌋/c: the usable upload of a box that
// can only serve whole stripes of rate 1/c.
func EffectiveUpload(u float64, c int) float64 {
	return math.Floor(u*float64(c)) / float64(c)
}

// UploadSlots returns ⌊u·c⌋, the box upload capacity in stripe slots.
func UploadSlots(u float64, c int) int {
	return int(math.Floor(u*float64(c) + 1e-9))
}

// Nu returns ν = 1/(c+2µ²−1) − 1/(uc), the expansion margin of Lemma 4.
// It is positive exactly when c exceeds the Theorem 1 stripe-count bound.
func Nu(u float64, c int, mu float64) float64 {
	return 1/(float64(c)+2*mu*mu-1) - 1/(u*float64(c))
}

// MinC returns the smallest stripe count c satisfying the Theorem 1
// condition c > (2µ²−1)/(u−1). It fails for u ≤ 1, where no finite c works.
func MinC(u, mu float64) (int, error) {
	if u <= 1 {
		return 0, ErrBelowThreshold
	}
	bound := (2*mu*mu - 1) / (u - 1)
	c := int(math.Floor(bound)) + 1
	if float64(c) <= bound { // exact-integer boundary
		c++
	}
	return c, nil
}

// RecommendedC returns c = ⌈2(2µ²−1)/(u−1)⌉, the choice used in the final
// catalog-size derivation of Theorem 1 (it guarantees u′ ≥ (u+1)/2).
func RecommendedC(u, mu float64) (int, error) {
	if u <= 1 {
		return 0, ErrBelowThreshold
	}
	return int(math.Ceil(2 * (2*mu*mu - 1) / (u - 1))), nil
}

// DPrime returns d′ = max{d, u, e}, the normalization used in the
// replication bound.
func DPrime(d, u float64) float64 {
	return math.Max(math.Max(d, u), math.E)
}

// MinK returns the Theorem 1 replication factor k ≥ 5·ν⁻¹·log d′ / log u′
// for the given stripe count c. It fails when ν ≤ 0 (c too small) or
// u′ ≤ 1 (upload truncation ate the whole margin).
func MinK(p HomogeneousParams, c int) (int, error) {
	nu := Nu(p.U, c, p.Mu)
	if nu <= 0 {
		return 0, fmt.Errorf("analysis: ν=%.4g ≤ 0 at c=%d: %w", nu, c, ErrBelowThreshold)
	}
	uPrime := EffectiveUpload(p.U, c)
	if uPrime <= 1 {
		return 0, fmt.Errorf("analysis: u′=%.4g ≤ 1 at c=%d: %w", uPrime, c, ErrBelowThreshold)
	}
	dPrime := DPrime(float64(p.D), p.U)
	k := 5 / nu * math.Log(dPrime) / math.Log(uPrime)
	return int(math.Ceil(k)), nil
}

// ProofK returns the slightly stronger replication bound appearing at the
// end of the Theorem 1 proof: k ≥ ν⁻¹·max{5, log_{u′}(e⁴·d′·u′)}.
func ProofK(p HomogeneousParams, c int) (int, error) {
	nu := Nu(p.U, c, p.Mu)
	if nu <= 0 {
		return 0, ErrBelowThreshold
	}
	uPrime := EffectiveUpload(p.U, c)
	if uPrime <= 1 {
		return 0, ErrBelowThreshold
	}
	dPrime := DPrime(float64(p.D), p.U)
	logTerm := math.Log(math.Exp(4)*dPrime*uPrime) / math.Log(uPrime)
	k := math.Max(5, logTerm) / nu
	return int(math.Ceil(k)), nil
}

// CatalogSize returns m = ⌊d·n/k⌋, the catalog achieved by storing k
// replicas of each stripe.
func CatalogSize(n, d, k int) int {
	if k <= 0 {
		return 0
	}
	return d * n / k
}

// CatalogBound evaluates the Theorem 1 lower-bound shape
//
//	(u−1)² · log((u+1)/2) / (u³ µ²) · d·n / log d′
//
// without the unspecified Ω-constant. Experiments compare its *shape*
// (scaling in u and n) against measured catalog sizes.
func CatalogBound(p HomogeneousParams) float64 {
	if p.U <= 1 {
		return 0
	}
	dPrime := DPrime(float64(p.D), p.U)
	num := (p.U - 1) * (p.U - 1) * math.Log((p.U+1)/2)
	den := p.U * p.U * p.U * p.Mu * p.Mu
	return num / den * float64(p.D*p.N) / math.Log(dPrime)
}

// Plan is a complete parameterization of a Theorem 1 system.
type Plan struct {
	Params HomogeneousParams
	C      int     // stripes per video
	K      int     // replicas per stripe (theorem bound)
	ProofK int     // stricter proof-stage bound
	M      int     // achieved catalog ⌊dn/k⌋ at K
	UPrime float64 // effective upload ⌊uc⌋/c
	Nu     float64 // expansion margin
	DPrime float64
	Bound  float64 // catalog lower-bound shape
}

// NewPlan derives the full Theorem 1 parameterization, choosing the
// recommended stripe count.
func NewPlan(p HomogeneousParams) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	c, err := RecommendedC(p.U, p.Mu)
	if err != nil {
		return Plan{}, err
	}
	return NewPlanWithC(p, c)
}

// NewPlanWithC derives the Theorem 1 parameterization for a caller-chosen
// stripe count.
func NewPlanWithC(p HomogeneousParams, c int) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if c <= 0 {
		return Plan{}, fmt.Errorf("analysis: c=%d must be positive", c)
	}
	k, err := MinK(p, c)
	if err != nil {
		return Plan{}, err
	}
	pk, err := ProofK(p, c)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Params: p,
		C:      c,
		K:      k,
		ProofK: pk,
		M:      CatalogSize(p.N, p.D, k),
		UPrime: EffectiveUpload(p.U, c),
		Nu:     Nu(p.U, c, p.Mu),
		DPrime: DPrime(float64(p.D), p.U),
		Bound:  CatalogBound(p),
	}, nil
}

// ImpossibilityCatalogCap returns the u < 1 catalog ceiling m ≤ d_max/ℓ
// (Section 1.3): with minimal chunk size ℓ, a box stores data of at most
// d/ℓ videos, and any larger catalog admits a defeating request sequence.
func ImpossibilityCatalogCap(dMax, ell float64) int {
	if ell <= 0 {
		panic("analysis: minimal chunk size must be positive")
	}
	return int(math.Floor(dMax / ell))
}

// Lemma2LowerBound returns the Lemma 2 expansion bound on |B(X)|: for a
// request set of size i touching i1 distinct stripes,
//
//	|B(X)| ≥ (i − (c+2µ²−1)·i1) / (c + 2(µ²−1)).
func Lemma2LowerBound(i, i1, c int, mu float64) float64 {
	return (float64(i) - (float64(c)+2*mu*mu-1)*float64(i1)) / (float64(c) + 2*(mu*mu-1))
}
