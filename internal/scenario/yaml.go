// Scenario specs are written in a small, strictly defined subset of YAML
// (or, interchangeably, JSON). The subset is deliberately tiny — block
// maps, block lists, scalars, comments — because the point of the spec
// format is reproducibility and precise error messages, not expressive
// power: every parse error carries the offending line, and the decoded
// tree remembers line numbers so field-level validation errors do too.
//
// Supported YAML constructs:
//
//	key: value            # scalar field ("#" comments allowed)
//	key:                  # nested block (map or list) on deeper lines
//	  sub: 1
//	list:
//	  - 3                 # scalar items
//	  - name: x           # map items (keys aligned under the first)
//	    rounds: 5
//	quoted: "a # not a comment"
//
// Not supported (rejected with an error rather than misparsed): tabs in
// indentation, flow collections ({...}, [...]), anchors/aliases, multi-
// line scalars, and documents ("---"). JSON documents (first non-blank
// byte "{") are parsed with encoding/json and get the same line-tracked
// tree.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// node is one vertex of the parsed spec tree. Exactly one of the three
// shapes is populated, per kind.
type node struct {
	line   int
	kind   nodeKind
	scalar string // scalarNode
	quoted bool   // scalar came quoted: always a string, never a number
	keys   []string
	fields map[string]*node // mapNode, in keys order
	items  []*node          // listNode
}

type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	listNode
)

func (k nodeKind) String() string {
	switch k {
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	case listNode:
		return "list"
	}
	return "?"
}

// parseTree parses a YAML-subset or JSON document into a node tree.
func parseTree(data []byte) (*node, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
		return parseJSONTree(data)
	}
	return parseYAMLTree(data)
}

// --- YAML subset ---

type yline struct {
	num    int // 1-based source line
	indent int
	text   string // content with indent and comments stripped
}

type yparser struct {
	lines []yline
	pos   int
}

func parseYAMLTree(data []byte) (*node, error) {
	p := &yparser{}
	for i, raw := range strings.Split(string(data), "\n") {
		num := i + 1
		if idx := strings.IndexByte(raw, '\t'); idx >= 0 {
			return nil, fmt.Errorf("line %d: tab character (the scenario YAML subset indents with spaces only)", num)
		}
		raw = strings.TrimRight(raw, " \r")
		content := stripComment(raw)
		content = strings.TrimRight(content, " ")
		indent := 0
		for indent < len(content) && content[indent] == ' ' {
			indent++
		}
		body := content[indent:]
		if body == "" {
			continue
		}
		if body == "---" || strings.HasPrefix(body, "--- ") {
			return nil, fmt.Errorf("line %d: multi-document markers (---) are not part of the scenario YAML subset", num)
		}
		p.lines = append(p.lines, yline{num: num, indent: indent, text: body})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("empty scenario document")
	}
	if p.lines[0].indent != 0 {
		return nil, fmt.Errorf("line %d: top-level content must not be indented", p.lines[0].num)
	}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected indentation (indent %d after a block at indent 0)", l.num, l.indent)
	}
	return root, nil
}

// stripComment removes a trailing "# ..." comment: a '#' outside quotes
// that starts the line or follows whitespace.
func stripComment(s string) string {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == '\\' && inQuote == '"' {
				i++ // skip the escaped character
			} else if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the map or list starting at the current line, whose
// indent must equal indent.
func (p *yparser) parseBlock(indent int) (*node, error) {
	l := p.lines[p.pos]
	if isListItem(l.text) {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func isListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yparser) parseMap(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].num, kind: mapNode, fields: map[string]*node{}}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation (expected a key at indent %d)", l.num, indent)
		}
		if isListItem(l.text) {
			break // a sibling list item ends this inline map (list-of-maps case)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := n.fields[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		var child *node
		switch {
		case rest != "":
			child, err = scalarFrom(l.num, rest)
			if err != nil {
				return nil, err
			}
		case p.pos < len(p.lines) && p.lines[p.pos].indent > indent:
			child, err = p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		case p.pos < len(p.lines) && p.lines[p.pos].indent == indent && isListItem(p.lines[p.pos].text):
			// The common YAML style of a list aligned with its key.
			child, err = p.parseList(indent)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("line %d: key %q has no value (scalar on the same line, or an indented block below)", l.num, key)
		}
		n.keys = append(n.keys, key)
		n.fields[key] = child
	}
	return n, nil
}

func (p *yparser) parseList(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].num, kind: listNode}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || !isListItem(l.text) {
			if l.indent > indent {
				return nil, fmt.Errorf("line %d: unexpected indentation inside a list (items start with \"- \" at indent %d)", l.num, indent)
			}
			break
		}
		if l.text == "-" {
			// Item body is the following deeper-indented block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: empty list item", l.num)
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
			continue
		}
		body := l.text[2:]
		for len(body) > 0 && body[0] == ' ' {
			body = body[1:]
		}
		if body == "" {
			return nil, fmt.Errorf("line %d: empty list item", l.num)
		}
		if k, _, err := splitKey(yline{num: l.num, text: body}); err == nil && k != "" {
			// "- key: value": a map item. Rewrite this line as the map's
			// first key line at the column where the key actually sits, so
			// the item's remaining keys (aligned under it) join the block.
			col := l.indent + (len(l.text) - len(body))
			p.lines[p.pos] = yline{num: l.num, indent: col, text: body}
			item, err := p.parseMap(col)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
			continue
		}
		p.pos++
		item, err := scalarFrom(l.num, body)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

// splitKey splits "key: rest" at the first unquoted colon followed by a
// space or end of line.
func splitKey(l yline) (key, rest string, err error) {
	s := l.text
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\'' {
			break // quoted scalars cannot start a key in this subset
		}
		if s[i] == ':' && (i+1 == len(s) || s[i+1] == ' ') {
			key = strings.TrimSpace(s[:i])
			if key == "" {
				return "", "", fmt.Errorf("line %d: empty key", l.num)
			}
			return key, strings.TrimSpace(s[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("line %d: expected \"key: value\", got %q", l.num, s)
}

// scalarFrom builds a scalar node, unquoting if needed. Flow collections
// are rejected explicitly so a stray "[1,2]" fails loudly.
func scalarFrom(line int, s string) (*node, error) {
	switch s[0] {
	case '"':
		un, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad quoted string %s: %v", line, s, err)
		}
		return &node{line: line, kind: scalarNode, scalar: un, quoted: true}, nil
	case '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("line %d: unterminated single-quoted string", line)
		}
		return &node{line: line, kind: scalarNode,
			scalar: strings.ReplaceAll(s[1:len(s)-1], "''", "'"), quoted: true}, nil
	case '{', '[':
		return nil, fmt.Errorf("line %d: flow collections (%q) are not part of the scenario YAML subset; use indented blocks", line, s)
	case '&', '*':
		return nil, fmt.Errorf("line %d: anchors and aliases are not part of the scenario YAML subset", line)
	}
	return &node{line: line, kind: scalarNode, scalar: s}, nil
}

// --- JSON ---

// parseJSONTree parses a JSON document into the same line-tracked tree,
// mapping decoder offsets back to source lines.
func parseJSONTree(data []byte) (*node, error) {
	lineAt := lineIndex(data)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	root, err := decodeJSONValue(dec, lineAt)
	if err != nil {
		return nil, err
	}
	if tok, err := dec.Token(); err == nil {
		return nil, fmt.Errorf("line %d: trailing content after the spec document: %v", lineAt(dec.InputOffset()), tok)
	}
	return root, nil
}

// lineIndex returns a byte-offset → 1-based line translator.
func lineIndex(data []byte) func(int64) int {
	var starts []int64
	starts = append(starts, 0)
	for i, b := range data {
		if b == '\n' {
			starts = append(starts, int64(i+1))
		}
	}
	return func(off int64) int {
		lo, hi := 0, len(starts)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if starts[mid] <= off {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo + 1
	}
}

func decodeJSONValue(dec *json.Decoder, lineAt func(int64) int) (*node, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("line %d: %v", lineAt(dec.InputOffset()), err)
	}
	line := lineAt(dec.InputOffset())
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			n := &node{line: line, kind: mapNode, fields: map[string]*node{}}
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineAt(dec.InputOffset()), err)
				}
				key := keyTok.(string)
				if _, dup := n.fields[key]; dup {
					return nil, fmt.Errorf("line %d: duplicate key %q", lineAt(dec.InputOffset()), key)
				}
				child, err := decodeJSONValue(dec, lineAt)
				if err != nil {
					return nil, err
				}
				n.keys = append(n.keys, key)
				n.fields[key] = child
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, fmt.Errorf("line %d: %v", lineAt(dec.InputOffset()), err)
			}
			return n, nil
		case '[':
			n := &node{line: line, kind: listNode}
			for dec.More() {
				child, err := decodeJSONValue(dec, lineAt)
				if err != nil {
					return nil, err
				}
				n.items = append(n.items, child)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, fmt.Errorf("line %d: %v", lineAt(dec.InputOffset()), err)
			}
			return n, nil
		}
		return nil, fmt.Errorf("line %d: unexpected delimiter %v", line, t)
	case string:
		return &node{line: line, kind: scalarNode, scalar: t, quoted: true}, nil
	case json.Number:
		return &node{line: line, kind: scalarNode, scalar: t.String()}, nil
	case bool:
		return &node{line: line, kind: scalarNode, scalar: strconv.FormatBool(t)}, nil
	case nil:
		return nil, fmt.Errorf("line %d: null is not a valid scenario value", line)
	}
	return nil, fmt.Errorf("line %d: unexpected token %v", line, tok)
}
