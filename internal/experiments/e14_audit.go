package experiments

import (
	"repro/internal/adversary"
	"repro/internal/allocation"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/expander"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/video"
)

func runE14(o Options) Result {
	n := pick(o, 48, 48)
	m := n / 2
	c, T := 4, 20
	u, mu := 1.1, 1.5
	// Audit bar for one fully-demanded video: (4k boxes × ⌊uc⌋ slots) /
	// (c·n requests) crosses 1 at k = n/(c·⌊uc⌋/c)… = 12 here; the
	// sourcing-only flash crowd crosses at the same point.
	ks := pick(o, []int{4, 12, 20}, []int{2, 4, 8, 10, 12, 14, 16, 20})
	trials := pick(o, 4, 10)
	rounds := pick(o, 60, 80)
	probes := pick(o, 40, 150)

	tbl := report.New("E14: sampled expansion audit vs sourcing-only simulation",
		"k", "audit violation rate", "worst slots/requests", "sourcing-only defeat rate")
	fig := report.NewFigure("E14: audit margin tracks sourcing fragility", "k", "rate / ratio")
	auditS := fig.AddSeries("audit worst slots/requests")
	simS := fig.AddSeries("sourcing-only defeat rate")

	capSlots := make([]int64, n)
	for i := range capSlots {
		capSlots[i] = int64(analysis.UploadSlots(u, c))
	}
	for _, k := range ks {
		violated := 0
		defeated := 0
		worst := 1e18
		for trial := 0; trial < trials; trial++ {
			seed := mixSeed(o.Seed, uint64(trial), uint64(k))
			cat := video.MustCatalog(m, c, T)
			total := k * m * c
			slots := make([]int, n)
			base, rem := total/n, total%n
			for i := range slots {
				slots[i] = base
				if i < rem {
					slots[i]++
				}
			}
			alloc, err := allocation.Permutation(stats.NewRNG(seed), cat, slots, k)
			if err != nil {
				tbl.AddRow(report.Cell(k), "error: "+err.Error(), "", "")
				continue
			}
			aud := expander.New(alloc, capSlots).Full(stats.NewRNG(seed^0xe14), probes, probes/10)
			if aud.Violations > 0 {
				violated++
			}
			if aud.Worst.Ratio < worst {
				worst = aud.Worst.Ratio
			}
			// Sourcing-only simulation on the same allocation: the regime
			// the audit models (caches never serve). Several attack shapes,
			// since the audit's probes cover multi-video demand mixes.
			gens := []core.Generator{
				&adversary.FlashCrowd{Target: 0, Rotate: true},
				&adversary.WeakestVideos{},
				&adversary.DistinctVideos{},
			}
			for _, gen := range gens {
				sys, err := buildFixedCatalog(seed, n, m, c, T, k, u, mu, func(cfg *core.Config) {
					cfg.DisableCacheServing = true
				})
				if err != nil {
					break
				}
				rep, err := sys.Run(gen, rounds)
				if err != nil {
					break
				}
				if rep.Failed {
					defeated++
					break
				}
			}
		}
		vr := float64(violated) / float64(trials)
		dr := float64(defeated) / float64(trials)
		auditS.Add(float64(k), worst)
		simS.Add(float64(k), dr)
		tbl.AddRowValues(k, vr, worst, dr)
	}
	tbl.AddNote("n=%d m=%d c=%d u=%.2f µ=%.2f trials=%d probes=%d; the audit's per-video probe bar "+
		"(4k·⌊uc⌋ slots vs c·n requests) crosses 1 at k=12 at these parameters", n, m, c, u, mu, trials, probes)
	tbl.AddNote("claim shape: audit violations and sourcing-only defeats fall together as k grows, " +
		"with the audit erring safe (violations ≥ defeats)")
	return Result{ID: "E14", Name: "expander-audit", Claim: registry["E14"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
