package protocol

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
)

// Informed variants: before proposing, a requester polls all its
// candidate servers for their free-slot counts, then proposes using one of
// two policies:
//
//   - VariantHerd: strictly best-first (most advertised free slots). This
//     is the naive use of load information, and it *herds*: every
//     requester receives the same pre-proposal snapshot, converges on the
//     same order, and floods the globally-freest servers — measurably
//     worse than the blind protocol on skewed instances (experiment E12).
//     The effect is the classic stale-load-information pathology.
//   - VariantRandomInformed: propose to a uniformly random untried
//     candidate that advertised free capacity (falling back to the rest
//     when all advertised-free candidates are exhausted). Randomization
//     breaks the herd while the poll still skips known-full servers.
//
// Experiment E12 compares blind, herd, and random-informed.

// Variant selects the informed proposal policy.
type Variant int

const (
	// VariantHerd proposes strictly best-first on the polled snapshot.
	VariantHerd Variant = iota
	// VariantRandomInformed proposes to a random advertised-free candidate.
	VariantRandomInformed
)

type inquire struct{ request int32 }
type freeSlots struct {
	request int32
	free    int64
}

// informedRequester polls, orders, then proposes.
type informedRequester struct {
	request    int32
	candidates []int32
	serverBase int
	variant    Variant

	replies map[int32]int64
	order   []int32
	next    int
	matched int32
	done    bool
	polled  bool
}

func (r *informedRequester) OnTimer(ctx *netsim.Context, kind int) {
	if kind != timerStart || r.polled {
		return
	}
	r.polled = true
	if len(r.candidates) == 0 {
		r.done = true
		return
	}
	r.replies = make(map[int32]int64, len(r.candidates))
	for _, c := range r.candidates {
		ctx.Send(netsim.NodeID(r.serverBase+int(c)), inquire{request: r.request})
	}
}

func (r *informedRequester) OnMessage(ctx *netsim.Context, msg netsim.Message) {
	switch m := msg.Payload.(type) {
	case freeSlots:
		if r.done || r.order != nil {
			return // already proposing; late poll replies are ignored
		}
		r.replies[int32(int(msg.From)-r.serverBase)] = m.free
		if len(r.replies) == len(r.candidates) {
			r.buildOrder(ctx)
			r.proposeNext(ctx)
		}
	case grant:
		if m.request == r.request && !r.done {
			r.matched = int32(int(msg.From) - r.serverBase)
			r.done = true
		}
	case reject:
		if m.request == r.request && !r.done {
			r.proposeNext(ctx)
		}
	default:
		panic(fmt.Sprintf("protocol: informed requester got %T", msg.Payload))
	}
}

// buildOrder derives the proposal order from the polled snapshot
// according to the variant.
func (r *informedRequester) buildOrder(ctx *netsim.Context) {
	r.order = append([]int32(nil), r.candidates...)
	switch r.variant {
	case VariantHerd:
		sort.SliceStable(r.order, func(i, j int) bool {
			fi, fj := r.replies[r.order[i]], r.replies[r.order[j]]
			if fi != fj {
				return fi > fj
			}
			return r.order[i] < r.order[j]
		})
	case VariantRandomInformed:
		// Partition into advertised-free and advertised-full, shuffle each.
		free := r.order[:0:len(r.order)]
		var full []int32
		for _, c := range r.candidates {
			if r.replies[c] > 0 {
				free = append(free, c)
			} else {
				full = append(full, c)
			}
		}
		rng := ctx.Rand()
		rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		rng.Shuffle(len(full), func(i, j int) { full[i], full[j] = full[j], full[i] })
		r.order = append(free, full...)
	}
}

func (r *informedRequester) proposeNext(ctx *netsim.Context) {
	if r.next >= len(r.order) {
		r.done = true
		return
	}
	target := r.order[r.next]
	r.next++
	ctx.Send(netsim.NodeID(r.serverBase+int(target)), propose{request: r.request})
}

// dedupe returns the distinct candidates in first-appearance order.
func dedupe(cand []int32) []int32 {
	seen := make(map[int32]struct{}, len(cand))
	out := make([]int32, 0, len(cand))
	for _, c := range cand {
		if _, dup := seen[c]; !dup {
			seen[c] = struct{}{}
			out = append(out, c)
		}
	}
	return out
}

// informedServer answers polls and grants like the plain server.
type informedServer struct {
	free int64
}

func (s *informedServer) OnTimer(*netsim.Context, int) {}

func (s *informedServer) OnMessage(ctx *netsim.Context, msg netsim.Message) {
	switch m := msg.Payload.(type) {
	case inquire:
		ctx.Send(msg.From, freeSlots{request: m.request, free: s.free})
	case propose:
		if s.free > 0 {
			s.free--
			ctx.Send(msg.From, grant{request: m.request})
		} else {
			ctx.Send(msg.From, reject{request: m.request})
		}
	default:
		panic(fmt.Sprintf("protocol: informed server got %T", msg.Payload))
	}
}

// RunInformed executes an informed variant on the instance.
func RunInformed(inst Instance, cfg netsim.Config, variant Variant) Result {
	net := netsim.New(cfg)
	nR := len(inst.Candidates)
	requesters := make([]*informedRequester, nR)
	for i := range requesters {
		requesters[i] = &informedRequester{
			request: int32(i),
			// Deduplicate: the poll counts one reply per distinct server,
			// and duplicate proposals to the same server are pointless.
			candidates: dedupe(inst.Candidates[i]),
			serverBase: nR,
			variant:    variant,
			matched:    -1,
		}
		net.AddNode(requesters[i])
	}
	for _, c := range inst.Caps {
		net.AddNode(&informedServer{free: c})
	}
	for i := range requesters {
		net.Timer(netsim.NodeID(i), 0, timerStart)
	}
	maxEvents := 0
	for _, cand := range inst.Candidates {
		maxEvents += 4*len(cand) + 2 // poll + reply + propose + answer
	}
	events := net.RunAll(maxEvents + nR)

	res := Result{
		Assignments: make([]int32, nR),
		Messages:    net.MessagesSent(),
		Time:        net.Now(),
		Events:      events,
	}
	for i, r := range requesters {
		res.Assignments[i] = r.matched
		if r.matched >= 0 {
			res.Matched++
		} else {
			res.Unserved++
		}
	}
	return res
}
