package hetero

import (
	"testing"

	"repro/internal/allocation"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/video"
)

// buildRelayed assembles a full Section 4 system: bimodal population,
// compensation assignment, permutation allocation over proportional
// storage, and a relayed-strategy core config.
func buildRelayed(t *testing.T, seed uint64, n int, richFrac, uRich, uPoor, uStar, mu float64, c, k, T int) (*core.System, int) {
	t.Helper()
	pop := Bimodal(n, richFrac, uRich, uPoor, 2.0)
	relays, err := Compensate(pop.Uploads, uStar)
	if err != nil {
		t.Fatal(err)
	}
	slots, m, err := AllocationSlots(pop.Storage, c, k)
	if err != nil {
		t.Fatal(err)
	}
	cat := video.MustCatalog(m, c, T)
	alloc, err := allocation.Permutation(stats.NewRNG(seed), cat, slots, k)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{
		Alloc:    alloc,
		Uploads:  pop.Uploads,
		Mu:       mu,
		Strategy: core.StrategyRelayed,
		UStar:    uStar,
		Relays:   relays,
		Paranoid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, m
}

// poorFirst demands from poor boxes first — the hard case for relaying.
type poorFirst struct {
	uStar float64
	next  video.ID
	idle  []int // per-round scratch: one IdleBoxes pass per Next
}

func (g *poorFirst) Next(v *core.View, round int) []core.Demand {
	var out []core.Demand
	m := v.Catalog().M
	emit := func(b int) bool {
		for tries := 0; tries < m; tries++ {
			if v.SwarmAllowance(g.next) > 0 {
				out = append(out, core.Demand{Box: b, Video: g.next})
				g.next = video.ID((int(g.next) + 1) % m)
				return true
			}
			g.next = video.ID((int(g.next) + 1) % m)
		}
		return false
	}
	g.idle = v.IdleBoxes(g.idle[:0])
	for _, b := range g.idle {
		if v.Upload(b) < g.uStar {
			if !emit(b) {
				return out
			}
		}
	}
	for _, b := range g.idle {
		if v.Upload(b) >= g.uStar {
			if !emit(b) {
				return out
			}
		}
	}
	return out
}

func TestRelayedSystemServesPoorBoxes(t *testing.T) {
	// 30% poor boxes at u=0.5 relayed through rich boxes at u=3.0.
	// c = 30 ≥ 10µ⁴/(u*−1) ≈ 29.3 for µ=1.1, u*=1.5.
	sys, m := buildRelayed(t, 21, 40, 0.7, 3.0, 0.5, 1.5, 1.1, 30, 4, 40)
	if m < 10 {
		t.Fatalf("catalog too small for the test: m=%d", m)
	}
	gen := &poorFirst{uStar: 1.5}
	rep, err := sys.Run(gen, 120)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("relayed system failed at round %d: %+v", rep.FailRound, rep.Obstructions)
	}
	if rep.CompletedViewings == 0 {
		t.Fatal("no viewings completed")
	}
	// Both poor (delay 6) and rich (delay 4) demands should have played.
	if rep.StartupDelay.Min != 4 || rep.StartupDelay.Max != 6 {
		t.Errorf("startup delays = %+v, want min 4 / max 6", rep.StartupDelay)
	}
	// Poor boxes route through relays: the request mix must show relayed
	// requests and some direct postponed ones (c_b > 0 at u=0.5, c=30).
	if rep.RelayedRequests == 0 {
		t.Error("no relayed requests recorded in a relayed run")
	}
	if rep.PostponedRequests == 0 {
		t.Error("no direct postponed requests recorded (c_b should be > 0)")
	}
}

func TestRelayedRejectsOverReservedRelay(t *testing.T) {
	// A relay whose reservations exceed its upload slots must be rejected
	// at configuration time: one rich box at u*=1.5 exactly (zero spare)
	// assigned two poor boxes by hand.
	pop := Bimodal(3, 1.0/3.0, 6.0, 0.2, 2.0)
	c, k := 30, 1
	slots, m, err := AllocationSlots(pop.Storage, c, k)
	if err != nil {
		t.Fatal(err)
	}
	cat := video.MustCatalog(m, c, 20)
	alloc, err := allocation.Permutation(stats.NewRNG(1), cat, slots, k)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build an absurd assignment: both poor boxes on box 0, which
	// also only has ⌊6·30⌋ = 180 slots; each reservation is c−c_b = 30
	// slots (c_b=0 at u=0.2, µ=1.1) — fine. Now shrink the relay to
	// u=1.6: 48 slots < 60 reserved → config must fail.
	pop.Uploads[0] = 1.6
	relays := []int{core.NoRelay, 0, 0}
	_, err = core.NewSystem(core.Config{
		Alloc:    alloc,
		Uploads:  pop.Uploads,
		Mu:       1.1,
		Strategy: core.StrategyRelayed,
		UStar:    1.5,
		Relays:   relays,
	})
	if err == nil {
		t.Fatal("over-reserved relay must be rejected")
	}
}

func TestRelayedConfigErrors(t *testing.T) {
	pop := Bimodal(4, 0.5, 3.0, 0.5, 2.0)
	slots, m, err := AllocationSlots(pop.Storage, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	cat := video.MustCatalog(m, 30, 20)
	alloc, err := allocation.Permutation(stats.NewRNG(1), cat, slots, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := core.Config{
		Alloc:    alloc,
		Uploads:  pop.Uploads,
		Mu:       1.1,
		Strategy: core.StrategyRelayed,
		UStar:    1.5,
	}
	// Poor box without relay.
	cfg := base
	cfg.Relays = []int{core.NoRelay, core.NoRelay, core.NoRelay, core.NoRelay}
	if _, err := core.NewSystem(cfg); err == nil {
		t.Error("poor box without relay accepted")
	}
	// Rich box with a relay.
	cfg = base
	cfg.Relays = []int{1, core.NoRelay, 0, 0}
	if _, err := core.NewSystem(cfg); err == nil {
		t.Error("rich box with relay accepted")
	}
	// Poor relay.
	cfg = base
	cfg.Relays = []int{core.NoRelay, core.NoRelay, 3, 2}
	if _, err := core.NewSystem(cfg); err == nil {
		t.Error("poor relay accepted")
	}
	// Self relay.
	cfg = base
	cfg.Relays = []int{core.NoRelay, core.NoRelay, 2, 0}
	if _, err := core.NewSystem(cfg); err == nil {
		t.Error("self relay accepted")
	}
}

func TestRelayedZipfWorkload(t *testing.T) {
	sys, _ := buildRelayed(t, 22, 30, 0.7, 3.0, 0.5, 1.5, 1.1, 30, 3, 30)
	gen := &zipfLike{rng: stats.NewRNG(7), p: 0.3}
	rep, err := sys.Run(gen, 90)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("relayed Zipf workload failed: %+v", rep.Obstructions)
	}
	if rep.CompletedViewings == 0 {
		t.Fatal("no completions")
	}
}

// zipfLike is a minimal random workload local to this test (the full one
// lives in package adversary; duplicating three lines avoids a cycle).
type zipfLike struct {
	rng  *stats.RNG
	p    float64
	idle []int // per-round scratch, reused across Next calls
}

func (g *zipfLike) Next(v *core.View, _ int) []core.Demand {
	var out []core.Demand
	m := v.Catalog().M
	g.idle = v.IdleBoxes(g.idle[:0])
	for _, b := range g.idle {
		if !g.rng.Bool(g.p) {
			continue
		}
		vid := video.ID(g.rng.Intn(m))
		if v.SwarmAllowance(vid) > 0 {
			out = append(out, core.Demand{Box: b, Video: vid})
		}
	}
	return out
}
