package video

import (
	"testing"
	"testing/quick"
)

func TestNewCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(10, 4, 100); err != nil {
		t.Fatalf("valid catalog rejected: %v", err)
	}
	for _, bad := range [][3]int{{0, 4, 100}, {10, 0, 100}, {10, 4, 0}, {-1, 4, 100}} {
		if _, err := NewCatalog(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("catalog %v should be rejected", bad)
		}
	}
}

func TestMustCatalogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCatalog(0, 1, 1)
}

func TestStripeRoundTrip(t *testing.T) {
	cat := MustCatalog(7, 5, 50)
	if cat.NumStripes() != 35 {
		t.Fatalf("NumStripes = %d", cat.NumStripes())
	}
	for v := ID(0); int(v) < cat.M; v++ {
		for idx := 0; idx < cat.C; idx++ {
			s := cat.Stripe(v, idx)
			if !cat.Valid(s) {
				t.Fatalf("stripe (%d,%d) invalid", v, idx)
			}
			if cat.VideoOf(s) != v || cat.IndexOf(s) != idx {
				t.Fatalf("round trip failed for (%d,%d): got (%d,%d)", v, idx, cat.VideoOf(s), cat.IndexOf(s))
			}
		}
	}
}

func TestStripeIDsDense(t *testing.T) {
	cat := MustCatalog(3, 4, 10)
	seen := make(map[StripeID]bool)
	for v := ID(0); int(v) < cat.M; v++ {
		for idx := 0; idx < cat.C; idx++ {
			seen[cat.Stripe(v, idx)] = true
		}
	}
	if len(seen) != cat.NumStripes() {
		t.Fatalf("stripe IDs not unique: %d distinct, want %d", len(seen), cat.NumStripes())
	}
	for s := StripeID(0); int(s) < cat.NumStripes(); s++ {
		if !seen[s] {
			t.Fatalf("stripe ID %d missing — not dense", s)
		}
	}
}

func TestStripePanicsOutOfRange(t *testing.T) {
	cat := MustCatalog(2, 3, 10)
	for _, bad := range [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Stripe(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			cat.Stripe(ID(bad[0]), bad[1])
		}()
	}
}

func TestValidBounds(t *testing.T) {
	cat := MustCatalog(2, 3, 10)
	if cat.Valid(-1) || cat.Valid(StripeID(cat.NumStripes())) {
		t.Error("Valid accepts out-of-range stripes")
	}
	if !cat.Valid(0) || !cat.Valid(StripeID(cat.NumStripes()-1)) {
		t.Error("Valid rejects in-range stripes")
	}
}

func TestRates(t *testing.T) {
	cat := MustCatalog(1, 4, 25)
	if cat.StripeRate() != 0.25 {
		t.Errorf("StripeRate = %v", cat.StripeRate())
	}
	if cat.ChunkCount() != 25 {
		t.Errorf("ChunkCount = %v", cat.ChunkCount())
	}
	if cat.String() == "" {
		t.Error("String empty")
	}
}

// Property: VideoOf/IndexOf invert Stripe for arbitrary catalogs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(mRaw, cRaw uint8, vRaw, idxRaw uint16) bool {
		m := int(mRaw%50) + 1
		c := int(cRaw%20) + 1
		cat := MustCatalog(m, c, 10)
		v := ID(int(vRaw) % m)
		idx := int(idxRaw) % c
		s := cat.Stripe(v, idx)
		return cat.VideoOf(s) == v && cat.IndexOf(s) == idx && cat.Valid(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
