package analysis

import (
	"math"
	"testing"
)

func uniformHetero(n int, u, d, uStar, mu float64) HeteroParams {
	us := make([]float64, n)
	ds := make([]float64, n)
	for i := range us {
		us[i] = u
		ds[i] = d
	}
	return HeteroParams{Uploads: us, Storage: ds, UStar: uStar, Mu: mu, Duration: 100}
}

func TestHeteroValidate(t *testing.T) {
	if err := uniformHetero(10, 1.5, 4, 1.2, 1.1).Validate(); err != nil {
		t.Fatalf("valid rejected: %v", err)
	}
	bad := []HeteroParams{
		{},
		{Uploads: []float64{1}, Storage: []float64{1, 2}, UStar: 1.2, Mu: 1.1},
		{Uploads: []float64{1}, Storage: []float64{2}, UStar: 1.0, Mu: 1.1},
		{Uploads: []float64{1}, Storage: []float64{2}, UStar: 1.2, Mu: 0.9},
		{Uploads: []float64{-1}, Storage: []float64{2}, UStar: 1.2, Mu: 1.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestUploadDeficit(t *testing.T) {
	us := []float64{0.5, 0.8, 1.2, 2.0}
	// ∆(1) = 0.5 + 0.2 = 0.7.
	if d := UploadDeficit(us, 1); math.Abs(d-0.7) > 1e-12 {
		t.Errorf("∆(1) = %v, want 0.7", d)
	}
	// ∆(1.5) = 1.0 + 0.7 + 0.3 = 2.0.
	if d := UploadDeficit(us, 1.5); math.Abs(d-2.0) > 1e-12 {
		t.Errorf("∆(1.5) = %v, want 2.0", d)
	}
	if d := UploadDeficit(us, 0.4); d != 0 {
		t.Errorf("∆ below all capacities = %v, want 0", d)
	}
}

func TestHeteroNecessaryCondition(t *testing.T) {
	// All boxes at 1.5: u=1.5 > 1 + 0 → ok.
	if !HeteroNecessaryCondition([]float64{1.5, 1.5, 1.5}) {
		t.Error("homogeneous 1.5 should pass")
	}
	// Half at 0, half at 2: u = 1, ∆(1)/n = 0.5 → 1 > 1.5 false.
	if HeteroNecessaryCondition([]float64{0, 2, 0, 2}) {
		t.Error("deficit-heavy system should fail")
	}
	// Half at 0, half at 3.1: u = 1.55 > 1 + 0.5 → ok.
	if !HeteroNecessaryCondition([]float64{0, 3.1, 0, 3.1}) {
		t.Error("rich-compensated system should pass")
	}
}

func TestCompensationFeasible(t *testing.T) {
	// Poor box at 0.5 needs u*+1−2·0.5 = u*; rich box must have u ≥ 2u*.
	uStar := 1.2
	if !CompensationFeasible([]float64{0.5, 2*uStar + 0.1}, uStar) {
		t.Error("feasible case rejected")
	}
	if CompensationFeasible([]float64{0.5, uStar + 0.1}, uStar) {
		t.Error("infeasible case accepted")
	}
}

func TestStorageBalanced(t *testing.T) {
	p := uniformHetero(4, 1.5, 4, 1.2, 1.1)
	// d_b/u_b = 2.67 ∈ [2, d/u* = 3.33]: balanced.
	if !StorageBalanced(p) {
		t.Error("balanced system rejected")
	}
	p.Storage[0] = 1 // ratio 0.67 < 2
	if StorageBalanced(p) {
		t.Error("unbalanced (too little storage) accepted")
	}
	p = uniformHetero(4, 1.5, 4, 1.2, 1.1)
	p.Storage[0] = 40 // ratio 26.7 > d/u*
	if StorageBalanced(p) {
		t.Error("unbalanced (too much storage) accepted")
	}
	// Zero-upload boxes need zero storage.
	p = uniformHetero(4, 1.5, 4, 1.2, 1.1)
	p.Uploads[0] = 0
	if StorageBalanced(p) {
		t.Error("zero-upload box with storage accepted")
	}
	p.Storage[0] = 0
	// Zeroing box 0's storage lowers the average d to 3, so d/u* must stay
	// above the remaining boxes' ratio 4/1.5 ≈ 2.67: use u* = 1.1.
	p.UStar = 1.1
	if !StorageBalanced(p) {
		t.Error("zero-upload zero-storage box rejected")
	}
}

func TestProportionallyHeterogeneous(t *testing.T) {
	p := HeteroParams{
		Uploads: []float64{1, 2, 4},
		Storage: []float64{2, 4, 8},
		UStar:   1.2, Mu: 1.1,
	}
	if !ProportionallyHeterogeneous(p) {
		t.Error("proportional system rejected")
	}
	p.Uploads[0] = 1.5
	if ProportionallyHeterogeneous(p) {
		t.Error("non-proportional system accepted")
	}
}

func TestTheorem2Formulas(t *testing.T) {
	mu := 1.1
	uStar := 1.5
	c, err := Theorem2MinC(uStar, mu)
	if err != nil {
		t.Fatal(err)
	}
	// c > 4µ⁴/(u*−1) = 11.7 → 12.
	if c != 12 {
		t.Errorf("Theorem2MinC = %d, want 12", c)
	}
	cc, err := Theorem2ConstructionC(uStar, mu)
	if err != nil {
		t.Fatal(err)
	}
	if cc < c {
		t.Errorf("construction c %d below minimal %d", cc, c)
	}
	if nu := Theorem2Nu(cc, mu); nu <= 0 {
		t.Errorf("Theorem 2 ν = %v should be positive at construction c", nu)
	}
	if up := Theorem2UPrime(cc, mu); up <= 1 {
		t.Errorf("Theorem 2 u′ = %v should exceed 1", up)
	}
	if _, err := Theorem2MinC(1.0, mu); err == nil {
		t.Error("u* = 1 should fail")
	}
	if _, err := Theorem2ConstructionC(0.9, mu); err == nil {
		t.Error("u* < 1 should fail")
	}
}

func TestTheorem2CatalogBound(t *testing.T) {
	p := uniformHetero(100, 1.5, 4, 1.5, 1.1)
	b := Theorem2CatalogBound(p)
	if b <= 0 {
		t.Fatalf("bound = %v", b)
	}
	// Linear in n.
	p2 := uniformHetero(200, 1.5, 4, 1.5, 1.1)
	if math.Abs(Theorem2CatalogBound(p2)/b-2) > 1e-9 {
		t.Error("bound not linear in n")
	}
	p3 := uniformHetero(100, 1.5, 4, 1.001, 1.1)
	if Theorem2CatalogBound(p3) >= b {
		t.Error("bound should shrink as u* approaches 1")
	}
}

func TestDirectStripes(t *testing.T) {
	// c·u_b − 4µ⁴ with u_b=0.5, c=40, µ=1: 20−4 = 16.
	if got := DirectStripes(0.5, 40, 1); got != 16 {
		t.Errorf("DirectStripes = %d, want 16", got)
	}
	if got := DirectStripes(0.05, 40, 1); got != 0 {
		t.Errorf("tiny upload should give 0 direct stripes, got %d", got)
	}
}

func TestReservationNeed(t *testing.T) {
	if got := ReservationNeed(0.5, 1.2); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("ReservationNeed = %v, want 1.2", got)
	}
}

func TestNewHeteroPlan(t *testing.T) {
	// Mixed population: 30% poor (0.5), 70% rich (2.5); storage proportional.
	n := 100
	us := make([]float64, n)
	ds := make([]float64, n)
	for i := range us {
		if i < 30 {
			us[i] = 0.5
			ds[i] = 1.25
		} else {
			us[i] = 2.5
			ds[i] = 6.25
		}
	}
	p := HeteroParams{Uploads: us, Storage: ds, UStar: 1.5, Mu: 1.05, Duration: 100}
	plan, err := NewHeteroPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.C <= 0 || plan.K <= 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	if plan.Deficit1 <= 0 || plan.DeficitUStar <= plan.Deficit1 {
		t.Errorf("deficits wrong: ∆(1)=%v ∆(u*)=%v", plan.Deficit1, plan.DeficitUStar)
	}
	if !plan.NecessaryOK {
		t.Error("necessary condition should hold: u=1.9 > 1 + 0.15")
	}
	if !plan.Compensatable {
		t.Error("rich boxes have ample spare capacity")
	}
	if _, err := NewHeteroPlan(HeteroParams{}); err == nil {
		t.Error("invalid params should fail")
	}
}
