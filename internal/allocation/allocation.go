// Package allocation implements the paper's random video allocation
// schemes (Section 2.1): each of the m·c stripes is replicated k times
// onto boxes, either through a uniformly random permutation of the d·n·c
// replica slots (exactly balanced: every box stores exactly its d·c
// replicas) or through independent draws proportional to storage capacity
// (simpler but load-unbalanced; the paper requires c = Ω(log n) for it).
package allocation

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/video"
)

// Allocation records which boxes statically store which stripe replicas.
type Allocation struct {
	cat video.Catalog
	// ByStripe[s] lists the boxes storing a replica of stripe s. A box may
	// appear more than once only in independent allocations.
	ByStripe [][]int32
	// ByBox[b] lists the stripes stored by box b.
	ByBox [][]video.StripeID
	// Overflow counts independent-allocation replicas that fell into an
	// already-full box (and were therefore dropped, per the paper's note
	// that the process stops on a full box). Always 0 for permutations.
	Overflow int
}

// Catalog returns the catalog this allocation stores.
func (a *Allocation) Catalog() video.Catalog { return a.cat }

// NumBoxes returns the number of boxes.
func (a *Allocation) NumBoxes() int { return len(a.ByBox) }

// Replicas returns the number of stored replicas of stripe s.
func (a *Allocation) Replicas(s video.StripeID) int { return len(a.ByStripe[s]) }

// Stores reports whether box b stores stripe s.
func (a *Allocation) Stores(b int, s video.StripeID) bool {
	for _, bb := range a.ByStripe[s] {
		if int(bb) == b {
			return true
		}
	}
	return false
}

// Permutation builds a random permutation allocation: k replicas per
// stripe, slotsPerBox[b] replica slots on box b, with
// Σ slotsPerBox == k · m · c. Every slot is filled, so box loads are exact.
func Permutation(rng *stats.RNG, cat video.Catalog, slotsPerBox []int, k int) (*Allocation, error) {
	if k < 1 {
		return nil, fmt.Errorf("allocation: k=%d must be >= 1", k)
	}
	totalSlots := 0
	for b, s := range slotsPerBox {
		if s < 0 {
			return nil, fmt.Errorf("allocation: box %d has negative slots", b)
		}
		totalSlots += s
	}
	replicas := k * cat.NumStripes()
	if totalSlots != replicas {
		return nil, fmt.Errorf("allocation: %d slots != k·m·c = %d replicas (k=%d, m=%d, c=%d)",
			totalSlots, replicas, k, cat.M, cat.C)
	}
	// Slot i belongs to the box whose cumulative slot range contains i;
	// replica j (of stripe j/k) lands in slot perm[j].
	slotOwner := make([]int32, totalSlots)
	pos := 0
	for b, s := range slotsPerBox {
		for i := 0; i < s; i++ {
			slotOwner[pos] = int32(b)
			pos++
		}
	}
	perm := rng.Perm(totalSlots)
	a := &Allocation{
		cat:      cat,
		ByStripe: make([][]int32, cat.NumStripes()),
		ByBox:    make([][]video.StripeID, len(slotsPerBox)),
	}
	for j := 0; j < replicas; j++ {
		s := video.StripeID(j / k)
		b := slotOwner[perm[j]]
		a.ByStripe[s] = append(a.ByStripe[s], b)
		a.ByBox[b] = append(a.ByBox[b], s)
	}
	return a, nil
}

// HomogeneousPermutation is the common case: n boxes with d videos of
// storage each (d·c replica slots), catalog size m = d·n/k. It derives m
// from (n, d, k) and returns the allocation together with its catalog.
func HomogeneousPermutation(rng *stats.RNG, n, d, c, t, k int) (*Allocation, video.Catalog, error) {
	if k < 1 || (d*n)%k != 0 {
		return nil, video.Catalog{}, fmt.Errorf("allocation: d·n=%d not divisible by k=%d", d*n, k)
	}
	m := d * n / k
	cat, err := video.NewCatalog(m, c, t)
	if err != nil {
		return nil, video.Catalog{}, err
	}
	slots := make([]int, n)
	for i := range slots {
		slots[i] = d * c
	}
	a, err := Permutation(rng, cat, slots, k)
	return a, cat, err
}

// Independent builds a random independent allocation: each of the k
// replicas of each stripe picks a box with probability proportional to
// that box's slot capacity. Replicas landing on a box that is already full
// are dropped and counted in Overflow — the failure mode the paper's
// c = Ω(log n) requirement controls (experiment E8).
func Independent(rng *stats.RNG, cat video.Catalog, slotsPerBox []int, k int) (*Allocation, error) {
	if k < 1 {
		return nil, fmt.Errorf("allocation: k=%d must be >= 1", k)
	}
	n := len(slotsPerBox)
	weights := make([]float64, n)
	total := 0
	for b, s := range slotsPerBox {
		if s < 0 {
			return nil, fmt.Errorf("allocation: box %d has negative slots", b)
		}
		weights[b] = float64(s)
		total += s
	}
	if total == 0 {
		return nil, fmt.Errorf("allocation: no storage slots at all")
	}
	a := &Allocation{
		cat:      cat,
		ByStripe: make([][]int32, cat.NumStripes()),
		ByBox:    make([][]video.StripeID, n),
	}
	used := make([]int, n)
	for s := 0; s < cat.NumStripes(); s++ {
		for r := 0; r < k; r++ {
			b := rng.WeightedChoice(weights)
			if used[b] >= slotsPerBox[b] {
				a.Overflow++
				continue
			}
			used[b]++
			a.ByStripe[s] = append(a.ByStripe[s], int32(b))
			a.ByBox[b] = append(a.ByBox[b], video.StripeID(s))
		}
	}
	return a, nil
}

// FullReplication builds the sourcing-only baseline in the spirit of
// Push-to-Peer (Suh et al.): the catalog is small enough that every box
// stores a slice of every video; here, at stripe granularity, the replicas
// of every stripe are spread round-robin over all boxes. It requires
// m·c·k ≤ Σ slots like any allocation, and represents the "each box stores
// a constant portion of each video" regime (m = O(d/ℓ)).
func FullReplication(cat video.Catalog, slotsPerBox []int, k int) (*Allocation, error) {
	if k < 1 {
		return nil, fmt.Errorf("allocation: k=%d must be >= 1", k)
	}
	n := len(slotsPerBox)
	a := &Allocation{
		cat:      cat,
		ByStripe: make([][]int32, cat.NumStripes()),
		ByBox:    make([][]video.StripeID, n),
	}
	used := make([]int, n)
	next := 0
	for s := 0; s < cat.NumStripes(); s++ {
		for r := 0; r < k; r++ {
			placed := false
			for tries := 0; tries < n; tries++ {
				b := next % n
				next++
				if used[b] < slotsPerBox[b] {
					used[b]++
					a.ByStripe[s] = append(a.ByStripe[s], int32(b))
					a.ByBox[b] = append(a.ByBox[b], video.StripeID(s))
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("allocation: storage exhausted at stripe %d replica %d", s, r)
			}
		}
	}
	return a, nil
}

// LoadStats summarizes per-box replica loads and per-stripe replica counts.
type LoadStats struct {
	BoxLoad    stats.Summary // replicas stored per box
	StripeLoad stats.Summary // replicas stored per stripe
	MaxBoxLoad int
	MinStripes int // minimum replica count over stripes (0 = a stripe vanished)
	Overflow   int
}

// Stats computes load statistics for the allocation.
func (a *Allocation) Stats() LoadStats {
	boxLoads := make([]float64, len(a.ByBox))
	maxLoad := 0
	for b := range a.ByBox {
		l := len(a.ByBox[b])
		boxLoads[b] = float64(l)
		if l > maxLoad {
			maxLoad = l
		}
	}
	stripeLoads := make([]float64, len(a.ByStripe))
	minStripes := -1
	for s := range a.ByStripe {
		l := len(a.ByStripe[s])
		stripeLoads[s] = float64(l)
		if minStripes < 0 || l < minStripes {
			minStripes = l
		}
	}
	return LoadStats{
		BoxLoad:    stats.Summarize(boxLoads),
		StripeLoad: stats.Summarize(stripeLoads),
		MaxBoxLoad: maxLoad,
		MinStripes: minStripes,
		Overflow:   a.Overflow,
	}
}
