// Package expander audits the expansion property that Theorem 1's proof
// demands of a random allocation: for any multiset σ of stripe requests,
// the boxes storing those stripes must jointly have enough upload slots
// (Lemma 1's Hall condition restricted to sourcing, i.e. with empty
// caches: U_B(σ) ≥ |σ|/c, in slots Σ slots(B(σ)) ≥ |σ|).
//
// Checking all multisets is exponential; the auditor combines three
// practical probes:
//
//   - per-video probes: every video's stripe set at saturation demand,
//   - random subset probes: uniform stripe subsets at adversarial
//     multiplicity,
//   - greedy overlap probes: grow stripe sets that maximize server-set
//     overlap, the shape a min cut actually has.
//
// A violation found here is a genuine obstruction certificate for the
// sourcing-only system and a strong warning for the full system; absence
// of violations is a (one-sided) screening, cheaper than simulation.
package expander

import (
	"repro/internal/allocation"
	"repro/internal/stats"
	"repro/internal/video"
)

// Finding is one probed stripe multiset and its capacity margin.
type Finding struct {
	Stripes  []video.StripeID // distinct stripes probed
	Requests int              // multiset size |σ| (slots demanded)
	Boxes    int              // |B(σ)|
	Slots    int64            // Σ upload slots over B(σ)
	// Ratio is Slots/Requests: below 1 the probe is a Hall violation.
	Ratio float64
}

// Violated reports whether this finding is a genuine obstruction.
func (f Finding) Violated() bool { return f.Ratio < 1 }

// Audit is the aggregate result.
type Audit struct {
	Probes     int
	Violations int
	Worst      Finding // the lowest-ratio probe
}

// Auditor probes one allocation against per-box upload slot capacities.
type Auditor struct {
	alloc *allocation.Allocation
	slots []int64
	// maxRequests caps the multiset size at the system-wide concurrent
	// request bound n·c.
	maxRequests int
}

// New builds an auditor. capSlots[b] is box b's upload capacity in stripe
// slots (⌊u_b·c⌋).
func New(alloc *allocation.Allocation, capSlots []int64) *Auditor {
	cat := alloc.Catalog()
	return &Auditor{
		alloc:       alloc,
		slots:       capSlots,
		maxRequests: alloc.NumBoxes() * cat.C,
	}
}

// measure computes the finding for a distinct stripe set at a total
// request multiplicity spread evenly (the adversary can demand each
// distinct stripe up to n times; we clamp to the system bound).
func (a *Auditor) measure(stripes []video.StripeID, requests int) Finding {
	if requests > a.maxRequests {
		requests = a.maxRequests
	}
	seen := make(map[int32]struct{})
	var slots int64
	for _, s := range stripes {
		for _, b := range a.alloc.ByStripe[s] {
			if _, ok := seen[b]; !ok {
				seen[b] = struct{}{}
				slots += a.slots[b]
			}
		}
	}
	f := Finding{
		Stripes:  stripes,
		Requests: requests,
		Boxes:    len(seen),
		Slots:    slots,
	}
	if requests > 0 {
		f.Ratio = float64(slots) / float64(requests)
	} else {
		f.Ratio = 1
	}
	return f
}

// maxMultiplicity bounds how many concurrent requests one distinct stripe
// can receive: one per box.
func (a *Auditor) maxMultiplicity() int { return a.alloc.NumBoxes() }

// AuditVideos probes every video's full stripe set at saturation (every
// box demands the video: c stripes × one slot per viewer, clamped).
func (a *Auditor) AuditVideos() Audit {
	cat := a.alloc.Catalog()
	audit := Audit{Worst: Finding{Ratio: 1e18}}
	for m := 0; m < cat.M; m++ {
		stripes := make([]video.StripeID, cat.C)
		for i := 0; i < cat.C; i++ {
			stripes[i] = cat.Stripe(video.ID(m), i)
		}
		f := a.measure(stripes, cat.C*a.maxMultiplicity())
		audit.absorb(f)
	}
	return audit
}

// AuditRandom probes `probes` uniformly random distinct-stripe subsets,
// each demanded at full multiplicity.
func (a *Auditor) AuditRandom(rng *stats.RNG, probes, maxDistinct int) Audit {
	cat := a.alloc.Catalog()
	total := cat.NumStripes()
	if maxDistinct <= 0 || maxDistinct > total {
		maxDistinct = total
	}
	audit := Audit{Worst: Finding{Ratio: 1e18}}
	for p := 0; p < probes; p++ {
		i1 := 1 + rng.Intn(maxDistinct)
		idxs := rng.SampleWithoutReplacement(total, i1)
		stripes := make([]video.StripeID, i1)
		for j, s := range idxs {
			stripes[j] = video.StripeID(s)
		}
		f := a.measure(stripes, i1*a.maxMultiplicity())
		audit.absorb(f)
	}
	return audit
}

// AuditGreedy runs `probes` greedy min-cut searches: start from the
// stripe whose servers have the least capacity, repeatedly add the stripe
// that increases server capacity the least (maximum overlap), measuring
// at every prefix.
func (a *Auditor) AuditGreedy(rng *stats.RNG, probes, depth int) Audit {
	cat := a.alloc.Catalog()
	total := cat.NumStripes()
	if depth <= 0 || depth > total {
		depth = total
	}
	audit := Audit{Worst: Finding{Ratio: 1e18}}
	for p := 0; p < probes; p++ {
		// Random start biased toward weak stripes: sample a few and keep
		// the weakest.
		best := video.StripeID(rng.Intn(total))
		bestSlots := a.stripeSlots(best)
		for tries := 0; tries < 4; tries++ {
			cand := video.StripeID(rng.Intn(total))
			if s := a.stripeSlots(cand); s < bestSlots {
				best, bestSlots = cand, s
			}
		}
		inSet := make(map[video.StripeID]struct{}, depth)
		boxes := make(map[int32]struct{})
		var slots int64
		stripes := make([]video.StripeID, 0, depth)
		add := func(s video.StripeID) {
			inSet[s] = struct{}{}
			stripes = append(stripes, s)
			for _, b := range a.alloc.ByStripe[s] {
				if _, ok := boxes[b]; !ok {
					boxes[b] = struct{}{}
					slots += a.slots[b]
				}
			}
		}
		add(best)
		for len(stripes) < depth {
			// Scan a sample of candidates for the minimal capacity increase.
			var pick video.StripeID = -1
			var pickCost int64 = 1 << 62
			for tries := 0; tries < 16; tries++ {
				cand := video.StripeID(rng.Intn(total))
				if _, dup := inSet[cand]; dup {
					continue
				}
				var cost int64
				for _, b := range a.alloc.ByStripe[cand] {
					if _, ok := boxes[b]; !ok {
						cost += a.slots[b]
					}
				}
				if cost < pickCost {
					pick, pickCost = cand, cost
				}
			}
			if pick < 0 {
				break
			}
			add(pick)
			f := Finding{
				Stripes:  append([]video.StripeID(nil), stripes...),
				Requests: min(len(stripes)*a.maxMultiplicity(), a.maxRequests),
				Boxes:    len(boxes),
				Slots:    slots,
			}
			f.Ratio = float64(f.Slots) / float64(f.Requests)
			audit.absorb(f)
		}
	}
	return audit
}

func (a *Auditor) stripeSlots(s video.StripeID) int64 {
	var slots int64
	seen := make(map[int32]struct{})
	for _, b := range a.alloc.ByStripe[s] {
		if _, ok := seen[b]; !ok {
			seen[b] = struct{}{}
			slots += a.slots[b]
		}
	}
	return slots
}

// Full runs all three probe families and merges the results.
func (a *Auditor) Full(rng *stats.RNG, randomProbes, greedyProbes int) Audit {
	audit := a.AuditVideos()
	audit.merge(a.AuditRandom(rng, randomProbes, 0))
	audit.merge(a.AuditGreedy(rng, greedyProbes, 0))
	return audit
}

func (audit *Audit) absorb(f Finding) {
	audit.Probes++
	if f.Violated() {
		audit.Violations++
	}
	if f.Ratio < audit.Worst.Ratio {
		audit.Worst = f
	}
}

func (audit *Audit) merge(other Audit) {
	audit.Probes += other.Probes
	audit.Violations += other.Violations
	if other.Worst.Ratio < audit.Worst.Ratio {
		audit.Worst = other.Worst
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
