package vod

// The benchmark harness: one Benchmark per experiment in the DESIGN.md
// index (each regenerates its table/figure and reports headline numbers as
// custom metrics), plus micro-benchmarks and ablations of the design
// choices called out in DESIGN.md §7.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkE5 -v   (-v prints the tables)

import (
	"runtime"
	"strconv"
	"testing"

	"repro/internal/allocation"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/expander"
	"repro/internal/experiments"
	"repro/internal/maxflow"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/trace"
)

// benchExperiment runs one experiment per iteration and logs its tables.
func benchExperiment(b *testing.B, id string) {
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Seed: 42, Quick: true}
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = e.Run(opts)
	}
	b.Log("\n" + res.Text())
}

func BenchmarkE1Threshold(b *testing.B)              { benchExperiment(b, "E1") }
func BenchmarkE2CatalogLinearity(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3CatalogVsU(b *testing.B)             { benchExperiment(b, "E3") }
func BenchmarkE4ObstructionProbability(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5SwarmGrowth(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE6HeteroThreshold(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7StartupDelay(b *testing.B)           { benchExperiment(b, "E7") }
func BenchmarkE8AllocationBalance(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9SourcingBaseline(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Impossibility(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11MatchingEnginesTable(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12ProtocolGap(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE13StrategyAblation(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14ExpanderAudit(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15PopulationScaling(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16UtilizationSweep(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkT1Planner(b *testing.B)                { benchExperiment(b, "T1") }

// --- Micro-benchmarks: max-flow solvers (E11 wall-clock half) ---

// benchFlowNetwork builds a bipartite-shaped flow instance: L requests,
// R servers, degree k, server capacity cap.
func benchFlowNetwork(seed uint64, l, r, k int, capacity int64) (*maxflow.Network, int, int) {
	rng := stats.NewRNG(seed)
	g := maxflow.NewNetwork(2 + l + r)
	src, sink := 0, 1
	for i := 0; i < l; i++ {
		g.AddEdge(src, 2+i, 1)
		for _, srv := range rng.SampleWithoutReplacement(r, k) {
			g.AddEdge(2+i, 2+l+srv, 1)
		}
	}
	for j := 0; j < r; j++ {
		g.AddEdge(2+l+j, sink, capacity)
	}
	return g, src, sink
}

func benchSolver(b *testing.B, mk func() maxflow.Solver) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, s, t := benchFlowNetwork(uint64(i), 2000, 500, 4, 5)
		solver := mk()
		b.StartTimer()
		flow := solver.MaxFlow(g, s, t)
		if flow <= 0 {
			b.Fatal("no flow")
		}
	}
}

func BenchmarkMaxflowDinic(b *testing.B) {
	benchSolver(b, func() maxflow.Solver { return &maxflow.Dinic{} })
}

func BenchmarkMaxflowEdmondsKarp(b *testing.B) {
	benchSolver(b, func() maxflow.Solver { return &maxflow.EdmondsKarp{} })
}

func BenchmarkMaxflowPushRelabel(b *testing.B) {
	benchSolver(b, func() maxflow.Solver { return &maxflow.PushRelabel{} })
}

// --- Ablation: warm-started incremental matching vs cold recompute ---

type benchAdj struct{ neighbors [][]int32 }

func (a *benchAdj) VisitServers(l int, fn func(int) bool) {
	for _, r := range a.neighbors[l] {
		if !fn(int(r)) {
			return
		}
	}
}

// BeginServers/NextServer implement bipartite.CursorAdjacency so matcher
// benchmarks exercise the same cursor path the engine adjacencies use.
func (a *benchAdj) BeginServers(l int, c *bipartite.Cursor) {
	c.Left = int32(l)
	c.Index = 0
}

func (a *benchAdj) NextServer(c *bipartite.Cursor) int {
	ns := a.neighbors[c.Left]
	if int(c.Index) >= len(ns) {
		return -1
	}
	r := ns[c.Index]
	c.Index++
	return int(r)
}

func (a *benchAdj) CanServe(l, r int) bool {
	for _, x := range a.neighbors[l] {
		if int(x) == r {
			return true
		}
	}
	return false
}

func benchMatcherChurn(b *testing.B, warm bool) {
	const nL, nR, deg = 1200, 300, 4
	rng := stats.NewRNG(7)
	adj := &benchAdj{neighbors: make([][]int32, nL)}
	caps := make([]int64, nR)
	for r := range caps {
		caps[r] = 5
	}
	for l := range adj.neighbors {
		for _, r := range rng.SampleWithoutReplacement(nR, deg) {
			adj.neighbors[l] = append(adj.neighbors[l], int32(r))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	m := bipartite.NewMatcher(caps)
	for l := 0; l < nL; l++ {
		m.AddLeft(l)
	}
	m.AugmentAll(adj)
	churn := stats.NewRNG(11)
	for i := 0; i < b.N; i++ {
		if warm {
			// Churn 5% of requests and re-augment incrementally.
			for j := 0; j < nL/20; j++ {
				l := churn.Intn(nL)
				if m.Active(l) {
					m.RemoveLeft(l)
					m.AddLeft(l)
				}
			}
			m.AugmentAll(adj)
		} else {
			// Cold: rebuild the matching from scratch.
			cold := bipartite.NewMatcher(caps)
			for l := 0; l < nL; l++ {
				cold.AddLeft(l)
			}
			cold.AugmentAll(adj)
		}
	}
}

func BenchmarkMatcherWarmIncremental(b *testing.B) { benchMatcherChurn(b, true) }
func BenchmarkMatcherColdRecompute(b *testing.B)   { benchMatcherChurn(b, false) }

// --- Blocking-flow batch augmentation vs per-root serial reference ---

// benchAugmentAll is the high-utilization long-path crowd: the demand
// slightly oversubscribes the slot capacity at sparse degree, so free
// slots are rare, augmenting paths must cascade through many full
// servers, and a residue of requests stays unmatched — the E5 µ=3 flash
// crowd at matcher level. The serial reference pays one full failed BFS
// per unmatched root on every call (and re-walks them each retry pass);
// batch phases settle the whole frontier with one layered BFS. Each
// iteration churns 5% of the requests and re-augments; both modes see
// the identical instance and churn stream and end every iteration at
// the same (maximum) matching cardinality.
func benchAugmentAll(b *testing.B, serial bool) {
	const nR, capR, deg = 400, 4, 3
	const nL = nR * capR * 101 / 100
	rng := stats.NewRNG(23)
	adj := &benchAdj{neighbors: make([][]int32, nL)}
	caps := make([]int64, nR)
	for r := range caps {
		caps[r] = capR
	}
	for l := range adj.neighbors {
		for _, r := range rng.SampleWithoutReplacement(nR, deg) {
			adj.neighbors[l] = append(adj.neighbors[l], int32(r))
		}
	}
	m := bipartite.NewMatcher(caps)
	m.SerialAugment = serial
	for l := 0; l < nL; l++ {
		m.AddLeft(l)
	}
	m.AugmentAll(adj)
	churn := stats.NewRNG(29)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < nL/20; j++ {
			l := churn.Intn(nL)
			if m.Active(l) {
				m.RemoveLeft(l)
				m.AddLeft(l)
			}
		}
		m.AugmentAll(adj)
	}
	b.ReportMetric(float64(m.MatchedCount()), "matched")
}

func BenchmarkAugmentAllBatch(b *testing.B)  { benchAugmentAll(b, false) }
func BenchmarkAugmentAllSerial(b *testing.B) { benchAugmentAll(b, true) }

// --- Ablation: greedy vs optimal matcher on identical instances ---

func BenchmarkMatcherGreedy(b *testing.B) {
	const nL, nR, deg = 1200, 300, 4
	rng := stats.NewRNG(7)
	adj := &benchAdj{neighbors: make([][]int32, nL)}
	caps := make([]int64, nR)
	lefts := make([]int, nL)
	for r := range caps {
		caps[r] = 5
	}
	for l := range adj.neighbors {
		lefts[l] = l
		for _, r := range rng.SampleWithoutReplacement(nR, deg) {
			adj.neighbors[l] = append(adj.neighbors[l], int32(r))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := bipartite.NewGreedy(caps)
		g.Match(adj, lefts)
	}
}

// --- Allocation benchmarks ---

func BenchmarkAllocationPermutation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := allocation.HomogeneousPermutation(stats.NewRNG(uint64(i)), 1000, 4, 8, 100, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocationIndependent(b *testing.B) {
	cat := Catalog{M: 500, C: 8, T: 100}
	slots := make([]int, 1000)
	for i := range slots {
		slots[i] = 4 * 8
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := allocation.Independent(stats.NewRNG(uint64(i)), cat, slots, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulation round throughput ---

func benchSimRounds(b *testing.B, n int, strategy core.Strategy) {
	sys, err := New(Spec{
		Boxes:    n,
		Upload:   2.0,
		Storage:  2,
		Stripes:  4,
		Replicas: 4,
		Duration: 50,
		Growth:   1.2,
		Seed:     3,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = strategy // strategy fixed to preload through the public API
	gen := NewZipfWorkload(9, 0.3, 0.9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(gen); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sys.View().ActiveRequests()), "active_requests")
}

func BenchmarkSimRound100(b *testing.B)  { benchSimRounds(b, 100, core.StrategyPreload) }
func BenchmarkSimRound500(b *testing.B)  { benchSimRounds(b, 500, core.StrategyPreload) }
func BenchmarkSimRound2000(b *testing.B) { benchSimRounds(b, 2000, core.StrategyPreload) }

// sweepArrivals emits a bounded number of demands per round, cycling boxes
// and videos round-robin without ever scanning the population, so generator
// cost (O(arrivals)) never masks engine cost at large n.
type sweepArrivals struct {
	perRound  int
	nextBox   int
	nextVideo int
	out       []Demand // reused across rounds (the engine consumes it before the next Next)
}

func (g *sweepArrivals) Next(v *View, _ int) []Demand {
	cat := v.Catalog()
	n := v.NumBoxes()
	out := g.out[:0]
	for tries := 0; tries < 2*g.perRound && len(out) < g.perRound; tries++ {
		box := g.nextBox % n
		g.nextBox++
		if !v.BoxIdle(box) {
			continue
		}
		vid := VideoID(g.nextVideo % cat.M)
		g.nextVideo++
		if v.SwarmAllowance(vid) <= 0 {
			continue
		}
		out = append(out, Demand{Box: box, Video: vid})
	}
	g.out = out
	return out
}

// benchStepBounded drives Step at population n with an arrival rate that
// is *independent* of n (fixed demands/round), so the live request set —
// and therefore, with fully output-sensitive rounds, the per-round cost —
// is the same at every population size. shards > 1 runs the sharded
// round engine (bit-identical results, different wall-clock).
func benchStepBounded(b *testing.B, n, perRound, shards int) {
	// At 10⁷ boxes pre-registering ~Shards×n sharded right records up
	// front would dominate the benchmark's memory; every smaller bench
	// keeps the pre-registration default that production configs use.
	lazy := n >= 10_000_000
	sys, err := New(Spec{
		Boxes: n, Upload: 2.0, Storage: 2, Stripes: 4, Replicas: 4,
		Duration: 50, Growth: 1.2, Seed: 17, Shards: shards,
		LazyShardRights: lazy,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	gen := &sweepArrivals{perRound: perRound}
	// Warm past the first cache-window expiry so measured rounds carry
	// steady-state expiry and retirement work.
	for r := 0; r < 60; r++ {
		if _, err := sys.Step(gen); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(gen); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sys.View().ActiveRequests()), "active_requests")
}

// BenchmarkStepLargeSwarm tracks the availability/scheduling hot path at
// production scale: 100k boxes, a ~50k-video catalog (200k stripes), and
// sustained arrivals. Per-round cost must scale with live cache entries and
// in-flight requests, not with catalog size or the historical peak slot
// count.
func BenchmarkStepLargeSwarm(b *testing.B) { benchStepBounded(b, 100_000, 100, 0) }

// BenchmarkStepMillionBoxes is BenchmarkStepLargeSwarm at 10× the
// population with the *same* bounded live workload (100 arrivals/round).
// With event-driven invalidation and the idle-box index the round loop is
// fully output-sensitive, so ns/op here must stay within ~2× of the
// large-swarm benchmark — round cost no longer scales with n.
func BenchmarkStepMillionBoxes(b *testing.B) { benchStepBounded(b, 1_000_000, 100, 0) }

// BenchmarkStepTenMillionBoxes pushes the bounded workload to 10⁷ boxes
// (an ~5M-video catalog, 20M stripes) on the sharded round engine. This
// is the one benchmark that defaults Shards to GOMAXPROCS — seeded
// experiments and the other benches keep the serial engine unless asked
// — so it measures what the engine does with every core the host gives
// it while the output stays bit-identical to the serial run.
func BenchmarkStepTenMillionBoxes(b *testing.B) {
	benchStepBounded(b, 10_000_000, 100, runtime.GOMAXPROCS(0))
}

// BenchmarkStepShardScaling holds one contended workload fixed (10⁶
// boxes, 1000 arrivals/round — 10× the bounded benches, so matching and
// invalidation dominate the round) and sweeps the shard count. shards=1
// is the serial engine; the ratios are the measured scaling curve, and
// on a single-core host they are pure coordination overhead.
func BenchmarkStepShardScaling(b *testing.B) {
	for _, s := range []int{1, 2, 4, 8} {
		b.Run("shards="+strconv.Itoa(s), func(b *testing.B) {
			benchStepBounded(b, 1_000_000, 1000, s)
		})
	}
}

// --- Protocol and netsim benchmarks ---

func BenchmarkProtocolProposalRound(b *testing.B) {
	rng := stats.NewRNG(13)
	inst := protocol.Instance{Caps: make([]int64, 200)}
	for i := range inst.Caps {
		inst.Caps[i] = 4
	}
	for r := 0; r < 800; r++ {
		var cand []int32
		for _, s := range rng.SampleWithoutReplacement(200, 4) {
			cand = append(cand, int32(s))
		}
		inst.Candidates = append(inst.Candidates, cand)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := protocol.Run(inst, netsim.Config{BaseLatency: 1, Jitter: 0.3, Seed: uint64(i)})
		if res.Matched == 0 {
			b.Fatal("nothing matched")
		}
	}
}

// --- Expander audit ---

func BenchmarkExpanderAudit(b *testing.B) {
	alloc, _, err := allocation.HomogeneousPermutation(stats.NewRNG(3), 500, 4, 8, 100, 8)
	if err != nil {
		b.Fatal(err)
	}
	caps := make([]int64, 500)
	for i := range caps {
		caps[i] = 12
	}
	aud := expander.New(alloc, caps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aud.Full(stats.NewRNG(uint64(i)), 100, 10)
	}
}

// --- Trace record/replay ---

func BenchmarkTraceRecordReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := New(Spec{Boxes: 100, Upload: 2, Storage: 2, Stripes: 4,
			Replicas: 4, Duration: 20, Growth: 1.2, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rec := trace.NewRecorder(NewZipfWorkload(uint64(i), 0.3, 0.9))
		b.StartTimer()
		if _, err := sys.Run(rec, 60); err != nil {
			b.Fatal(err)
		}
		sys2, err := New(Spec{Boxes: 100, Upload: 2, Storage: 2, Stripes: 4,
			Replicas: 4, Duration: 20, Growth: 1.2, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys2.Run(trace.NewReplayer(&rec.Trace), 60); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Netsim event throughput ---

type benchEcho struct{}

func (benchEcho) OnTimer(ctx *netsim.Context, kind int) {
	ctx.Send(netsim.NodeID(kind), struct{}{})
}

func (benchEcho) OnMessage(ctx *netsim.Context, msg netsim.Message) {}

func BenchmarkNetsimEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := netsim.New(netsim.Config{BaseLatency: 1, Jitter: 0.5, Seed: uint64(i)})
		const nodes = 200
		for n := 0; n < nodes; n++ {
			net.AddNode(benchEcho{})
		}
		for n := 0; n < nodes; n++ {
			for k := 0; k < 10; k++ {
				net.Timer(netsim.NodeID(n), float64(k), (n+k)%nodes)
			}
		}
		b.StartTimer()
		net.RunAll(nodes * 25)
	}
}

// --- Heterogeneous relayed round throughput ---

func BenchmarkRelayedSimRound(b *testing.B) {
	pop := Bimodal(200, 0.7, 3.0, 0.5, 2.0)
	sys, err := New(Spec{
		Boxes:    200,
		Uploads:  pop.Uploads,
		Storages: pop.Storage,
		UStar:    1.5,
		Growth:   1.05,
		Duration: 50,
		Replicas: 3,
		Seed:     5,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := NewPoorFirst(1.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(gen); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end flash crowd at several scales ---

func benchFlashCrowd(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := New(Spec{
			Boxes: n, Upload: 2.5, Storage: 2, Stripes: 4, Replicas: 4,
			Duration: 30, Growth: 1.5, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := sys.Run(NewFlashCrowd(0), 60)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed {
			b.Fatal("flash crowd failed at n=" + strconv.Itoa(n))
		}
	}
}

func BenchmarkFlashCrowd64(b *testing.B)  { benchFlashCrowd(b, 64) }
func BenchmarkFlashCrowd256(b *testing.B) { benchFlashCrowd(b, 256) }
