// Package netsim is a deterministic event-driven network simulator: nodes
// exchange messages with configurable latency and jitter, driven by a
// single event heap. It is the substrate for the decentralized matching
// protocol (package protocol, experiment E12) — the paper notes its
// result "does not yield directly a practical distributed algorithm", and
// this pair of packages implements and evaluates one.
//
// Determinism: all latency jitter comes from the seeded RNG, and ties in
// delivery time break by event sequence number, so a simulation is a pure
// function of (seed, node programs).
package netsim

import (
	"container/heap"
	"fmt"

	"repro/internal/stats"
)

// NodeID identifies a node.
type NodeID int32

// Message is a delivered payload.
type Message struct {
	From    NodeID
	To      NodeID
	Payload any
}

// Handler is a node's program. OnMessage runs at each delivery; OnTimer at
// each timer expiry. Both receive a Context for sending and scheduling.
type Handler interface {
	OnMessage(ctx *Context, msg Message)
	OnTimer(ctx *Context, kind int)
}

// Context is the API nodes use during an event callback.
type Context struct {
	net  *Network
	self NodeID
}

// Self returns the node running the callback.
func (c *Context) Self() NodeID { return c.self }

// Now returns the current simulated time.
func (c *Context) Now() float64 { return c.net.now }

// Send delivers payload to dst after the network's sampled latency.
func (c *Context) Send(dst NodeID, payload any) {
	c.net.send(c.self, dst, payload)
}

// SetTimer schedules OnTimer(kind) on this node after delay.
func (c *Context) SetTimer(delay float64, kind int) {
	if delay < 0 {
		panic("netsim: negative timer delay")
	}
	c.net.push(event{at: c.net.now + delay, node: c.self, timer: true, timerKind: kind})
}

// Rand returns the node-visible RNG (shared, deterministic).
func (c *Context) Rand() *stats.RNG { return c.net.rng }

type event struct {
	at        float64
	seq       uint64
	node      NodeID
	timer     bool
	timerKind int
	msg       Message
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Config sets the latency model: delivery takes BaseLatency plus a
// uniform jitter in [0, Jitter).
type Config struct {
	BaseLatency float64
	Jitter      float64
	Seed        uint64
}

// Network is the simulated network.
type Network struct {
	cfg       Config
	rng       *stats.RNG
	nodes     []Handler
	now       float64
	seq       uint64
	events    eventHeap
	sent      int64
	delivered int64
}

// New creates an empty network.
func New(cfg Config) *Network {
	if cfg.BaseLatency < 0 || cfg.Jitter < 0 {
		panic("netsim: negative latency")
	}
	if cfg.BaseLatency == 0 && cfg.Jitter == 0 {
		cfg.BaseLatency = 1 // zero-latency networks livelock trivially
	}
	return &Network{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// AddNode registers a handler and returns its ID.
func (n *Network) AddNode(h Handler) NodeID {
	n.nodes = append(n.nodes, h)
	return NodeID(len(n.nodes) - 1)
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Now returns the current simulated time.
func (n *Network) Now() float64 { return n.now }

// MessagesSent returns the total messages sent so far.
func (n *Network) MessagesSent() int64 { return n.sent }

// MessagesDelivered returns the total messages delivered so far.
func (n *Network) MessagesDelivered() int64 { return n.delivered }

func (n *Network) send(from, to NodeID, payload any) {
	if int(to) < 0 || int(to) >= len(n.nodes) {
		panic(fmt.Sprintf("netsim: send to unknown node %d", to))
	}
	n.sent++
	latency := n.cfg.BaseLatency
	if n.cfg.Jitter > 0 {
		latency += n.rng.Float64() * n.cfg.Jitter
	}
	n.push(event{at: n.now + latency, msg: Message{From: from, To: to, Payload: payload}, node: to})
}

func (n *Network) push(e event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.events, e)
}

// Timer schedules OnTimer(kind) on a node at absolute time `at` (used to
// bootstrap protocols before any message flows).
func (n *Network) Timer(node NodeID, at float64, kind int) {
	if at < n.now {
		panic("netsim: timer in the past")
	}
	n.push(event{at: at, node: node, timer: true, timerKind: kind})
}

// Step processes the next event; it returns false when no events remain.
func (n *Network) Step() bool {
	if n.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&n.events).(event)
	n.now = e.at
	ctx := &Context{net: n, self: e.node}
	if e.timer {
		n.nodes[e.node].OnTimer(ctx, e.timerKind)
	} else {
		n.delivered++
		n.nodes[e.node].OnMessage(ctx, e.msg)
	}
	return true
}

// Run processes events until the queue drains or simulated time exceeds
// `until`. It returns the number of events processed.
func (n *Network) Run(until float64) int {
	processed := 0
	for n.events.Len() > 0 {
		if n.events[0].at > until {
			break
		}
		n.Step()
		processed++
	}
	return processed
}

// RunAll drains every event (use with protocols guaranteed to quiesce).
// maxEvents guards against livelock; it panics when exceeded.
func (n *Network) RunAll(maxEvents int) int {
	processed := 0
	for n.Step() {
		processed++
		if processed > maxEvents {
			panic(fmt.Sprintf("netsim: livelock — more than %d events", maxEvents))
		}
	}
	return processed
}
