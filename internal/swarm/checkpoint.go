package swarm

// Checkpoint serialization. Sizes, entry counters, and the per-video
// expiry queues are written exactly (queues compacted to their live
// suffix — the head offset is memory layout, not behavior); the aggregate
// counters are re-derived on decode. The active-video list is written in
// its exact order: swap-removal makes the order history-dependent, and a
// bit-identical resume must walk BeginRound in the same sequence.

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/video"
)

// EncodeState serializes the tracker's swarm state. Construction
// parameters (m, t, µ) are not written: restore targets a tracker freshly
// built from the same configuration.
func (tr *Tracker) EncodeState(w *ckpt.Writer) {
	w.Int(tr.round)
	w.Int(tr.maxEver)
	w.Ints(tr.sizes)
	w.Ints(tr.prev)
	w.Ints(tr.entered)
	w.I64s(tr.counter)
	for v := range tr.expiry {
		q := &tr.expiry[v]
		w.Ints(q.rounds[q.head:])
	}
	w.Int(len(tr.activeVids))
	for _, v := range tr.activeVids {
		w.Int(int(v))
	}
}

// DecodeState restores state written by EncodeState into a freshly
// constructed tracker for the same catalog.
func (tr *Tracker) DecodeState(r *ckpt.Reader) error {
	tr.round = r.Int()
	tr.maxEver = r.Int()
	sizes := r.Ints()
	prev := r.Ints()
	entered := r.Ints()
	counter := r.I64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(sizes) != tr.m || len(prev) != tr.m || len(entered) != tr.m || len(counter) != tr.m {
		return fmt.Errorf("swarm: checkpoint sized for %d/%d/%d/%d videos, tracker has %d",
			len(sizes), len(prev), len(entered), len(counter), tr.m)
	}
	tr.sizes, tr.prev, tr.entered, tr.counter = sizes, prev, entered, counter
	tr.totalViewers = 0
	tr.activeSwarms = 0
	for _, sz := range sizes {
		tr.totalViewers += sz
		if sz > 0 {
			tr.activeSwarms++
		}
	}
	for v := range tr.expiry {
		tr.expiry[v] = memberQueue{rounds: r.Ints()}
		if len(tr.expiry[v].rounds) != sizes[v] {
			return fmt.Errorf("swarm: video %d expiry queue has %d members, size says %d",
				v, len(tr.expiry[v].rounds), sizes[v])
		}
	}
	nActive := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nActive < 0 || nActive > tr.m {
		return fmt.Errorf("swarm: checkpoint active list length %d out of range", nActive)
	}
	tr.activeVids = make([]video.ID, nActive)
	for i := range tr.pos {
		tr.pos[i] = -1
	}
	for i := range tr.activeVids {
		v := r.Int()
		if v < 0 || v >= tr.m {
			return fmt.Errorf("swarm: checkpoint active list holds invalid video %d", v)
		}
		tr.activeVids[i] = video.ID(v)
		tr.pos[v] = int32(i)
	}
	return r.Err()
}
