package experiments

import (
	"repro/internal/adversary"
	"repro/internal/allocation"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/video"
)

func init() {
	register(Experiment{
		ID:   "E10",
		Name: "impossibility",
		Claim: "for u < 1 any catalog beyond d_max/ℓ = d·c is defeated: some box " +
			"stores nothing of some video and the avoid-possession sequence " +
			"overloads the system (§1.3)",
		Run: runE10,
	})
}

func runE10(o Options) Result {
	n := pick(o, 16, 32)
	d, c, T := 2, 4, pick(o, 16, 24)
	u, mu := 0.5, 2.0
	rounds := pick(o, 30, 60)
	capM := d * c // the paper's ceiling d_max/ℓ with ℓ = 1/c
	ms := pick(o, []int{2, 8, 16}, []int{1, 2, 4, 6, 8, 10, 12, 16, 24})

	tbl := report.New("E10: u < 1 catalog ceiling (covering allocation)",
		"m", "m vs cap", "defeated", "demand/capacity")
	fig := report.NewFigure("E10: defeat vs catalog size at u = 0.5", "m", "defeated (1) / served (0)")
	series := fig.AddSeries("avoid-possession adversary")

	uploads := make([]float64, n)
	for i := range uploads {
		uploads[i] = u
	}
	for _, m := range ms {
		k := d * n / m
		if k < 1 {
			k = 1
		}
		cat, err := video.NewCatalog(m, c, T)
		if err != nil {
			continue
		}
		slots := make([]int, n)
		total := k * m * c
		base, rem := total/n, total%n
		for i := range slots {
			slots[i] = base
			if i < rem {
				slots[i]++
			}
		}
		// Covering allocation: round-robin guarantees every box stores some
		// data of every video exactly when m ≤ d·c — the premise of the
		// impossibility argument.
		alloc, err := allocation.FullReplication(cat, slots, k)
		if err != nil {
			tbl.AddRow(report.Cell(m), "", "alloc error: "+err.Error(), "")
			continue
		}
		sys, err := core.NewSystem(core.Config{Alloc: alloc, Uploads: uploads, Mu: mu})
		if err != nil {
			tbl.AddRow(report.Cell(m), "", "config error: "+err.Error(), "")
			continue
		}
		rep, err := sys.Run(&adversary.AvoidPossession{}, rounds)
		if err != nil {
			tbl.AddRow(report.Cell(m), "", "run error: "+err.Error(), "")
			continue
		}
		rel := "≤ cap"
		if m > capM {
			rel = "> cap"
		}
		val := 0.0
		verdict := "served"
		if rep.Failed {
			verdict = "DEFEATED"
			val = 1
		}
		series.Add(float64(m), val)
		// Aggregate demand/capacity if every box watched an unstored video.
		tbl.AddRowValues(m, rel, verdict, 1/u)
	}
	tbl.AddNote("n=%d d=%d c=%d u=%.2f cap=d·c=%d rounds=%d", n, d, c, u, capM, rounds)
	tbl.AddNote("claim shape: every m > %d is defeated; small m survive because boxes self-possess "+
		"most of what they play", capM)
	return Result{ID: "E10", Name: "impossibility", Claim: registry["E10"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
