package core

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestBatchSerialSystemLockstep drives a batch-augmentation system and a
// SerialAugment reference through an identical workload. While every
// round is fully matched the two systems' observable state (progress,
// busy sets, step results) is forced to coincide even though their
// matchings may differ, and on the first round with unmatched requests
// both must report the same cardinality — both matchers are maximum on
// the same instance — and, under FailStop, the same obstruction: the
// residual reachability set of a maximum flow is unique, so the Hall
// certificate does not depend on which maximum matching was found.
func TestBatchSerialSystemLockstep(t *testing.T) {
	mk := func(serial bool) *System {
		return buildHomogeneous(t, 43, 18, 1, 4, 9, 2, 0.8, 2.0, func(cfg *Config) {
			cfg.SerialAugment = serial
		})
	}
	batch, serialSys := mk(false), mk(true)
	genB := &uniformGen{rng: stats.NewRNG(1213), p: 0.8}
	genS := &uniformGen{rng: stats.NewRNG(1213), p: 0.8}
	failed := false
	for r := 1; r <= 120 && !failed; r++ {
		resB, errB := batch.Step(genB)
		resS, errS := serialSys.Step(genS)
		if errB != nil || errS != nil {
			t.Fatalf("round %d: errors batch=%v serial=%v", r, errB, errS)
		}
		if !reflect.DeepEqual(resB, resS) {
			t.Fatalf("round %d step results diverge:\nbatch:  %+v\nserial: %+v", r, resB, resS)
		}
		if resB.Obstruction != nil {
			failed = true
		}
		for _, slot := range batch.activeList {
			if batch.reqProgress[slot] != serialSys.reqProgress[slot] {
				t.Fatalf("round %d: progress of slot %d diverges: %d vs %d",
					r, slot, batch.reqProgress[slot], serialSys.reqProgress[slot])
			}
		}
	}
	if !failed {
		t.Fatal("workload never produced an obstruction: the unmatched-round comparison is untested")
	}
}

// TestBatchStallSweepComposition confirms the batch augmentation path
// composes with PR 4's invalidation machinery end to end: an aggressive
// FailStall workload on an event-driven system (certificates + recheck
// ring, sweep fallback during stall episodes) must mix stall rounds and
// recoveries without ever corrupting the matcher (Paranoid verifies every
// round), and must come back to a certificate-driven steady state — a
// fully matched round with the sweep flag cleared — after stalling.
func TestBatchStallSweepComposition(t *testing.T) {
	sys := buildHomogeneous(t, 47, 18, 1, 4, 9, 2, 0.8, 2.0, func(cfg *Config) {
		cfg.Failure = FailStall
	})
	if sys.matcher.SerialAugment || !sys.eventDriven {
		t.Fatal("test wants the production config: batch augmentation + event-driven invalidation")
	}
	gen := &uniformGen{rng: stats.NewRNG(733), p: 0.8}
	stalledRounds, recoveries := 0, 0
	stalled := false
	for r := 1; r <= 200; r++ {
		res, err := sys.Step(gen)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if res.Unmatched > 0 {
			stalledRounds++
			stalled = true
			if !sys.needSweep {
				t.Fatalf("round %d: stall did not arm the sweep fallback", r)
			}
		} else if stalled && !sys.needSweep {
			// A full matching after a stall episode: certificates rebuilt.
			recoveries++
			stalled = false
		}
	}
	if stalledRounds == 0 {
		t.Fatal("workload produced no stalls: the sweep-fallback composition is untested")
	}
	if recoveries == 0 {
		t.Fatal("system never recovered to certificate-driven operation after a stall episode")
	}
}
