package core

import (
	"testing"

	"repro/internal/allocation"
	"repro/internal/stats"
	"repro/internal/video"
)

// TestSoakMixedWorkload runs a long paranoid simulation with a workload
// that mixes background demand, churn waves, and periodic flash crowds,
// checking engine invariants every round.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n, d, c, T, k = 40, 2, 4, 12, 5
	sys := buildHomogeneous(t, 77, n, d, c, T, k, 2.5, 1.3, func(cfg *Config) {
		cfg.Failure = FailStall
	})
	rng := stats.NewRNG(101)
	gen := &mixedGen{rng: rng}
	for round := 0; round < 600; round++ {
		res, err := sys.Step(gen)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Matched < 0 || res.Unmatched < 0 {
			t.Fatalf("round %d: negative counts %+v", round, res)
		}
		// Engine invariants.
		if sys.activeReqs < 0 {
			t.Fatalf("round %d: negative active requests", round)
		}
		for b := 0; b < n; b++ {
			if sys.boxes[b].outstanding < 0 {
				t.Fatalf("round %d: box %d negative outstanding", round, b)
			}
			if sys.boxes[b].busy && sys.boxes[b].outstanding == 0 {
				t.Fatalf("round %d: box %d busy with nothing outstanding", round, b)
			}
		}
		for slot, active := range sys.reqActive {
			if !active {
				continue
			}
			if sys.reqProgress[slot] < 0 || sys.reqProgress[slot] > int32(T) {
				t.Fatalf("round %d: request %d progress %d out of [0,%d]",
					round, slot, sys.reqProgress[slot], T)
			}
		}
	}
	rep := sys.Report()
	if rep.CompletedViewings < 100 {
		t.Errorf("soak completed only %d viewings", rep.CompletedViewings)
	}
}

// mixedGen interleaves background Zipf-ish demand with periodic flash
// bursts and churn waves.
type mixedGen struct {
	rng *stats.RNG
}

func (g *mixedGen) Next(v *View, round int) []Demand {
	var out []Demand
	cat := v.Catalog()
	used := make(map[video.ID]int)
	take := func(vid video.ID) bool {
		if v.SwarmAllowance(vid)-used[vid] <= 0 {
			return false
		}
		used[vid]++
		return true
	}
	burst := round%37 < 3 // periodic flash phase
	target := video.ID(round / 37 % cat.M)
	for b := 0; b < v.NumBoxes(); b++ {
		if !v.BoxIdle(b) {
			continue
		}
		if burst {
			if take(target) {
				out = append(out, Demand{Box: b, Video: target})
			}
			continue
		}
		if g.rng.Bool(0.25) {
			vid := video.ID(g.rng.Intn(cat.M))
			if take(vid) {
				out = append(out, Demand{Box: b, Video: vid})
			}
		}
	}
	return out
}

func TestStallRecovery(t *testing.T) {
	// Build a system where an initial overload stalls requests, then
	// demand stops: stalled requests must finish once capacity frees up.
	const n, d, c, T, k = 12, 2, 4, 10, 2
	sys := buildHomogeneous(t, 5, n, d, c, T, k, 1.1, 4.0, func(cfg *Config) {
		cfg.Failure = FailStall
	})
	// Slam everyone onto one video instantly (µ=4 admits fast).
	gen := &scripted{byRound: map[int][]Demand{}}
	for r := 1; r <= 3; r++ {
		var ds []Demand
		for b := 0; b < n; b++ {
			ds = append(ds, Demand{Box: b, Video: 0})
		}
		gen.byRound[r] = ds
	}
	rep, err := sys.Run(gen, 120)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	// All admitted viewings must eventually complete despite stalls.
	if rep.CompletedViewings != rep.Admitted {
		t.Errorf("completed %d of %d admitted — stalled requests never recovered",
			rep.CompletedViewings, rep.Admitted)
	}
}

func TestSingleStripeCatalog(t *testing.T) {
	// c = 1: no striping at all. The engine must still work (one request
	// per viewing, preload only).
	sys := buildHomogeneous(t, 6, 12, 2, 1, 10, 4, 2.0, 1.5, nil)
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 0, Video: 0}, {Box: 1, Video: 1}}}}
	rep, err := sys.Run(gen, 14)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed || rep.CompletedViewings != 2 {
		t.Fatalf("c=1 run wrong: %+v", rep)
	}
}

func TestShortVideos(t *testing.T) {
	// T = 2: two-chunk videos; retirement and cache windows at their
	// smallest.
	sys := buildHomogeneous(t, 7, 12, 2, 2, 2, 4, 2.0, 1.5, nil)
	gen := &uniformGen{rng: stats.NewRNG(3), p: 0.5}
	rep, err := sys.Run(gen, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("short videos failed: %+v", rep.Obstructions)
	}
	if rep.CompletedViewings == 0 {
		t.Fatal("nothing completed")
	}
}

func TestZeroUploadPopulation(t *testing.T) {
	// All-zero upload: any real demand must fail immediately (nobody can
	// serve), but construction itself is legal (pure-client population).
	rng := stats.NewRNG(8)
	alloc, _, err := allocation.HomogeneousPermutation(rng, 8, 1, 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Alloc:   alloc,
		Uploads: make([]float64, 8),
		Mu:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(genAvoidStored{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("zero-upload system served an avoid-possession demand")
	}
}

func TestFirstObstructionRoundConsistent(t *testing.T) {
	// FailStop and FailStall must detect the first obstruction at the same
	// round on the same inputs.
	const n, d, c, T, k = 10, 1, 4, 12, 1
	stop := buildHomogeneous(t, 8, n, d, c, T, k, 0.5, 2.0, nil)
	repStop, err := stop.Run(genAvoidStored{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	stall := buildHomogeneous(t, 8, n, d, c, T, k, 0.5, 2.0, func(cfg *Config) {
		cfg.Failure = FailStall
	})
	repStall, err := stall.Run(genAvoidStored{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !repStop.Failed || len(repStall.Obstructions) == 0 {
		t.Fatal("expected obstructions in both modes")
	}
	if repStop.FailRound != repStall.Obstructions[0].Round {
		t.Errorf("first obstruction differs: stop=%d stall=%d",
			repStop.FailRound, repStall.Obstructions[0].Round)
	}
}

func TestServerLoadVisibleInView(t *testing.T) {
	sys := buildHomogeneous(t, 9, 12, 2, 3, 10, 4, 2.0, 1.5, nil)
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 0, Video: 0}}}}
	if _, err := sys.Step(gen); err != nil {
		t.Fatal(err)
	}
	v := sys.View()
	var total int64
	for b := 0; b < v.NumBoxes(); b++ {
		total += v.ServerLoad(b)
	}
	if total == 0 {
		t.Fatal("no server load visible after a matched preload request")
	}
}

func TestMuOneNoGrowth(t *testing.T) {
	// µ = 1: swarms never exceed one box; sequential viewings still work.
	sys := buildHomogeneous(t, 10, 12, 2, 3, 8, 4, 2.0, 1.0, nil)
	gen := &scripted{byRound: map[int][]Demand{
		1: {{Box: 0, Video: 0}, {Box: 1, Video: 0}},
	}}
	rep, err := sys.Run(gen, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != 1 || rep.RejectedSwarm != 1 {
		t.Fatalf("µ=1 admission wrong: admitted=%d rejected=%d", rep.Admitted, rep.RejectedSwarm)
	}
}

func TestRequestMixHomogeneous(t *testing.T) {
	// With no self-possession skips, each admitted viewing issues exactly
	// one preload and c−1 postponed requests.
	const c = 3
	sys := buildHomogeneous(t, 21, 12, 2, c, 10, 4, 2.0, 1.5, nil)
	gen := &scripted{byRound: map[int][]Demand{
		1: {{Box: 0, Video: 0}},
		2: {{Box: 1, Video: 1}},
	}}
	rep, err := sys.Run(gen, 16)
	if err != nil {
		t.Fatal(err)
	}
	issued := rep.PreloadRequests + rep.PostponedRequests + rep.SkippedSelfServed
	if issued != int64(rep.Admitted)*c {
		t.Fatalf("request mix does not account for all stripes: %d of %d",
			issued, int64(rep.Admitted)*c)
	}
	if rep.PreloadRequests+rep.SkippedSelfServed < int64(rep.Admitted) {
		t.Errorf("fewer preloads (%d) + skips (%d) than admissions (%d)",
			rep.PreloadRequests, rep.SkippedSelfServed, rep.Admitted)
	}
	if rep.RelayedRequests != 0 {
		t.Errorf("homogeneous run recorded %d relayed requests", rep.RelayedRequests)
	}
}

func TestObstructionCertificateDetail(t *testing.T) {
	const n, d, c, T, k = 10, 1, 4, 12, 1
	sys := buildHomogeneous(t, 8, n, d, c, T, k, 0.5, 2.0, nil)
	rep, err := sys.Run(genAvoidStored{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("expected failure")
	}
	ob := rep.Obstructions[0]
	// The certificate must satisfy the Lemma 1 inequality strictly and the
	// structural bounds.
	if int64(ob.Requests) <= ob.Slots {
		t.Errorf("U_B(X) = %d slots does not violate |X| = %d", ob.Slots, ob.Requests)
	}
	if ob.DistinctStripes > ob.Requests {
		t.Errorf("distinct stripes %d exceeds requests %d", ob.DistinctStripes, ob.Requests)
	}
	if ob.DistinctStripes > n*c {
		t.Errorf("distinct stripes %d exceeds catalog bound", ob.DistinctStripes)
	}
	if ob.Round <= 0 {
		t.Errorf("round %d not positive", ob.Round)
	}
}
