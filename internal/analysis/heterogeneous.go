package analysis

import (
	"fmt"
	"math"
)

// HeteroParams bundles the inputs of Theorem 2: per-box upload and storage
// capacities, the deficiency threshold u*, and the swarm growth bound.
type HeteroParams struct {
	Uploads  []float64 // u_b per box
	Storage  []float64 // d_b per box, in videos
	UStar    float64   // deficiency threshold u* > 1
	Mu       float64   // maximal swarm growth µ ≥ 1
	Duration int       // T, for completeness of planning output
}

// Validate checks structural sanity.
func (p HeteroParams) Validate() error {
	if len(p.Uploads) == 0 || len(p.Uploads) != len(p.Storage) {
		return fmt.Errorf("analysis: need matching non-empty capacity vectors (got %d uploads, %d storage)",
			len(p.Uploads), len(p.Storage))
	}
	if p.UStar <= 1 {
		return fmt.Errorf("analysis: u*=%v must exceed 1", p.UStar)
	}
	if p.Mu < 1 {
		return fmt.Errorf("analysis: µ=%v must be at least 1", p.Mu)
	}
	for b, u := range p.Uploads {
		if u < 0 || p.Storage[b] < 0 {
			return fmt.Errorf("analysis: box %d has negative capacity", b)
		}
	}
	return nil
}

// N returns the number of boxes.
func (p HeteroParams) N() int { return len(p.Uploads) }

// AvgUpload returns the average upload capacity u.
func (p HeteroParams) AvgUpload() float64 {
	s := 0.0
	for _, u := range p.Uploads {
		s += u
	}
	return s / float64(len(p.Uploads))
}

// AvgStorage returns the average storage capacity d.
func (p HeteroParams) AvgStorage() float64 {
	s := 0.0
	for _, d := range p.Storage {
		s += d
	}
	return s / float64(len(p.Storage))
}

// UploadDeficit returns ∆(u*) = Σ_{b : u_b < u*} (u* − u_b), the total
// bandwidth missing to poor boxes (Section 4).
func UploadDeficit(uploads []float64, uStar float64) float64 {
	d := 0.0
	for _, u := range uploads {
		if u < uStar {
			d += uStar - u
		}
	}
	return d
}

// HeteroNecessaryCondition reports whether the intuitive lower bound for
// heterogeneous scalability holds: u > 1 + ∆(1)/n.
func HeteroNecessaryCondition(uploads []float64) bool {
	n := float64(len(uploads))
	avg := 0.0
	for _, u := range uploads {
		avg += u
	}
	avg /= n
	return avg > 1+UploadDeficit(uploads, 1)/n
}

// CompensationFeasible reports whether Σ over rich boxes of spare capacity
// above u* covers the total reservation demand Σ_{poor} (u*+1−2u_b): a
// necessary aggregate condition for u*-upload-compensation. The
// constructive per-box assignment lives in package hetero.
func CompensationFeasible(uploads []float64, uStar float64) bool {
	var spare, need float64
	for _, u := range uploads {
		if u >= uStar {
			spare += u - uStar
		} else {
			need += uStar + 1 - 2*u
		}
	}
	return spare >= need
}

// StorageBalanced reports whether the system is u*-storage-balanced:
// 2 ≤ d_b/u_b and d_b/u_b ≤ d/u* for every box (Section 4). Boxes with
// zero upload must have zero storage to pass.
func StorageBalanced(p HeteroParams) bool {
	d := p.AvgStorage()
	for b, u := range p.Uploads {
		db := p.Storage[b]
		if u == 0 {
			if db != 0 {
				return false
			}
			continue
		}
		ratio := db / u
		if ratio < 2 || ratio > d/p.UStar {
			return false
		}
	}
	return true
}

// ProportionallyHeterogeneous reports whether u_b/d_b is the same for all
// boxes (the paper's special case that is always u*-storage-balanced for
// d ≥ 2, u* ≤ u).
func ProportionallyHeterogeneous(p HeteroParams) bool {
	var ratio float64
	first := true
	for b, u := range p.Uploads {
		db := p.Storage[b]
		if db == 0 {
			if u == 0 {
				continue
			}
			return false
		}
		r := u / db
		if first {
			ratio = r
			first = false
			continue
		}
		if math.Abs(r-ratio) > 1e-9 {
			return false
		}
	}
	return true
}

// Theorem2Nu returns ν = 1/(c+2µ⁴−1) − 1/(c+3µ⁴) for the heterogeneous
// construction.
func Theorem2Nu(c int, mu float64) float64 {
	mu4 := math.Pow(mu, 4)
	return 1/(float64(c)+2*mu4-1) - 1/(float64(c)+3*mu4)
}

// Theorem2UPrime returns u′ = (c+3µ⁴)/c, the per-stripe service guarantee
// the relay construction provides.
func Theorem2UPrime(c int, mu float64) float64 {
	return (float64(c) + 3*math.Pow(mu, 4)) / float64(c)
}

// Theorem2MinC returns the smallest c with c > 4µ⁴/(u*−1).
func Theorem2MinC(uStar, mu float64) (int, error) {
	if uStar <= 1 {
		return 0, ErrBelowThreshold
	}
	bound := 4 * math.Pow(mu, 4) / (uStar - 1)
	c := int(math.Floor(bound)) + 1
	if float64(c) <= bound {
		c++
	}
	return c, nil
}

// Theorem2ConstructionC returns c = ⌈10µ⁴/(u*−1)⌉, the stripe count the
// relay construction actually assumes (it needs the stronger margin).
func Theorem2ConstructionC(uStar, mu float64) (int, error) {
	if uStar <= 1 {
		return 0, ErrBelowThreshold
	}
	return int(math.Ceil(10 * math.Pow(mu, 4) / (uStar - 1))), nil
}

// Theorem2MinK returns k ≥ 5·ν⁻¹·log d′/log u′ with the Theorem 2
// quantities and d′ = max{d, u*, e}.
func Theorem2MinK(p HeteroParams, c int) (int, error) {
	nu := Theorem2Nu(c, p.Mu)
	if nu <= 0 {
		return 0, ErrBelowThreshold
	}
	uPrime := Theorem2UPrime(c, p.Mu)
	dPrime := DPrime(p.AvgStorage(), p.UStar)
	k := 5 / nu * math.Log(dPrime) / math.Log(uPrime)
	return int(math.Ceil(k)), nil
}

// Theorem2CatalogBound evaluates the Theorem 2 catalog lower-bound shape
// (u*−1)²·log((u*+3)/4)/µ⁴ · d·n/log d′ (stated for u* ≤ 2).
func Theorem2CatalogBound(p HeteroParams) float64 {
	if p.UStar <= 1 {
		return 0
	}
	dPrime := DPrime(p.AvgStorage(), p.UStar)
	num := (p.UStar - 1) * (p.UStar - 1) * math.Log((p.UStar+3)/4)
	return num / math.Pow(p.Mu, 4) * p.AvgStorage() * float64(p.N()) / math.Log(dPrime)
}

// DirectStripes returns c_b = max(0, ⌊c·u_b − 4µ⁴⌋): the number of
// postponed stripes a poor box downloads directly rather than through its
// relay (Section 4).
func DirectStripes(ub float64, c int, mu float64) int {
	cb := math.Floor(ub*float64(c) - 4*math.Pow(mu, 4))
	if cb < 0 {
		return 0
	}
	return int(cb)
}

// ReservationNeed returns the upload a rich box must reserve for poor box
// b: u* + 1 − 2·u_b (Section 4). Only meaningful for u_b < u*.
func ReservationNeed(ub, uStar float64) float64 {
	return uStar + 1 - 2*ub
}

// HeteroPlan is the Theorem 2 analogue of Plan.
type HeteroPlan struct {
	Params        HeteroParams
	C             int
	K             int
	M             int // ⌊d_total/k⌋ where d_total = Σ d_b·... expressed in videos: Σd_b·n-normalized
	Nu            float64
	UPrime        float64
	DPrime        float64
	Deficit1      float64 // ∆(1)
	DeficitUStar  float64 // ∆(u*)
	NecessaryOK   bool    // u > 1 + ∆(1)/n
	Compensatable bool    // aggregate reservation feasibility
	Balanced      bool    // u*-storage-balance
	Bound         float64
}

// NewHeteroPlan derives the full Theorem 2 parameterization using the
// construction stripe count ⌈10µ⁴/(u*−1)⌉.
func NewHeteroPlan(p HeteroParams) (HeteroPlan, error) {
	if err := p.Validate(); err != nil {
		return HeteroPlan{}, err
	}
	c, err := Theorem2ConstructionC(p.UStar, p.Mu)
	if err != nil {
		return HeteroPlan{}, err
	}
	k, err := Theorem2MinK(p, c)
	if err != nil {
		return HeteroPlan{}, err
	}
	totalStorage := 0.0
	for _, d := range p.Storage {
		totalStorage += d
	}
	return HeteroPlan{
		Params:        p,
		C:             c,
		K:             k,
		M:             int(totalStorage) / k,
		Nu:            Theorem2Nu(c, p.Mu),
		UPrime:        Theorem2UPrime(c, p.Mu),
		DPrime:        DPrime(p.AvgStorage(), p.UStar),
		Deficit1:      UploadDeficit(p.Uploads, 1),
		DeficitUStar:  UploadDeficit(p.Uploads, p.UStar),
		NecessaryOK:   HeteroNecessaryCondition(p.Uploads),
		Compensatable: CompensationFeasible(p.Uploads, p.UStar),
		Balanced:      StorageBalanced(p),
		Bound:         Theorem2CatalogBound(p),
	}, nil
}
