package scenario

// Report tables (vodbench -scenario): a scenario run rendered through the
// same report pipeline as the numbered reproduction experiments, so it
// prints, exports to Markdown/CSV, and plots identically.

import "repro/internal/report"

// Tables renders the run as report tables: a summary metric table plus a
// per-phase corpus breakdown.
func (r *Result) Tables() []*report.Table {
	ex := r.Expanded
	st := ex.Trace.Summarize()
	rep := r.Report

	summary := report.New("Scenario summary", "metric", "value")
	summary.AddRowValues("seed", ex.Seed)
	summary.AddRowValues("boxes", ex.VodSpec.Boxes)
	summary.AddRowValues("videos", ex.Catalog.M)
	summary.AddRowValues("rounds", ex.Spec.TotalRounds())
	summary.AddRowValues("corpus events", st.Events)
	summary.AddRowValues("corpus hash", r.CorpusHash)
	summary.AddRowValues("demands admitted", rep.Admitted)
	summary.AddRowValues("rejected (busy)", rep.RejectedBusy)
	summary.AddRowValues("rejected (swarm)", rep.RejectedSwarm)
	summary.AddRowValues("completed viewings", rep.CompletedViewings)
	summary.AddRowValues("stalls", rep.Stalls)
	summary.AddRowValues("obstructions", len(rep.Obstructions))
	summary.AddRowValues("peak requests", rep.PeakRequests)
	summary.AddRowValues("max swarm", rep.MaxSwarm)
	summary.AddRowValues("mean utilization", rep.MeanUtilization)
	summary.AddRowValues("startup mean", rep.StartupDelay.Mean)
	summary.AddRowValues("startup p99", rep.StartupDelay.P99)

	phases := report.New("Per-phase corpus", "phase", "rounds", "events", "peak/round")
	start := 1
	pos := 0
	for _, p := range ex.Spec.Phases {
		end := start + p.Rounds - 1
		events, peak := 0, 0
		perRound := map[int]int{}
		for pos < len(ex.Trace.Events) && ex.Trace.Events[pos].Round <= end {
			rd := ex.Trace.Events[pos].Round
			perRound[rd]++
			if perRound[rd] > peak {
				peak = perRound[rd]
			}
			events++
			pos++
		}
		phases.AddRowValues(p.Name, p.Rounds, events, peak)
		start = end + 1
	}

	return []*report.Table{summary, phases}
}
