package vod

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestSaveLoadCheckpoint exercises the public envelope: run a workload,
// checkpoint mid-run, restore, and verify the restored system resumes
// bit-identically under the same demand feed. The core-level differential
// (internal/core) pins the heavy state machinery; this test pins the
// envelope — spec round-trip, magic, and generator reattachment.
func TestSaveLoadCheckpoint(t *testing.T) {
	spec := Spec{Boxes: 30, Upload: 2.0, Growth: 1.3, Resilient: true, Shards: 2, Seed: 11}
	live, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewZipfWorkload(3, 0.4, 0.9)
	for r := 0; r < 40; r++ {
		if _, err := live.Step(gen); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := live.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Round() != 40 {
		t.Fatalf("restored at round %d, want 40", restored.Round())
	}
	if !reflect.DeepEqual(restored.Spec(), spec) {
		t.Fatalf("spec did not round-trip: %+v vs %+v", restored.Spec(), spec)
	}

	// Demand feeds are external inputs: reattach identically seeded
	// generators (the live one has consumed 40 rounds of randomness, so
	// both sides get fresh ones) and compare the continuations.
	genA := NewZipfWorkload(99, 0.4, 0.9)
	genB := NewZipfWorkload(99, 0.4, 0.9)
	for r := 0; r < 30; r++ {
		resA, err := live.Step(genA)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := restored.Step(genB)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resA, resB) {
			t.Fatalf("round %d diverged: %+v vs %+v", resA.Round, resA, resB)
		}
	}
	if repA, repB := live.Report(), restored.Report(); !reflect.DeepEqual(repA, repB) {
		t.Fatalf("reports diverge after identical continuations")
	}
}

// TestCheckpointWorkerLifecycle pins the public half of the pool
// lifecycle: SaveCheckpoint/LoadCheckpoint re-arms the restored system's
// shard workers (it must still step) without leaking the saved system's,
// and Close on both returns the process to its goroutine baseline.
func TestCheckpointWorkerLifecycle(t *testing.T) {
	spec := Spec{Boxes: 30, Upload: 2.0, Growth: 1.3, Resilient: true, Shards: 4, Seed: 11}
	mk := func() *System {
		sys, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	warm := mk() // warm the runtime's lazy helper goroutines
	warm.Close()
	waitBaseline(t, runtime.NumGoroutine())
	base := runtime.NumGoroutine()

	live := mk()
	gen := NewZipfWorkload(3, 0.4, 0.9)
	for r := 0; r < 20; r++ {
		if _, err := live.Step(gen); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := live.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	live.Close()
	live.Close() // idempotent
	waitBaseline(t, base)
	if _, err := live.Step(gen); err == nil {
		t.Fatal("Step after Close should error")
	}

	restored, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Step(NewZipfWorkload(9, 0.4, 0.9)); err != nil {
		t.Fatalf("restored system must step (workers re-armed): %v", err)
	}
	restored.Close()
	waitBaseline(t, base)
}

// waitBaseline polls until the goroutine count returns to base (worker
// exit after a pool close is asynchronous).
func waitBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still live (baseline %d)", runtime.NumGoroutine(), base)
		}
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}
