// Command vodplan prints the Theorem 1 / Theorem 2 parameterization for a
// prospective deployment: the stripe count c, replication factor k, the
// achievable catalog m = dn/k, and the analytical lower bound — plus, for
// heterogeneous fleets, the deficit ∆(1), the necessary condition
// u > 1 + ∆(1)/n, and compensation feasibility.
//
// Examples:
//
//	vodplan -n 10000 -u 1.5 -d 4 -mu 1.2
//	vodplan -n 10000 -hetero 0.3 -ustar 1.5
package main

import (
	"flag"
	"fmt"
	"os"

	vod "repro"
	"repro/internal/analysis"
	"repro/internal/report"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of boxes")
		u       = flag.Float64("u", 1.5, "normalized upload capacity")
		d       = flag.Int("d", 4, "storage per box in videos")
		mu      = flag.Float64("mu", 1.2, "maximal swarm growth per round")
		heteroP = flag.Float64("hetero", 0, "poor-box fraction (0 = homogeneous plan)")
		uStar   = flag.Float64("ustar", 1.5, "deficiency threshold u* for heterogeneous plans")
		target  = flag.Float64("target-prob", 0, "if > 0: also search the smallest k with union bound ≤ this")
	)
	flag.Parse()

	if *heteroP > 0 {
		pop := vod.Bimodal(*n, 1-*heteroP, 3.0, 0.5, 2.0)
		plan, err := vod.HeteroPlanFor(pop, *uStar, *mu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vodplan:", err)
			os.Exit(1)
		}
		tbl := report.New(fmt.Sprintf("Theorem 2 plan: n=%d poor=%.0f%% u*=%.2f µ=%.2f", *n, *heteroP*100, *uStar, *mu),
			"quantity", "value")
		tbl.AddRowValues("average upload u", plan.Params.AvgUpload())
		tbl.AddRowValues("average storage d", plan.Params.AvgStorage())
		tbl.AddRowValues("upload deficit ∆(1)", plan.Deficit1)
		tbl.AddRowValues("necessary u > 1+∆(1)/n", boolStr(plan.NecessaryOK))
		tbl.AddRowValues("u*-upload-compensatable", boolStr(plan.Compensatable))
		tbl.AddRowValues("u*-storage-balanced", boolStr(plan.Balanced))
		tbl.AddRowValues("stripes c", plan.C)
		tbl.AddRowValues("replicas k", plan.K)
		tbl.AddRowValues("catalog m", plan.M)
		tbl.AddRowValues("catalog bound Ω(·)", plan.Bound)
		_ = tbl.WriteText(os.Stdout)
		return
	}

	plan, err := vod.PlanFor(*n, *u, *d, *mu)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodplan:", err)
		os.Exit(1)
	}
	tbl := report.New(fmt.Sprintf("Theorem 1 plan: n=%d u=%.2f d=%d µ=%.2f", *n, *u, *d, *mu),
		"quantity", "value")
	tbl.AddRowValues("stripes c (recommended)", plan.C)
	tbl.AddRowValues("effective upload u'", plan.UPrime)
	tbl.AddRowValues("expansion margin ν", plan.Nu)
	tbl.AddRowValues("d' = max{d,u,e}", plan.DPrime)
	tbl.AddRowValues("replicas k (Theorem 1)", plan.K)
	tbl.AddRowValues("replicas k (proof bound)", plan.ProofK)
	tbl.AddRowValues("catalog m = dn/k", plan.M)
	tbl.AddRowValues("catalog bound Ω(·)", plan.Bound)
	_ = tbl.WriteText(os.Stdout)

	if *target > 0 {
		hp := analysis.HomogeneousParams{N: *n, U: *u, D: *d, Mu: *mu}
		if k, ok := analysis.KForTargetProbability(hp, plan.C, *target, 1_000_000); ok {
			fmt.Printf("\nsmallest k with first-moment union bound ≤ %g: k = %d (m = %d)\n",
				*target, k, analysis.CatalogSize(*n, *d, k))
		} else {
			fmt.Printf("\nno k ≤ 1e6 achieves union bound ≤ %g at c=%d\n", *target, plan.C)
		}
	}

	// The large-n corollary for random independent allocations (requires
	// u > 2 and c = Ω(log n)).
	hp := analysis.HomogeneousParams{N: *n, U: *u, D: *d, Mu: *mu}
	if ind, err := analysis.NewIndependentPlan(hp); err == nil {
		it := report.New("independent-allocation corollary (large n)", "quantity", "value")
		it.AddRowValues("stripes c (incl. Ω(log n))", ind.C)
		it.AddRowValues("replicas k", ind.K)
		it.AddRowValues("catalog m", ind.M)
		it.AddRowValues("catalog bound Ω(n/log n)", ind.Bound)
		fmt.Println()
		_ = it.WriteText(os.Stdout)
	}
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
