package core

import (
	"repro/internal/video"
)

// naiveAvailability is the executable specification of the availability
// substrate: flat per-stripe entry slices with linear scans everywhere and
// a full-catalog sweep on expiry — the original hot path, retained so the
// differential tests can pin indexedAvailability to its exact semantics
// (Config.NaiveAvailability selects it).
type naiveAvailability struct {
	T         int
	numShards int
	entries   [][]entry // per stripe, in insertion order
}

func newNaiveAvailability(numStripes, T int) *naiveAvailability {
	return &naiveAvailability{T: T, numShards: 1, entries: make([][]entry, numStripes)}
}

// setShards records the stripe-shard partition; the naive store caches no
// local right ids (the sharded adjacency translates on the fly for it).
func (na *naiveAvailability) setShards(S int, _ func(shard int, box int32) int32) {
	na.numShards = S
}

func (na *naiveAvailability) add(st video.StripeID, e entry) {
	na.entries[st] = append(na.entries[st], e)
}

// expire drops cache entries whose window has passed: an entry started at
// t_j serves only while t_j ≥ t − T (Section 2.2).
func (na *naiveAvailability) expire(round int) {
	for sh := 0; sh < na.numShards; sh++ {
		na.expireShard(round, sh)
	}
}

// expireShard sweeps only the stripes of one shard (stripe mod numShards);
// per-stripe slices are disjoint, so distinct shards may run concurrently.
func (na *naiveAvailability) expireShard(round, shard int) {
	cutoff := int32(round - na.T)
	for st := shard; st < len(na.entries); st += na.numShards {
		es := na.entries[st]
		keep := 0
		for i := range es {
			if es[i].start >= cutoff {
				es[keep] = es[i]
				keep++
			}
		}
		if keep != len(es) {
			tail := es[keep:]
			for i := range tail {
				tail[i] = entry{}
			}
			na.entries[st] = es[:keep]
		}
	}
}

func (na *naiveAvailability) retire(st video.StripeID, req int32, final int32) {
	for i := range na.entries[st] {
		e := &na.entries[st][i]
		if e.req == req {
			e.frozen = final - e.lag
			e.req = -1
		}
	}
}

func (na *naiveAvailability) visit(st video.StripeID, exclude int32, need int32, reqProgress []int32, fn func(right int) bool) {
	for i := range na.entries[st] {
		e := &na.entries[st][i]
		if e.box != exclude && entryChunks(e, reqProgress) > need {
			if !fn(int(e.box)) {
				return
			}
		}
	}
}

// visitLocal emits local = -1 for every entry: the naive store caches no
// shard-local ids, so the sharded adjacency falls back to translating.
func (na *naiveAvailability) visitLocal(st video.StripeID, exclude int32, need int32, reqProgress []int32, fn func(right int, local int32) bool) {
	for i := range na.entries[st] {
		e := &na.entries[st][i]
		if e.box != exclude && entryChunks(e, reqProgress) > need {
			if !fn(int(e.box), -1) {
				return
			}
		}
	}
}

// visitHead returns position 0: the naive walk is a plain index scan of
// the stripe's insertion-ordered slice.
func (na *naiveAvailability) visitHead(st video.StripeID) int32 { return 0 }

// visitStep emits local = -1 like visitLocal: the naive store caches no
// shard-local ids.
func (na *naiveAvailability) visitStep(st video.StripeID, h int32, exclude int32, need int32, reqProgress []int32) (int32, int32, int32) {
	es := na.entries[st]
	for i := h; int(i) < len(es); i++ {
		e := &es[i]
		if e.box != exclude && entryChunks(e, reqProgress) > need {
			return e.box, -1, i + 1
		}
	}
	return -1, -1, -1
}

func (na *naiveAvailability) canServe(st video.StripeID, box int32, need int32, reqProgress []int32) bool {
	for i := range na.entries[st] {
		e := &na.entries[st][i]
		if e.box == box && entryChunks(e, reqProgress) > need {
			return true
		}
	}
	return false
}

func (na *naiveAvailability) hasFull(st video.StripeID, box int32, full int32, minStart int32) bool {
	for i := range na.entries[st] {
		e := &na.entries[st][i]
		if e.box == box && e.req == -1 && e.frozen >= full && e.start >= minStart {
			return true
		}
	}
	return false
}

func (na *naiveAvailability) live(st video.StripeID) int { return len(na.entries[st]) }

func (na *naiveAvailability) margin(st video.StripeID, box int32, need int32, reqProgress []int32) (hasLive bool, bestFrozen int32, ok bool) {
	for i := range na.entries[st] {
		e := &na.entries[st][i]
		if e.box != box || entryChunks(e, reqProgress) <= need {
			continue
		}
		ok = true
		if e.req >= 0 {
			hasLive = true
		} else if e.frozen > bestFrozen {
			bestFrozen = e.frozen
		}
	}
	return hasLive, bestFrozen, ok
}

// drainEvents is a no-op: the naive store pairs with the full Revalidate
// sweep, which needs no targeted notifications.
func (na *naiveAvailability) drainEvents(dst []availEvent) []availEvent { return dst }

func (na *naiveAvailability) drainEventsShard(shard int, dst []availEvent) []availEvent {
	return dst
}
