package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/bipartite"
	"repro/internal/swarm"
	"repro/internal/video"
)

// issuance is a scheduled future request.
type issuance struct {
	round     int
	stripe    video.StripeID
	requester int32
	viewer    int32
	mirror    int32 // box receiving a forwarded copy (lag 1), or -1
}

// maxIssuanceDelay bounds how far ahead a strategy may schedule a request;
// the pending ring is sized from it. The relayed strategy's t+3 issuances
// are the current maximum.
const maxIssuanceDelay = 4

// boxRec packs the per-box engine state the hot paths probe — admission's
// busy/outstanding check, completion's busy→idle transition, the idle
// index position, and the capacity view — into one 16-byte record (13
// bytes of fields padded to int32 alignment; four records per 64-byte
// cache line). These used to live in four parallel population-sized
// slices; at 10⁵–10⁶ boxes every probe then touched four distinct cache
// lines, and the matcher's batch BFS sits right next to these probes
// each round. One record keeps a box's whole engine state on a single
// line.
type boxRec struct {
	outstanding int32 // unfinished requests + pending issuances
	idlePos     int32 // index in idleList, or −1 while busy
	capSlots    int32 // matcher capacity view (upload slots after reservations)
	busy        bool
}

// System is a runnable instance of the paper's video system.
type System struct {
	cfg        Config
	cat        video.Catalog
	n          int
	totalSlots int64
	matcher    *bipartite.Matcher
	tracker    *swarm.Tracker
	round      int
	failed     bool

	// Sharded round engine (Config.Shards > 1): sharded replaces matcher —
	// exactly one of the two is non-nil — and lanes carries the per-shard
	// engine state (recheck rings, event scratch, adjacency). pool owns the
	// persistent shard workers; certMode is the post-merge dispatch's
	// serially decided certificate disposition and timing the round's
	// parallel/serial wall-clock split. See shard.go.
	sharded        *bipartite.Sharded
	numShards      int
	lanes          []lane
	shardUnmatched [][]int // per-shard unmatched frontiers (scratch)
	pool           *shardPool
	certMode       certMode
	timing         stageTiming

	// Request slot arrays (index = matcher left ID).
	reqStripe   []video.StripeID
	reqStart    []int32
	reqBox      []int32 // downloader (the relay for relayed requests)
	reqViewer   []int32 // box whose playback depends on this request
	reqProgress []int32
	reqActive   []bool
	freeSlots   []int32
	activeReqs  int

	// Live request slots, swap-removed on retirement, so per-round sweeps
	// cost O(live requests) instead of O(peak slots ever allocated).
	activeList  []int32
	posInActive []int32

	// avail indexes the playback-cache entries (the swarm half of the
	// Section 2.2 graph); the allocation half lives in cfg.Alloc.
	avail availabilityStore

	// boxes is the compact per-box record array (see boxRec); idleList is
	// the dense half of the intrusive idle-box set, maintained at the
	// busy/idle transitions in admit and finishOne so idle-box queries
	// cost O(idle), never O(n). boxes[b].idlePos back-points into it.
	// idleBits mirrors idleList's membership as a hierarchical bitmap so
	// sorted enumeration (View.IdleBoxes) costs O(idle) without a
	// per-call sort; idleList keeps its insertion order — VisitIdle's
	// iteration order and the checkpoint encoding depend on it.
	boxes    []boxRec
	idleList []int32
	idleBits idleBits

	// view is the one View handed to demand generators each round;
	// caching it keeps Step's steady state allocation-free.
	view View

	// pendingRing holds scheduled future requests bucketed by due round
	// (round mod len), so issuing costs O(due this round), not O(pending).
	pendingRing [][]issuance

	// Event-driven invalidation state (see invalidation.go). eventDriven
	// is false under Config.NaiveAvailability, which keeps the full
	// Revalidate sweep; needSweep forces sweeps after stall rounds until
	// certificates can be rebuilt.
	eventDriven bool
	needSweep   bool
	recheckRing [][]int32
	availEvents []availEvent
	assignedLog []int32
	candScratch []int32

	metrics runMetrics
}

// NewSystem validates the configuration and builds the system.
func NewSystem(cfg Config) (*System, error) {
	caps, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	cat := cfg.Alloc.Catalog()
	n := cfg.Alloc.NumBoxes()
	S := cfg.Shards
	if S == 0 {
		S = 1
	}
	s := &System{
		cfg:         cfg,
		cat:         cat,
		n:           n,
		numShards:   S,
		tracker:     swarm.NewTracker(cat.M, cat.T, cfg.Mu),
		boxes:       make([]boxRec, n),
		pendingRing: make([][]issuance, maxIssuanceDelay+1),
	}
	if S == 1 {
		s.matcher = bipartite.NewMatcher(caps)
		s.matcher.SerialAugment = cfg.SerialAugment
	} else {
		s.sharded = bipartite.NewSharded(caps, S)
		s.lanes = make([]lane, S)
		s.shardUnmatched = make([][]int, S)
		for sh := 0; sh < S; sh++ {
			s.sharded.Sub(sh).SerialAugment = cfg.SerialAugment
			s.lanes[sh].init(s, sh)
		}
		if !cfg.LazyShardRights {
			s.preRegisterShardRights()
		}
		s.pool = newShardPool(S - 1)
		// Safety net for systems dropped without Close: parked workers only
		// reference the pool (never the System between dispatches), so an
		// abandoned engine is collectable and the cleanup releases its
		// workers. The cleanup func must not capture s.
		runtime.AddCleanup(s, func(p *shardPool) { p.close() }, s.pool)
	}
	if cfg.NaiveAvailability {
		na := newNaiveAvailability(cat.NumStripes(), cat.T)
		na.setShards(S, nil)
		s.avail = na
	} else {
		ix := newIndexedAvailability(cat.NumStripes(), cat.T)
		if S > 1 {
			ix.setShards(S, func(shard int, box int32) int32 {
				return int32(s.sharded.Register(shard, int(box)))
			})
		}
		if !cfg.SweepRevalidation {
			ix.logEvents = true
			s.eventDriven = true
			if S == 1 {
				s.recheckRing = make([][]int32, cat.T+2)
				s.matcher.LogAssignments(true)
			} else {
				for sh := 0; sh < S; sh++ {
					s.lanes[sh].recheckRing = make([][]int32, cat.T+2)
					s.sharded.Sub(sh).LogAssignments(true)
				}
			}
		}
		s.avail = ix
	}
	s.idleList = make([]int32, n)
	for b := range s.idleList {
		if caps[b] > math.MaxInt32 {
			return nil, fmt.Errorf("core: box %d capacity %d slots overflows the box record", b, caps[b])
		}
		s.idleList[b] = int32(b)
		s.boxes[b].idlePos = int32(b)
		s.boxes[b].capSlots = int32(caps[b])
	}
	s.idleBits.initFull(n)
	s.view = View{s}
	for _, c := range caps {
		s.totalSlots += c
	}
	s.metrics.init(n)
	return s, nil
}

// markBusy removes box b from the idle set (swap-remove, O(1)).
func (s *System) markBusy(b int32) {
	pos := s.boxes[b].idlePos
	last := s.idleList[len(s.idleList)-1]
	s.idleList[pos] = last
	s.boxes[last].idlePos = pos
	s.idleList = s.idleList[:len(s.idleList)-1]
	s.boxes[b].idlePos = -1
	s.idleBits.clear(b)
}

// markIdle returns box b to the idle set.
func (s *System) markIdle(b int32) {
	s.boxes[b].idlePos = int32(len(s.idleList))
	s.idleList = append(s.idleList, b)
	s.idleBits.set(b)
}

// Close releases the sharded engine's persistent workers. Idempotent and
// a no-op on the serial engine; Step after Close returns an error. Must
// not be called concurrently with Step (the System is single-writer).
// Systems dropped without Close are still collectable — a runtime cleanup
// releases their workers — but long-lived processes that build many
// systems should Close explicitly rather than wait for the GC.
func (s *System) Close() {
	if s.pool != nil {
		s.pool.close()
	}
}

// StageTiming is the sharded round's wall-clock split: the pooled
// parallel dispatches vs the serial Merge/GlobalAugment tail. Last
// completed round plus an exponentially weighted moving average
// (alpha 0.1). All zeros on the serial engine.
type StageTiming struct {
	ParallelNS     int64
	SerialNS       int64
	ParallelEWMANS float64
	SerialEWMANS   float64
}

// timeBase anchors nowNS: time.Since reads the monotonic clock without
// allocating, which keeps the timed sharded round at 0 allocs.
var timeBase = time.Now()

func nowNS() int64 { return int64(time.Since(timeBase)) }

// stageTiming is the engine-internal accumulator behind StageTiming.
type stageTiming struct {
	parallelNS int64
	serialNS   int64
	ewmaPar    float64
	ewmaSer    float64
	rounds     int64
}

// fold absorbs the finished round's split into the EWMAs.
func (t *stageTiming) fold() {
	const alpha = 0.1
	if t.rounds == 0 {
		t.ewmaPar = float64(t.parallelNS)
		t.ewmaSer = float64(t.serialNS)
	} else {
		t.ewmaPar += (float64(t.parallelNS) - t.ewmaPar) * alpha
		t.ewmaSer += (float64(t.serialNS) - t.ewmaSer) * alpha
	}
	t.rounds++
}

// StageTiming reports the per-round parallel/serial wall-clock split of
// the sharded engine (zeros on the serial engine; see StageTiming type).
func (s *System) StageTiming() StageTiming {
	return StageTiming{
		ParallelNS:     s.timing.parallelNS,
		SerialNS:       s.timing.serialNS,
		ParallelEWMANS: s.timing.ewmaPar,
		SerialEWMANS:   s.timing.ewmaSer,
	}
}

// Round returns the last simulated round. Rounds are 1-based — a demand
// arriving "during [t−1, t)" is admitted at round t ≥ 1 — so Round is 0
// before the first Step.
func (s *System) Round() int { return s.round }

// Failed reports whether a FailStop obstruction has occurred.
func (s *System) Failed() bool { return s.failed }

// Catalog returns the system's catalog.
func (s *System) Catalog() video.Catalog { return s.cat }

// NumBoxes returns the number of boxes.
func (s *System) NumBoxes() int { return s.n }

// TotalSlots returns the total matcher capacity in stripe slots.
func (s *System) TotalSlots() int64 { return s.totalSlots }

// allocSlot takes a request slot from the free list or grows the arrays.
func (s *System) allocSlot() int32 {
	if len(s.freeSlots) > 0 {
		slot := s.freeSlots[len(s.freeSlots)-1]
		s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
		return slot
	}
	slot := int32(len(s.reqStripe))
	s.reqStripe = append(s.reqStripe, 0)
	s.reqStart = append(s.reqStart, 0)
	s.reqBox = append(s.reqBox, 0)
	s.reqViewer = append(s.reqViewer, 0)
	s.reqProgress = append(s.reqProgress, 0)
	s.reqActive = append(s.reqActive, false)
	s.posInActive = append(s.posInActive, -1)
	return slot
}

// schedule enqueues a future request on the pending ring. The due round
// must be within the ring's horizon (strategies schedule at most
// maxIssuanceDelay rounds ahead).
func (s *System) schedule(iss issuance) {
	delta := iss.round - s.round
	if delta <= 0 || delta > maxIssuanceDelay {
		panic(fmt.Sprintf("core: issuance scheduled %d rounds ahead (max %d)", delta, maxIssuanceDelay))
	}
	bucket := iss.round % len(s.pendingRing)
	s.pendingRing[bucket] = append(s.pendingRing[bucket], iss)
}

// issueRequest creates an active request and its cache entries.
func (s *System) issueRequest(stripe video.StripeID, requester, viewer, mirror int32) {
	slot := s.allocSlot()
	s.reqStripe[slot] = stripe
	s.reqStart[slot] = int32(s.round)
	s.reqBox[slot] = requester
	s.reqViewer[slot] = viewer
	s.reqProgress[slot] = 0
	s.reqActive[slot] = true
	s.activeReqs++
	s.posInActive[slot] = int32(len(s.activeList))
	s.activeList = append(s.activeList, slot)
	if s.sharded != nil {
		s.sharded.AddLeft(int(slot), s.shardOf(stripe))
	} else {
		s.matcher.AddLeft(int(slot))
	}
	if !s.cfg.DisableCacheServing {
		s.avail.add(stripe, entry{box: requester, start: int32(s.round), req: slot})
		if mirror >= 0 {
			s.avail.add(stripe, entry{box: mirror, start: int32(s.round + 1), req: slot, lag: 1})
		}
	}
	if s.activeReqs > s.metrics.peakRequests {
		s.metrics.peakRequests = s.activeReqs
	}
}

// retireRequest completes a request: frees the slot, freezes its cache
// entries, and releases the viewer when its last request finishes.
func (s *System) retireRequest(slot int32) {
	s.avail.retire(s.reqStripe[slot], slot, s.reqProgress[slot])
	if s.sharded != nil {
		s.sharded.RemoveLeft(int(slot))
	} else {
		s.matcher.RemoveLeft(int(slot))
	}
	s.reqActive[slot] = false
	s.activeReqs--
	// Swap-remove from the live list.
	pos := s.posInActive[slot]
	last := s.activeList[len(s.activeList)-1]
	s.activeList[pos] = last
	s.posInActive[last] = pos
	s.activeList = s.activeList[:len(s.activeList)-1]
	s.posInActive[slot] = -1
	s.freeSlots = append(s.freeSlots, slot)
	s.finishOne(s.reqViewer[slot])
}

// finishOne decrements a viewer's outstanding work and frees the box when
// everything (requests and scheduled issuances) has completed.
func (s *System) finishOne(viewer int32) {
	box := &s.boxes[viewer]
	box.outstanding--
	if box.outstanding == 0 && box.busy {
		box.busy = false
		s.markIdle(viewer)
		s.metrics.completedViewings++
	}
}

// shardOf maps a stripe to its owning shard (stripe mod Shards): requests
// for a stripe only edge into boxes possessing it, so lefts partition
// cleanly by stripe group.
func (s *System) shardOf(st video.StripeID) int { return int(st) % s.numShards }

// serverOf returns the global box serving request slot l, or -1.
func (s *System) serverOf(l int) int {
	if s.sharded != nil {
		return s.sharded.Server(l)
	}
	return s.matcher.Server(l)
}

// SetCapacity changes box b's upload capacity to slots mid-run (failure
// injection and the capacity-change rounds of the differential tests). The
// value is the matcher slot capacity — relay reservations, if any, are the
// caller's business. Lowering below the current load evicts assignments
// deterministically; the victims re-enter the dirty queue and are
// re-matched (or stall) on the next Step.
func (s *System) SetCapacity(b int, slots int64) error {
	if b < 0 || b >= s.n {
		return fmt.Errorf("core: SetCapacity of unknown box %d", b)
	}
	if slots < 0 {
		return fmt.Errorf("core: box %d capacity %d is negative", b, slots)
	}
	if slots > math.MaxInt32 {
		return fmt.Errorf("core: box %d capacity %d slots overflows the box record", b, slots)
	}
	s.totalSlots += slots - int64(s.boxes[b].capSlots)
	s.boxes[b].capSlots = int32(slots)
	if s.sharded != nil {
		s.sharded.SetCapacity(b, slots)
	} else {
		s.matcher.SetCapacity(b, slots)
	}
	return nil
}

// adjacency implements bipartite.Adjacency over the allocation and the
// playback caches — the graph G of Section 2.2.
type adjacency struct{ s *System }

// VisitServers enumerates B(x): allocation boxes first (they hold the full
// stripe), then swarm predecessors with enough progress.
func (a adjacency) VisitServers(left int, fn func(right int) bool) {
	s := a.s
	slot := int32(left)
	stripe := s.reqStripe[slot]
	requester := s.reqBox[slot]
	for _, b := range s.cfg.Alloc.ByStripe[stripe] {
		if b != requester {
			if !fn(int(b)) {
				return
			}
		}
	}
	if s.cfg.DisableCacheServing {
		return
	}
	s.avail.visit(stripe, requester, s.reqProgress[slot], s.reqProgress, fn)
}

// BeginServers implements bipartite.CursorAdjacency: the matcher's hot
// traversal path, replacing the closure form of VisitServers (whose
// captured locals escape to the heap on every probe). Stage 0 walks the
// allocation holders by index; stage 1 walks the availability store via
// its pull-style visitHead/visitStep cursor. Both substrates are
// quiescent during matching — entries are added/retired/expired only in
// other Step phases — so the live cursor sees exactly the sequence the
// callback form would.
func (a adjacency) BeginServers(left int, c *bipartite.Cursor) {
	c.Left = int32(left)
	c.Stage = 0
	c.Index = 0
}

// NextServer implements bipartite.CursorAdjacency; it yields -1 when the
// server list of the cursor's request is exhausted.
func (a adjacency) NextServer(c *bipartite.Cursor) int {
	s := a.s
	slot := c.Left
	stripe := s.reqStripe[slot]
	requester := s.reqBox[slot]
	if c.Stage == 0 {
		holders := s.cfg.Alloc.ByStripe[stripe]
		for int(c.Index) < len(holders) {
			b := holders[c.Index]
			c.Index++
			if b != requester {
				return int(b)
			}
		}
		if s.cfg.DisableCacheServing {
			c.Stage = 2
			return -1
		}
		c.Stage = 1
		c.ID = s.avail.visitHead(stripe)
	}
	if c.Stage == 1 {
		box, _, next := s.avail.visitStep(stripe, c.ID, requester, s.reqProgress[slot], s.reqProgress)
		c.ID = next
		if box >= 0 {
			return int(box)
		}
		c.Stage = 2
	}
	return -1
}

// CanServe mirrors VisitServers for a single candidate.
func (a adjacency) CanServe(left, right int) bool {
	s := a.s
	slot := int32(left)
	stripe := s.reqStripe[slot]
	requester := s.reqBox[slot]
	if int32(right) == requester {
		return false
	}
	for _, b := range s.cfg.Alloc.ByStripe[stripe] {
		if int(b) == right {
			return true
		}
	}
	if s.cfg.DisableCacheServing {
		return false
	}
	return s.avail.canServe(stripe, int32(right), s.reqProgress[slot], s.reqProgress)
}

// ServerCountHint implements bipartite.Hinted: a cheap upper bound on
// |B(x)| — allocation replicas plus live cache entries of the stripe. Zero
// certifies the request currently has no server at all, letting the
// matcher skip dead probes.
func (a adjacency) ServerCountHint(left int) int {
	s := a.s
	stripe := s.reqStripe[int32(left)]
	hint := len(s.cfg.Alloc.ByStripe[stripe])
	if !s.cfg.DisableCacheServing {
		hint += s.avail.live(stripe)
	}
	return hint
}

// StableEdge implements bipartite.Hinted: an assignment to a box that
// statically stores the stripe can never go stale — the allocation does
// not change and the requester exclusion is fixed per slot — so the
// matcher's Revalidate skips re-probing it.
func (a adjacency) StableEdge(left, right int) bool {
	s := a.s
	for _, b := range s.cfg.Alloc.ByStripe[s.reqStripe[int32(left)]] {
		if int(b) == right {
			return true
		}
	}
	return false
}

// selfPossesses reports whether box b already has stripe st available
// locally: stored by allocation, or completely cached from a recent
// viewing (frozen full-progress entry inside the window). The minStart
// bound re-states the cache window explicitly: the serial engine has
// already expired this round when admission asks (making the bound a
// no-op), but the sharded engine defers expiry into the fused match
// stage, so the bound is what masks the entries due to expire this round
// and keeps admission bit-identical across engines.
func (s *System) selfPossesses(b int32, st video.StripeID) bool {
	if s.cfg.Alloc.Stores(int(b), st) {
		return true
	}
	if s.cfg.DisableCacheServing {
		return false
	}
	return s.avail.hasFull(st, b, int32(s.cat.T), int32(s.round-s.cat.T))
}

// String summarizes the system state for debugging.
func (s *System) String() string {
	return fmt.Sprintf("system{n=%d %v round=%d active=%d viewers=%d}",
		s.n, s.cat, s.round, s.activeReqs, s.tracker.TotalViewers())
}
