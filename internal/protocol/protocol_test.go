package protocol

import (
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/netsim"
	"repro/internal/stats"
)

func cfg(seed uint64) netsim.Config {
	return netsim.Config{BaseLatency: 1, Jitter: 0.3, Seed: seed}
}

func TestTrivialMatch(t *testing.T) {
	inst := Instance{
		Candidates: [][]int32{{0}, {0, 1}},
		Caps:       []int64{1, 1},
	}
	res := Run(inst, cfg(1))
	if err := res.Verify(inst); err != nil {
		t.Fatal(err)
	}
	if res.Matched != 2 {
		t.Fatalf("matched %d, want 2", res.Matched)
	}
	if !res.Maximality(inst) {
		t.Fatal("matching not maximal")
	}
}

func TestUnservableRequest(t *testing.T) {
	inst := Instance{
		Candidates: [][]int32{{0}, {0}},
		Caps:       []int64{1},
	}
	res := Run(inst, cfg(2))
	if err := res.Verify(inst); err != nil {
		t.Fatal(err)
	}
	if res.Matched != 1 || res.Unserved != 1 {
		t.Fatalf("matched=%d unserved=%d", res.Matched, res.Unserved)
	}
}

func TestEmptyCandidates(t *testing.T) {
	inst := Instance{
		Candidates: [][]int32{{}},
		Caps:       []int64{1},
	}
	res := Run(inst, cfg(3))
	if res.Matched != 0 || res.Unserved != 1 {
		t.Fatalf("empty-candidate request should be unserved: %+v", res)
	}
}

func TestCapacityRespected(t *testing.T) {
	inst := Instance{
		Candidates: [][]int32{{0}, {0}, {0}, {0}, {0}},
		Caps:       []int64{3},
	}
	res := Run(inst, cfg(4))
	if err := res.Verify(inst); err != nil {
		t.Fatal(err)
	}
	if res.Matched != 3 {
		t.Fatalf("matched %d, want 3", res.Matched)
	}
}

func TestMessageBudget(t *testing.T) {
	// Each request sends at most |candidates| proposals, each answered
	// once: messages ≤ 2·Σ|candidates|.
	inst := Instance{
		Candidates: [][]int32{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}},
		Caps:       []int64{1, 1, 1},
	}
	res := Run(inst, cfg(5))
	if res.Messages > 24 {
		t.Fatalf("messages=%d exceeds budget 24", res.Messages)
	}
	if err := res.Verify(inst); err != nil {
		t.Fatal(err)
	}
	if res.Matched != 3 {
		t.Fatalf("matched %d, want 3 (capacity-limited)", res.Matched)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	inst := Instance{
		Candidates: [][]int32{{0, 1}, {1, 0}, {0, 1}},
		Caps:       []int64{1, 2},
	}
	a := Run(inst, cfg(6))
	b := Run(inst, cfg(6))
	if a.Matched != b.Matched || a.Messages != b.Messages || a.Time != b.Time {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("assignments differ")
		}
	}
}

func randomInstance(rng *stats.RNG) Instance {
	nR := 1 + rng.Intn(20)
	nS := 1 + rng.Intn(8)
	inst := Instance{Caps: make([]int64, nS)}
	for s := range inst.Caps {
		inst.Caps[s] = int64(rng.Intn(3))
	}
	for r := 0; r < nR; r++ {
		var cand []int32
		for s := 0; s < nS; s++ {
			if rng.Bool(0.4) {
				cand = append(cand, int32(s))
			}
		}
		inst.Candidates = append(inst.Candidates, cand)
	}
	return inst
}

// Property: the protocol always yields a valid, maximal matching.
func TestQuickValidMaximal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		inst := randomInstance(rng)
		res := Run(inst, cfg(seed))
		return res.Verify(inst) == nil && res.Maximality(inst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: maximality implies the protocol matches at least half of the
// optimum (classic maximal-matching bound, which for b-matching gives
// matched ≥ optimal/2).
func TestQuickHalfOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		inst := randomInstance(rng)
		res := Run(inst, cfg(seed))

		m := bipartite.NewMatcher(inst.Caps)
		adj := instAdj{inst}
		for r := range inst.Candidates {
			m.AddLeft(r)
		}
		m.AugmentAll(adj)
		optimal := m.MatchedCount()
		return 2*res.Matched >= optimal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// newExactMatcher returns the optimal matching size of an instance.
func newExactMatcher(inst Instance) int {
	m := bipartite.NewMatcher(inst.Caps)
	for r := range inst.Candidates {
		m.AddLeft(r)
	}
	m.AugmentAll(instAdj{inst})
	return m.MatchedCount()
}

type instAdj struct{ inst Instance }

func (a instAdj) VisitServers(l int, fn func(int) bool) {
	for _, s := range a.inst.Candidates[l] {
		if !fn(int(s)) {
			return
		}
	}
}

func (a instAdj) CanServe(l, r int) bool {
	for _, s := range a.inst.Candidates[l] {
		if int(s) == r {
			return true
		}
	}
	return false
}
