package vod

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ckpt"
)

// Checkpoint envelope. A checkpoint file is:
//
//	magic "VODCKPT1" | spec JSON (length-prefixed) | core state
//
// all through one varint codec stream. The spec travels inside the
// checkpoint so LoadCheckpoint can rebuild a process-equivalent System
// without the caller re-supplying the configuration; the core state
// additionally embeds a config fingerprint, so a checkpoint pasted onto a
// hand-edited spec is rejected rather than silently diverging.
//
// Version policy: the trailing digit of the magic is the envelope version
// and coreStateVersion (inside the core state) versions the state layout.
// Either mismatch fails loudly — checkpoints are short-lived operational
// artifacts (daemon restarts, migrations), not an archival format, so
// there is no cross-version migration path.
//
// Checkpoints must be taken between rounds (never mid-Step) and do not
// include the demand generator: the feed is an external input the
// operator reattaches after restore.

// checkpointMagic identifies a vod checkpoint stream, envelope version 1.
var checkpointMagic = []byte("VODCKPT1")

// SaveCheckpoint serializes the full system state to w. The system must
// be quiescent (between Step calls).
func (s *System) SaveCheckpoint(w io.Writer) error {
	cw := ckpt.NewWriter(w)
	cw.Bytes(checkpointMagic)
	specJSON, err := json.Marshal(s.spec)
	if err != nil {
		return fmt.Errorf("vod: encode spec: %w", err)
	}
	cw.Bytes(specJSON)
	if err := s.inner.EncodeState(cw); err != nil {
		return fmt.Errorf("vod: encode state: %w", err)
	}
	return cw.Flush()
}

// LoadCheckpoint rebuilds a System from a stream written by
// SaveCheckpoint. The restored system resumes bit-identically: stepping
// it with the same demand feed produces the same results the saved
// system would have produced.
func LoadCheckpoint(r io.Reader) (*System, error) {
	cr := ckpt.NewReader(r)
	magic := cr.Bytes()
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("vod: read checkpoint header: %w", err)
	}
	if !bytes.Equal(magic, checkpointMagic) {
		return nil, fmt.Errorf("vod: not a checkpoint (or unsupported version): magic %q", magic)
	}
	specJSON := cr.Bytes()
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("vod: read checkpoint spec: %w", err)
	}
	var spec Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return nil, fmt.Errorf("vod: decode checkpoint spec: %w", err)
	}
	sys, err := New(spec)
	if err != nil {
		return nil, fmt.Errorf("vod: rebuild from checkpoint spec: %w", err)
	}
	if err := sys.inner.DecodeState(cr); err != nil {
		return nil, fmt.Errorf("vod: decode checkpoint state: %w", err)
	}
	return sys, nil
}
