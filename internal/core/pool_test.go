package core

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/stats"
)

// waitGoroutines polls until the live goroutine count drops back to at
// most base (the runtime parks helper goroutines asynchronously after a
// channel close, so a single instantaneous read would be flaky).
func waitGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s: %d goroutines still live (baseline %d):\n%s",
				what, runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardPoolLifecycle pins the worker-pool contract: construction
// parks exactly shards-1 workers, rounds spawn none, Close releases them
// all, Close is idempotent, and Step after Close errors instead of
// hanging on a dead barrier.
func TestShardPoolLifecycle(t *testing.T) {
	// Warm the runtime (GC helpers, cleanup goroutine) so the baseline
	// below is not perturbed by lazily created runtime goroutines.
	warm := buildHomogeneous(t, 7, 18, 1, 4, 9, 2, 0.8, 2.0, func(c *Config) { c.Shards = 2; c.Failure = FailStall })
	if _, err := warm.Step(nil); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	waitGoroutines(t, runtime.NumGoroutine(), "warmup")

	base := runtime.NumGoroutine()
	const S = 4
	sys := buildHomogeneous(t, 43, 18, 1, 4, 9, 2, 0.8, 2.0, func(c *Config) { c.Shards = S; c.Failure = FailStall })
	if got := runtime.NumGoroutine(); got != base+S-1 {
		t.Errorf("construction: %d goroutines, want baseline %d + %d workers", got, base, S-1)
	}
	gen := &uniformGen{rng: stats.NewRNG(1213), p: 0.8}
	for r := 0; r < 40; r++ {
		if _, err := sys.Step(gen); err != nil {
			t.Fatal(err)
		}
	}
	// Persistent workers: rounds must not have spawned anything.
	if got := runtime.NumGoroutine(); got != base+S-1 {
		t.Errorf("after 40 rounds: %d goroutines, want %d (workers persist, rounds spawn none)", got, base+S-1)
	}
	sys.Close()
	sys.Close() // idempotent
	waitGoroutines(t, base, "after Close")

	if _, err := sys.Step(gen); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Step after Close: got err %v, want closed-system error", err)
	}
}

// TestShardPoolCheckpointRearm pins that restore re-arms, not leaks,
// workers: decoding a checkpoint into a freshly constructed sharded
// system leaves exactly its own worker set live, and the restored system
// still steps (its pool is armed) and Closes back to baseline.
func TestShardPoolCheckpointRearm(t *testing.T) {
	mk := func() *System {
		return buildHomogeneous(t, 43, 18, 1, 4, 9, 2, 0.8, 2.0, func(c *Config) { c.Shards = 3; c.Failure = FailStall })
	}
	warm := mk()
	warm.Close()
	waitGoroutines(t, runtime.NumGoroutine(), "warmup")
	base := runtime.NumGoroutine()

	src := mk()
	gen := &uniformGen{rng: stats.NewRNG(99), p: 0.7}
	for r := 0; r < 25; r++ {
		if _, err := src.Step(gen); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := src.EncodeState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	src.Close()
	waitGoroutines(t, base, "source closed")

	dst := mk()
	if err := dst.DecodeState(ckpt.NewReader(bytes.NewReader(buf.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if got := runtime.NumGoroutine(); got != base+2 {
		t.Errorf("restored system: %d goroutines, want baseline %d + 2 workers", got, base)
	}
	if _, err := dst.Step(gen); err != nil {
		t.Fatalf("restored system must step (pool re-armed): %v", err)
	}
	dst.Close()
	waitGoroutines(t, base, "restored system closed")
}
