package core

import (
	"repro/internal/video"
)

// View is the read-only window demand generators get on the system.
// Adversarial generators use it to aim at the weakest point the current
// state exposes; it exposes nothing a real-world adversary observing the
// system could not infer.
type View struct{ s *System }

// View returns the system's read-only view.
func (s *System) View() *View { return &View{s} }

// Round returns the current round.
func (v *View) Round() int { return v.s.round }

// NumBoxes returns the number of boxes.
func (v *View) NumBoxes() int { return v.s.n }

// Catalog returns the catalog.
func (v *View) Catalog() video.Catalog { return v.s.cat }

// BoxIdle reports whether box b can accept a demand this round.
func (v *View) BoxIdle(b int) bool {
	return !v.s.busy[b] && v.s.outstanding[b] == 0
}

// Upload returns the normalized upload capacity of box b.
func (v *View) Upload(b int) float64 { return v.s.cfg.Uploads[b] }

// UploadSlots returns the matching capacity of box b in stripe slots
// (after relay reservations).
func (v *View) UploadSlots(b int) int64 { return v.s.caps[b] }

// SwarmSize returns the current swarm size of a video.
func (v *View) SwarmSize(id video.ID) int { return v.s.tracker.Size(id) }

// SwarmAllowance returns how many boxes may still join the video's swarm
// this round under the growth bound µ.
func (v *View) SwarmAllowance(id video.ID) int { return v.s.tracker.Allowance(id) }

// Stores reports whether box b statically stores stripe st.
func (v *View) Stores(b int, st video.StripeID) bool { return v.s.cfg.Alloc.Stores(b, st) }

// Replicas returns the allocation replica count of a stripe.
func (v *View) Replicas(st video.StripeID) int { return v.s.cfg.Alloc.Replicas(st) }

// StripeHolders returns the boxes storing stripe st by allocation.
// The returned slice must not be modified.
func (v *View) StripeHolders(st video.StripeID) []int32 { return v.s.cfg.Alloc.ByStripe[st] }

// IdleBoxes appends the indices of all idle boxes to dst and returns it.
func (v *View) IdleBoxes(dst []int) []int {
	for b := 0; b < v.s.n; b++ {
		if v.BoxIdle(b) {
			dst = append(dst, b)
		}
	}
	return dst
}

// ActiveRequests returns the number of in-flight stripe requests.
func (v *View) ActiveRequests() int { return v.s.activeReqs }

// ServerLoad returns the matcher load of box b this round (slots in use
// as of the previous matching).
func (v *View) ServerLoad(b int) int64 { return v.s.matcher.Load(b) }
