package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/video"
)

func init() {
	register(Experiment{
		ID:   "E15",
		Name: "population-scaling",
		Claim: "with event-driven matcher invalidation and the idle-box index, per-round cost tracks " +
			"live work only: at a fixed arrival rate, u and c, the round rate stays roughly flat while " +
			"the box population grows into the 10⁵–10⁶ regime",
		Run: runE15,
	})
}

// boundedArrivals emits a fixed number of demands per round through the
// idle-box iterator, so generator cost is O(perRound) — it never scans
// the population. Videos rotate round-robin, keeping swarms small and
// the live request set proportional to the arrival rate, not to n.
type boundedArrivals struct {
	perRound  int
	nextVideo int
}

// Next implements core.Generator.
func (g *boundedArrivals) Next(v *core.View, _ int) []core.Demand {
	m := v.Catalog().M
	out := make([]core.Demand, 0, g.perRound)
	v.VisitIdle(func(b int) bool {
		vid := video.ID(g.nextVideo % m)
		g.nextVideo++
		if v.SwarmAllowance(vid) > 0 {
			out = append(out, core.Demand{Box: b, Video: vid})
		}
		return len(out) < g.perRound
	})
	return out
}

func runE15(o Options) Result {
	ns := pick(o, []int{512, 2048, 8192}, []int{4096, 32768, 262144, 1048576})
	const (
		d, c, T, k = 2, 4, 50, 4
		u, mu      = 2.0, 1.2
	)
	arrivals := pick(o, 32, 256)
	rounds := pick(o, 40, 120)
	warmup := T + 10 // past the first cache-window expiry: steady-state churn

	fig := report.NewFigure("E15: round cost vs population at fixed live work", "n", "µs/round")
	usPerRound := fig.AddSeries("µs/round (steady state)")

	tbl := report.New("E15: population scaling at fixed arrival rate",
		"n", "catalog m", "µs/round", "rounds/sec", "live requests", "admitted", "stalls")
	for _, n := range ns {
		p := homParams{n: n, d: d, c: c, T: T, u: u, mu: mu}
		sys, m, err := buildHom(mixSeed(o.Seed, uint64(n)), p, k, tweakFor(o, func(cfg *core.Config) {
			cfg.Failure = core.FailStall
		}))
		if err != nil {
			tbl.AddRow(report.Cell(n), "error: "+err.Error(), "", "", "", "", "")
			continue
		}
		gen := &boundedArrivals{perRound: arrivals}
		if _, err := sys.Run(gen, warmup); err != nil {
			tbl.AddRow(report.Cell(n), "error: "+err.Error(), "", "", "", "", "")
			continue
		}
		start := time.Now()
		if _, err := sys.Run(gen, rounds); err != nil {
			tbl.AddRow(report.Cell(n), "error: "+err.Error(), "", "", "", "", "")
			continue
		}
		elapsed := time.Since(start)
		rep := sys.Report()
		us := float64(elapsed.Microseconds()) / float64(rounds)
		perSec := float64(rounds) / elapsed.Seconds()
		usPerRound.Add(float64(n), us)
		tbl.AddRowValues(n, m, us, perSec, sys.View().ActiveRequests(), rep.Admitted, rep.Stalls)
	}
	tbl.AddNote("d=%d c=%d k=%d T=%d u=%.1f µ=%.1f; %d arrivals/round, %d timed rounds after %d warm-up",
		d, c, k, T, u, mu, arrivals, rounds, warmup)
	tbl.AddNote("claim shape: µs/round roughly flat in n (live requests are set by the arrival rate); " +
		"wall-clock timings are indicative — run with -seq on a quiet machine for clean numbers")
	return Result{ID: "E15", Name: "population-scaling", Claim: registry["E15"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
