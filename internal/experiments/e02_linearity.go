package experiments

import (
	"repro/internal/analysis"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:   "E2",
		Name: "catalog-linearity",
		Claim: "for u > 1 the achievable catalog grows linearly in n " +
			"(Theorem 1: m = Ω(n))",
		Run: runE2,
	})
}

func runE2(o Options) Result {
	base := homParams{d: 2, c: 4, T: pick(o, 16, 24), u: 1.5, mu: 1.2}
	ns := pick(o, []int{16, 24, 32}, []int{20, 40, 60, 80, 120})
	rounds := pick(o, 40, 80)
	seeds := pick(o, 1, 3)

	fig := report.NewFigure("E2: catalog vs population size at u = 1.5", "n", "catalog size m")
	measured := fig.AddSeries("measured")
	boundShape := fig.AddSeries("Theorem 1 bound shape (normalized)")

	tbl := report.New("E2: catalog linearity in n", "n", "max m", "k", "m / n")
	var firstM, firstBound float64
	for _, n := range ns {
		p := base
		p.n = n
		m, k, err := maxFeasibleCatalog(o, p, rounds, seeds, nil)
		if err != nil {
			tbl.AddRow(report.Cell(n), "error: "+err.Error(), "", "")
			continue
		}
		measured.Add(float64(n), float64(m))
		b := analysis.CatalogBound(analysis.HomogeneousParams{N: n, U: p.u, D: p.d, Mu: p.mu})
		if firstM == 0 && m > 0 {
			firstM, firstBound = float64(m), b
		}
		if firstBound > 0 {
			boundShape.Add(float64(n), b/firstBound*firstM)
		}
		tbl.AddRowValues(n, m, k, float64(m)/float64(n))
	}
	tbl.AddNote("u=%.2f d=%d c=%d µ=%.2f; bound shape scaled to match the first point", base.u, base.d, base.c, base.mu)
	tbl.AddNote("claim shape: m/n roughly constant (linear catalog)")
	return Result{ID: "E2", Name: "catalog-linearity", Claim: registry["E2"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
