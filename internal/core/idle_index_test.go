package core

import (
	"sort"
	"testing"

	"repro/internal/allocation"
	"repro/internal/stats"
	"repro/internal/video"
)

// TestIdleIndexMatchesLinearScan pins the intrusive idle-box set against
// the linear BoxIdle scan it replaced, across every transition that can
// change idleness: admission (busy), request issuance and retirement,
// and viewing completion (idle again). A random workload over enough
// rounds covers all of them, including re-admission of recycled boxes.
func TestIdleIndexMatchesLinearScan(t *testing.T) {
	sys := buildHomogeneous(t, 51, 30, 2, 4, 12, 6, 2.5, 1.3, nil)
	gen := &uniformGen{rng: stats.NewRNG(771), p: 0.45}
	v := sys.View()
	check := func(round int) {
		t.Helper()
		var want []int
		for b := 0; b < v.NumBoxes(); b++ {
			if v.BoxIdle(b) {
				want = append(want, b)
			}
		}
		got := v.IdleBoxes(nil)
		if len(got) != len(want) {
			t.Fatalf("round %d: IdleBoxes has %d boxes, linear scan %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: IdleBoxes[%d] = %d, linear scan %d (index order broken)",
					round, i, got[i], want[i])
			}
		}
		if v.NumIdle() != len(want) {
			t.Fatalf("round %d: NumIdle = %d, want %d", round, v.NumIdle(), len(want))
		}
		var visited []int
		v.VisitIdle(func(b int) bool {
			visited = append(visited, b)
			return true
		})
		sort.Ints(visited)
		for i := range visited {
			if visited[i] != want[i] {
				t.Fatalf("round %d: VisitIdle saw %v, want %v", round, visited, want)
			}
		}
		if len(want) > 1 {
			n := 0
			v.VisitIdle(func(int) bool {
				n++
				return n < 2
			})
			if n != 2 {
				t.Fatalf("round %d: VisitIdle early stop visited %d boxes", round, n)
			}
		}
	}
	check(0)
	for r := 1; r <= 120; r++ {
		if _, err := sys.Step(gen); err != nil {
			t.Fatal(err)
		}
		check(r)
	}
}

// TestIdleIndexInstantViewing covers the admit path that never marks the
// box busy: with every stripe self-possessed the viewing completes
// instantly and the box must remain in the idle set.
func TestIdleIndexInstantViewing(t *testing.T) {
	cat := video.MustCatalog(2, 2, 8)
	full, err := allocation.FullReplication(cat, []int{4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{Alloc: full, Uploads: []float64{2, 2}, Mu: 2, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 0, Video: 0}}}}
	if _, err := sys.Run(gen, 2); err != nil {
		t.Fatal(err)
	}
	v := sys.View()
	if got := v.IdleBoxes(nil); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("IdleBoxes after instant viewing = %v, want [0 1]", got)
	}
	if sys.Report().CompletedViewings != 1 {
		t.Fatal("instant viewing did not complete")
	}
}
