package serve

import (
	"os"
	"path/filepath"
	"testing"

	vod "repro"
)

func autoTestServer(t *testing.T) *Server {
	t.Helper()
	sys, err := vod.New(vod.Spec{Boxes: 30, Upload: 2.0, Duration: 8, Resilient: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return New(sys, false)
}

func listCheckpoints(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "ckpt-*.vodckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

// TestAutoCheckpointCadenceAndRetention steps 17 rounds at every=5 keep=2:
// checkpoints land at rounds 5, 10, 15 and only the two newest survive.
func TestAutoCheckpointCadenceAndRetention(t *testing.T) {
	srv := autoTestServer(t)
	dir := t.TempDir()
	if err := srv.EnableAutoCheckpoint(dir, 5, 2); err != nil {
		t.Fatal(err)
	}
	// Queue some demands so the checkpoints carry real state.
	srv.mu.Lock()
	for b := 0; b < 10; b++ {
		srv.pending = append(srv.pending, vod.Demand{Box: b, Video: vod.VideoID(b % 3)})
	}
	srv.mu.Unlock()
	if _, err := srv.StepRounds(17); err != nil {
		t.Fatal(err)
	}
	got := listCheckpoints(t, dir)
	want := []string{
		filepath.Join(dir, "ckpt-000000010.vodckpt"),
		filepath.Join(dir, "ckpt-000000015.vodckpt"),
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("retained checkpoints %v, want %v", got, want)
	}
	srv.mu.Lock()
	m := srv.metricsLocked()
	srv.mu.Unlock()
	if m.AutoCheckpoints != 3 {
		t.Errorf("auto_checkpoints = %d, want 3 (rounds 5, 10, 15)", m.AutoCheckpoints)
	}
	if m.LastCheckpoint != want[1] {
		t.Errorf("last_checkpoint = %q, want %q", m.LastCheckpoint, want[1])
	}
	if m.CheckpointError != "" {
		t.Errorf("unexpected checkpoint error %q", m.CheckpointError)
	}
}

// TestAutoCheckpointRestore restores the newest auto-checkpoint into a
// fresh process and checks the continuation is bit-identical to the
// uninterrupted run.
func TestAutoCheckpointRestore(t *testing.T) {
	dir := t.TempDir()

	run := func(auto bool) (*Server, []vod.StepResult) {
		srv := autoTestServer(t)
		if auto {
			if err := srv.EnableAutoCheckpoint(dir, 4, 3); err != nil {
				t.Fatal(err)
			}
		}
		srv.mu.Lock()
		for b := 0; b < 12; b++ {
			srv.pending = append(srv.pending, vod.Demand{Box: b, Video: vod.VideoID(b % 4)})
		}
		srv.mu.Unlock()
		if _, err := srv.StepRounds(12); err != nil {
			t.Fatal(err)
		}
		res, err := srv.StepRounds(6)
		if err != nil {
			t.Fatal(err)
		}
		return srv, res
	}

	_, wantTail := run(true)

	// The newest retained checkpoint is from round 16 (StepRounds(12) then
	// part of the tail); restore the round-12 one and replay the tail.
	ckpt := filepath.Join(dir, "ckpt-000000012.vodckpt")
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatalf("expected retained checkpoint at %s: %v", ckpt, err)
	}
	sys, err := vod.LoadCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Round() != 12 {
		t.Fatalf("restored round %d, want 12", sys.Round())
	}
	restored := New(sys, true)
	gotTail, err := restored.StepRounds(6)
	if err != nil {
		t.Fatal(err)
	}
	// The uninterrupted run's final 6 rounds and the restored run's 6
	// rounds cover the same round numbers with no queued demands: their
	// StepResults must agree exactly.
	if len(gotTail) != len(wantTail) {
		t.Fatalf("tail lengths differ: %d vs %d", len(gotTail), len(wantTail))
	}
	for i := range gotTail {
		if gotTail[i] != wantTail[i] {
			t.Fatalf("round %d diverged after restore:\ngot  %+v\nwant %+v", i, gotTail[i], wantTail[i])
		}
	}
}

// TestAutoCheckpointValidation rejects nonsensical configurations.
func TestAutoCheckpointValidation(t *testing.T) {
	srv := autoTestServer(t)
	if err := srv.EnableAutoCheckpoint(t.TempDir(), 0, 2); err == nil {
		t.Error("accepted interval 0")
	}
	if err := srv.EnableAutoCheckpoint(t.TempDir(), 5, 0); err == nil {
		t.Error("accepted retention 0")
	}
}
