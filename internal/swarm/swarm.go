// Package swarm tracks per-video swarm membership, enforces the paper's
// maximal swarm growth bound (f(t+1) ≤ ⌈max{f(t),1}·µ⌉, Section 1.1), and
// maintains the per-video round-robin counters that balance preloading
// requests over stripes (Section 3).
//
// The tracker is output-sensitive: per-round cost scales with the number
// of videos that currently carry swarm state, not with the catalog size,
// and the aggregate counters (viewers, active swarms, peak size) are
// maintained incrementally.
package swarm

import (
	"fmt"
	"math"

	"repro/internal/video"
)

// memberQueue is a FIFO of entry rounds with an explicit head so dequeues
// never reallocate; the backing array is recycled once fully drained.
type memberQueue struct {
	rounds []int
	head   int
}

func (q *memberQueue) push(round int) { q.rounds = append(q.rounds, round) }
func (q *memberQueue) empty() bool    { return q.head >= len(q.rounds) }
func (q *memberQueue) front() int     { return q.rounds[q.head] }
func (q *memberQueue) pop() {
	q.head++
	if q.head >= len(q.rounds) {
		q.rounds = q.rounds[:0]
		q.head = 0
	} else if q.head > 32 && q.head > len(q.rounds)/2 {
		// Compact so a never-draining queue (a perpetually hot video)
		// stays O(live members); each copy moves at most as many
		// elements as the pops that paid for it.
		n := copy(q.rounds, q.rounds[q.head:])
		q.rounds = q.rounds[:n]
		q.head = 0
	}
}

// Tracker follows swarm sizes across rounds. A box is a member of video
// v's swarm for exactly T rounds after entering.
type Tracker struct {
	mu    float64
	t     int // duration of membership (the video length T)
	m     int
	round int

	sizes   []int         // current swarm size per video
	prev    []int         // swarm size at the end of the previous round
	entered []int         // entries already admitted this round
	counter []int64       // preload round-robin counter per video
	expiry  []memberQueue // per video, entry rounds of current members

	// Dense list of videos carrying swarm state; BeginRound touches only
	// these. pos[v] is v's index in activeVids, or -1.
	activeVids []video.ID
	pos        []int32

	// spare recycles drained expiry-queue backing arrays across videos:
	// a deactivating video surrenders its backing here and the next video
	// to activate grabs one, so steady-state churn over fresh videos stops
	// paying a first-push allocation per activation (and retained memory
	// scales with concurrently-active videos, not videos ever touched).
	spare [][]int

	totalViewers int
	activeSwarms int
	maxEver      int
}

// NewTracker creates a tracker for m videos of duration t rounds with
// growth bound mu ≥ 1.
func NewTracker(m, t int, mu float64) *Tracker {
	if m <= 0 || t <= 0 || mu < 1 {
		panic(fmt.Sprintf("swarm: invalid tracker m=%d t=%d µ=%v", m, t, mu))
	}
	tr := &Tracker{
		mu:      mu,
		t:       t,
		m:       m,
		sizes:   make([]int, m),
		prev:    make([]int, m),
		entered: make([]int, m),
		counter: make([]int64, m),
		expiry:  make([]memberQueue, m),
		pos:     make([]int32, m),
	}
	for v := range tr.pos {
		tr.pos[v] = -1
	}
	return tr
}

// activate puts v on the live list, seeding its expiry queue from the
// spare pool if it has no backing yet.
func (tr *Tracker) activate(v video.ID) {
	if tr.pos[v] < 0 {
		tr.pos[v] = int32(len(tr.activeVids))
		tr.activeVids = append(tr.activeVids, v)
		if q := &tr.expiry[v]; q.rounds == nil && len(tr.spare) > 0 {
			q.rounds = tr.spare[len(tr.spare)-1]
			tr.spare = tr.spare[:len(tr.spare)-1]
		}
	}
}

// deactivateAt swap-removes the video at index i of the live list and
// returns its (drained) expiry backing to the spare pool.
func (tr *Tracker) deactivateAt(i int) {
	v := tr.activeVids[i]
	last := tr.activeVids[len(tr.activeVids)-1]
	tr.activeVids[i] = last
	tr.pos[last] = int32(i)
	tr.activeVids = tr.activeVids[:len(tr.activeVids)-1]
	tr.pos[v] = -1
	if q := &tr.expiry[v]; cap(q.rounds) > 0 {
		tr.spare = append(tr.spare, q.rounds[:0])
		q.rounds = nil
		q.head = 0
	}
}

// BeginRound advances the tracker to the given round: it snapshots the
// previous sizes (the f(t) of the growth bound) and expires members whose
// T rounds have elapsed. Rounds must be strictly increasing. Only videos
// with live swarm state are touched; a video leaves the live list one
// round after its swarm fully drains (so its f(t) snapshot reaches zero).
func (tr *Tracker) BeginRound(round int) {
	if round <= tr.round && round != 0 {
		panic(fmt.Sprintf("swarm: BeginRound(%d) after round %d", round, tr.round))
	}
	tr.round = round
	for i := 0; i < len(tr.activeVids); {
		v := tr.activeVids[i]
		tr.prev[v] = tr.sizes[v]
		tr.entered[v] = 0
		q := &tr.expiry[v]
		for !q.empty() && q.front()+tr.t <= round {
			q.pop()
			tr.sizes[v]--
			tr.totalViewers--
			if tr.sizes[v] == 0 {
				tr.activeSwarms--
			}
		}
		if tr.sizes[v] == 0 && tr.prev[v] == 0 && q.empty() {
			tr.deactivateAt(i) // swap-remove: revisit index i
		} else {
			i++
		}
	}
}

// Size returns the current swarm size of video v.
func (tr *Tracker) Size(v video.ID) int { return tr.sizes[v] }

// Allowance returns how many more boxes may enter v's swarm this round
// without violating the growth bound.
func (tr *Tracker) Allowance(v video.ID) int {
	f := tr.prev[v]
	base := f
	if base < 1 {
		base = 1
	}
	limit := int(math.Ceil(float64(base) * tr.mu))
	room := limit - tr.sizes[v]
	if room < 0 {
		return 0
	}
	return room
}

// Enter admits one box into v's swarm and returns the preload stripe index
// assigned by the round-robin counter (Section 3: the p-th box entering
// preloads stripe p mod c). It returns an error when the growth bound
// would be violated.
func (tr *Tracker) Enter(v video.ID, c int) (int, error) {
	if tr.Allowance(v) <= 0 {
		return 0, fmt.Errorf("swarm: growth bound µ=%v reached for video %d at round %d (size %d)",
			tr.mu, v, tr.round, tr.sizes[v])
	}
	idx := int(tr.counter[v] % int64(c))
	tr.counter[v]++
	if tr.sizes[v] == 0 {
		tr.activeSwarms++
	}
	tr.sizes[v]++
	tr.totalViewers++
	if tr.sizes[v] > tr.maxEver {
		tr.maxEver = tr.sizes[v]
	}
	tr.entered[v]++
	tr.activate(v)
	tr.expiry[v].push(tr.round)
	return idx, nil
}

// EnteredThisRound returns how many boxes entered v's swarm this round.
func (tr *Tracker) EnteredThisRound(v video.ID) int { return tr.entered[v] }

// Counter returns the total number of entries ever admitted to v's swarm.
func (tr *Tracker) Counter(v video.ID) int64 { return tr.counter[v] }

// ActiveSwarms returns the number of videos with a non-empty swarm.
func (tr *Tracker) ActiveSwarms() int { return tr.activeSwarms }

// TotalViewers returns the total swarm membership over all videos.
func (tr *Tracker) TotalViewers() int { return tr.totalViewers }

// MaxSize returns the largest current swarm size.
func (tr *Tracker) MaxSize() int {
	best := 0
	for _, v := range tr.activeVids {
		if tr.sizes[v] > best {
			best = tr.sizes[v]
		}
	}
	return best
}

// MaxSizeEver returns the largest swarm size ever reached. Since sizes
// only grow on Enter, this equals the maximum over rounds of MaxSize.
func (tr *Tracker) MaxSizeEver() int { return tr.maxEver }
