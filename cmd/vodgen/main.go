// Command vodgen expands a declarative scenario spec into a deterministic
// workload corpus. The corpus is a plain internal/trace file, so it flows
// through everything that already speaks that format: vodsim -replay,
// vodbench -scenario, and a running vodserve daemon via POST /demand.
//
// Examples:
//
//	vodgen -spec examples/scenarios/steady-zipf.yaml -o corpus.json
//	vodgen -spec spec.yaml -seed 7 -csv -o corpus.csv
//	vodgen -spec spec.yaml -post http://127.0.0.1:8080   # stream + step a daemon
//
// The same spec + seed produces a byte-identical corpus on every run,
// host, and shard count: generation never consults an engine, only the
// spec and the catalog geometry.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	var (
		specPath = flag.String("spec", "", "scenario spec file (YAML or JSON; required)")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = the spec's default seed)")
		out      = flag.String("o", "", "write the corpus to this file (default: stdout summary only)")
		csv      = flag.Bool("csv", false, "write the corpus as CSV instead of JSON")
		post     = flag.String("post", "", "stream the corpus to a vodserve daemon at this base URL, stepping one round per batch")
		quiet    = flag.Bool("quiet", false, "suppress the summary line")
	)
	flag.Parse()

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "vodgen: -spec is required")
		os.Exit(2)
	}
	spec, err := scenario.ParseFile(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodgen:", err)
		os.Exit(1)
	}
	ex, err := scenario.Expand(spec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodgen:", err)
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vodgen:", err)
			os.Exit(1)
		}
		if *csv {
			err = ex.Trace.WriteCSV(f)
		} else {
			err = ex.Trace.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "vodgen:", err)
			os.Exit(1)
		}
	}

	if *post != "" {
		if err := stream(*post, spec, ex.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "vodgen:", err)
			os.Exit(1)
		}
	}

	if !*quiet {
		st := ex.Trace.Summarize()
		fmt.Printf("scenario %s seed %d: %d demands over %d rounds (%d boxes, %d videos, peak %d/round, %d dropped) %s\n",
			spec.Name, ex.Seed, st.Events, spec.TotalRounds(), st.DistinctBoxes,
			st.DistinctVids, st.PeakPerRound, ex.Dropped, scenario.CorpusHash(ex.Trace))
	}
}

// stream delivers the corpus to a vodserve daemon on its round clock: for
// every scenario round, POST the round's demands as one /demand batch,
// then advance the daemon one round with POST /step — so the daemon plays
// the scenario exactly as vodsim -replay would.
func stream(base string, spec *scenario.Spec, tr *trace.Trace) error {
	type demandIn struct {
		Box   int `json:"box"`
		Video int `json:"video"`
	}
	post := func(path string, payload any) error {
		body, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var msg struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&msg)
			return fmt.Errorf("%s: %s %s", path, resp.Status, msg.Error)
		}
		return nil
	}

	pos := 0
	for round := 1; round <= spec.TotalRounds(); round++ {
		var batch []demandIn
		for pos < len(tr.Events) && tr.Events[pos].Round == round {
			e := tr.Events[pos]
			batch = append(batch, demandIn{Box: e.Box, Video: int(e.Video)})
			pos++
		}
		if len(batch) > 0 {
			if err := post("/demand", map[string]any{"demands": batch}); err != nil {
				return err
			}
		}
		if err := post("/step", map[string]int{"rounds": 1}); err != nil {
			return err
		}
	}
	return nil
}
