package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/trace"
)

const exampleDir = "../../examples/scenarios"

// referenceSpecs loads every committed reference scenario.
func referenceSpecs(t *testing.T) map[string]*Spec {
	t.Helper()
	entries, err := os.ReadDir(exampleDir)
	if err != nil {
		t.Fatalf("reading %s: %v", exampleDir, err)
	}
	specs := map[string]*Spec{}
	for _, e := range entries {
		ext := filepath.Ext(e.Name())
		if e.IsDir() || (ext != ".yaml" && ext != ".json") {
			continue
		}
		path := filepath.Join(exampleDir, e.Name())
		s, err := ParseFile(path)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		base := strings.TrimSuffix(e.Name(), ext)
		if s.Name != base {
			t.Errorf("%s: spec name %q does not match file name", path, s.Name)
		}
		specs[s.Name] = s
	}
	if len(specs) < 6 {
		t.Fatalf("expected at least 6 reference scenarios, found %d", len(specs))
	}
	return specs
}

// TestReferenceGoldens runs every reference scenario end-to-end and pins
// its summary against the committed golden file. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/scenario -run TestReferenceGoldens
func TestReferenceGoldens(t *testing.T) {
	specs := referenceSpecs(t)
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		s := specs[name]
		t.Run(name, func(t *testing.T) {
			res, err := Run(s, RunOptions{})
			if err != nil {
				t.Fatalf("running %s: %v", name, err)
			}
			got := res.GoldenSummary()
			golden := filepath.Join(exampleDir, "golden", name+".txt")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("summary drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestCorpusByteIdentity pins the determinism claim: the same spec + seed
// expands to a byte-identical corpus on every run.
func TestCorpusByteIdentity(t *testing.T) {
	for name, s := range referenceSpecs(t) {
		a, err := Expand(s, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Expand(s, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var bufA, bufB bytes.Buffer
		if err := a.Trace.WriteCSV(&bufA); err != nil {
			t.Fatal(err)
		}
		if err := b.Trace.WriteCSV(&bufB); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Errorf("%s: two expansions of the same spec+seed differ", name)
		}
		if a.Trace.Len() == 0 {
			t.Errorf("%s: generated an empty corpus", name)
		}
		if CorpusHash(a.Trace) != CorpusHash(b.Trace) {
			t.Errorf("%s: corpus hashes differ", name)
		}
	}
}

// TestShardInvariance pins that a scenario run is bit-identical at every
// shard count — the whole golden summary, not just the corpus.
func TestShardInvariance(t *testing.T) {
	specs := referenceSpecs(t)
	for _, name := range []string{"steady-zipf", "hetero-churn"} {
		s, ok := specs[name]
		if !ok {
			t.Fatalf("reference scenario %s missing", name)
		}
		base, err := Run(s, RunOptions{Shards: 1})
		if err != nil {
			t.Fatalf("%s shards=1: %v", name, err)
		}
		for _, shards := range []int{2, 4} {
			res, err := Run(s, RunOptions{Shards: shards})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if got, want := res.GoldenSummary(), base.GoldenSummary(); got != want {
				t.Errorf("%s: shards=%d summary differs from serial:\n--- got ---\n%s--- want ---\n%s",
					name, shards, got, want)
			}
		}
	}
}

// TestGenerateReplayRoundTrip pins the corpus path end to end: the
// generated trace survives CSV and JSON serialization event-for-event,
// and a Replayer re-emits exactly the generated demands.
func TestGenerateReplayRoundTrip(t *testing.T) {
	s := mustParse(t, minimalSpec)
	ex, err := Expand(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	var csv, js bytes.Buffer
	if err := ex.Trace.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := ex.Trace.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := trace.ReadCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := trace.ReadJSON(&js)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV.Events) != len(ex.Trace.Events) || len(fromJSON.Events) != len(ex.Trace.Events) {
		t.Fatalf("event counts diverged: gen=%d csv=%d json=%d",
			len(ex.Trace.Events), len(fromCSV.Events), len(fromJSON.Events))
	}
	for i := range ex.Trace.Events {
		if fromCSV.Events[i] != ex.Trace.Events[i] {
			t.Fatalf("csv event %d: got %+v want %+v", i, fromCSV.Events[i], ex.Trace.Events[i])
		}
		if fromJSON.Events[i] != ex.Trace.Events[i] {
			t.Fatalf("json event %d: got %+v want %+v", i, fromJSON.Events[i], ex.Trace.Events[i])
		}
	}
	// Replay re-emits exactly the recorded demands, round by round.
	rp := trace.NewReplayer(fromCSV)
	pos := 0
	for round := 1; round <= s.TotalRounds(); round++ {
		for _, d := range rp.Next(nil, round) {
			e := ex.Trace.Events[pos]
			if e.Round != round || e.Box != d.Box || e.Video != d.Video {
				t.Fatalf("replay event %d: got round=%d %+v want %+v", pos, round, d, e)
			}
			pos++
		}
	}
	if pos != len(ex.Trace.Events) {
		t.Fatalf("replay emitted %d of %d events", pos, len(ex.Trace.Events))
	}
}

const minimalSpec = `
scenario: 1
name: minimal
seed: 5
system:
  boxes: 200
  upload: 1.5
  stripes: 6
  duration: 20
phases:
  - name: only
    rounds: 60
    arrival:
      process: poisson
      rate: 4
`

func mustParse(t *testing.T, text string) *Spec {
	t.Helper()
	s, err := Parse([]byte(text), "test.yaml")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

// TestSeedChangesCorpus guards against the seed being ignored.
func TestSeedChangesCorpus(t *testing.T) {
	s := mustParse(t, minimalSpec)
	a, err := Expand(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(s, 6)
	if err != nil {
		t.Fatal(err)
	}
	if CorpusHash(a.Trace) == CorpusHash(b.Trace) {
		t.Fatal("different seeds produced identical corpora")
	}
}
