package analysis

import (
	"math"
	"testing"
)

func TestIndependentMinCGrowsWithN(t *testing.T) {
	mu := 1.1
	u := 3.0
	prev := 0
	for _, n := range []int{100, 1000, 10000, 100000} {
		c, err := IndependentMinC(params(n, u, 4, mu))
		if err != nil {
			t.Fatal(err)
		}
		if c < prev {
			t.Errorf("c shrank with n: %d after %d", c, prev)
		}
		if c < int(math.Ceil(2*math.Log2(float64(n)))) {
			t.Errorf("n=%d: c=%d below the log n floor", n, c)
		}
		prev = c
	}
}

func TestIndependentMinCRespectsTheoremBound(t *testing.T) {
	// At small n and tight u the Theorem 1 bound can dominate the log n
	// floor.
	p := params(4, 1.05, 4, 1.5) // MinC = (2·2.25−1)/0.05 = 70
	c, err := IndependentMinC(p)
	if err != nil {
		t.Fatal(err)
	}
	minc, _ := MinC(p.U, p.Mu)
	if c < minc {
		t.Errorf("c=%d below Theorem 1 bound %d", c, minc)
	}
	if _, err := IndependentMinC(params(100, 0.9, 4, 1.1)); err == nil {
		t.Error("u<1 should fail")
	}
}

func TestIndependentMinKRegime(t *testing.T) {
	p := params(10000, 3.0, 4, 1.1)
	c, err := IndependentMinC(p)
	if err != nil {
		t.Fatal(err)
	}
	k, err := IndependentMinK(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 {
		t.Fatalf("k=%d", k)
	}
	// Outside the u > 2 regime the corollary must refuse.
	if _, err := IndependentMinK(params(10000, 1.5, 4, 1.1), c); err == nil {
		t.Error("u ≤ 2 should fail the corollary")
	}
	// ν ≤ 0 must also refuse.
	if _, err := IndependentMinK(params(10000, 2.1, 4, 3.0), 2); err == nil {
		t.Error("c below the ν bound should fail")
	}
}

func TestIndependentCatalogBoundShape(t *testing.T) {
	// Ω(n/log n): super-linear denominator — the ratio bound/n must fall,
	// but bound itself must grow.
	prevBound := 0.0
	prevRatio := math.Inf(1)
	for _, n := range []int{1000, 10000, 100000} {
		b := IndependentCatalogBound(params(n, 3.0, 4, 1.1))
		if b <= prevBound {
			t.Errorf("bound not growing: %v after %v", b, prevBound)
		}
		ratio := b / float64(n)
		if ratio >= prevRatio {
			t.Errorf("bound/n not falling: %v after %v", ratio, prevRatio)
		}
		prevBound, prevRatio = b, ratio
	}
	if IndependentCatalogBound(params(1000, 1.5, 4, 1.1)) != 0 {
		t.Error("bound outside u>2 regime should be 0")
	}
}

func TestNewIndependentPlan(t *testing.T) {
	plan, err := NewIndependentPlan(params(100000, 3.0, 4, 1.1))
	if err != nil {
		t.Fatal(err)
	}
	if plan.C <= 0 || plan.K <= 0 || plan.M <= 0 || plan.Bound <= 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	// The permutation plan at the same parameters needs fewer stripes
	// (no log n floor).
	perm, err := NewPlan(params(100000, 3.0, 4, 1.1))
	if err != nil {
		t.Fatal(err)
	}
	if plan.C < perm.C {
		t.Errorf("independent c=%d below permutation c=%d", plan.C, perm.C)
	}
	if _, err := NewIndependentPlan(params(100000, 1.5, 4, 1.1)); err == nil {
		t.Error("u ≤ 2 should fail")
	}
	if _, err := NewIndependentPlan(HomogeneousParams{}); err == nil {
		t.Error("invalid params should fail")
	}
}
