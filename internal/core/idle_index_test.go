package core

import (
	"sort"
	"testing"

	"repro/internal/allocation"
	"repro/internal/stats"
	"repro/internal/video"
)

// TestIdleIndexMatchesLinearScan pins the intrusive idle-box set against
// the linear BoxIdle scan it replaced, across every transition that can
// change idleness: admission (busy), request issuance and retirement,
// and viewing completion (idle again). A random workload over enough
// rounds covers all of them, including re-admission of recycled boxes.
func TestIdleIndexMatchesLinearScan(t *testing.T) {
	sys := buildHomogeneous(t, 51, 30, 2, 4, 12, 6, 2.5, 1.3, nil)
	gen := &uniformGen{rng: stats.NewRNG(771), p: 0.45}
	v := sys.View()
	check := func(round int) {
		t.Helper()
		var want []int
		for b := 0; b < v.NumBoxes(); b++ {
			if v.BoxIdle(b) {
				want = append(want, b)
			}
		}
		got := v.IdleBoxes(nil)
		if len(got) != len(want) {
			t.Fatalf("round %d: IdleBoxes has %d boxes, linear scan %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: IdleBoxes[%d] = %d, linear scan %d (index order broken)",
					round, i, got[i], want[i])
			}
		}
		if v.NumIdle() != len(want) {
			t.Fatalf("round %d: NumIdle = %d, want %d", round, v.NumIdle(), len(want))
		}
		var visited []int
		v.VisitIdle(func(b int) bool {
			visited = append(visited, b)
			return true
		})
		sort.Ints(visited)
		for i := range visited {
			if visited[i] != want[i] {
				t.Fatalf("round %d: VisitIdle saw %v, want %v", round, visited, want)
			}
		}
		if len(want) > 1 {
			n := 0
			v.VisitIdle(func(int) bool {
				n++
				return n < 2
			})
			if n != 2 {
				t.Fatalf("round %d: VisitIdle early stop visited %d boxes", round, n)
			}
		}
	}
	check(0)
	for r := 1; r <= 120; r++ {
		if _, err := sys.Step(gen); err != nil {
			t.Fatal(err)
		}
		check(r)
	}
}

// TestIdleBitsDifferential pins the hierarchical bitmap in isolation
// against a boolean-slice reference, across population sizes straddling
// every level-count boundary (1–3 levels) and including the exact word
// boundaries where the partial-top-word masking in initFull can go wrong.
func TestIdleBitsDifferential(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 4095, 4096, 4097, 70000} {
		rng := stats.NewRNG(uint64(n))
		var ib idleBits
		ib.initFull(n)
		ref := make([]bool, n)
		for i := range ref {
			ref[i] = true
		}
		check := func(op string) {
			t.Helper()
			var want []int
			for b, idle := range ref {
				if idle {
					want = append(want, b)
				}
			}
			got := ib.appendAscending(nil)
			if len(got) != len(want) {
				t.Fatalf("n=%d after %s: %d present, want %d", n, op, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d after %s: element %d = %d, want %d", n, op, i, got[i], want[i])
				}
			}
		}
		check("initFull")
		for op := 0; op < 400; op++ {
			b := int32(rng.Intn(n))
			if ref[b] {
				ib.clear(b)
			} else {
				ib.set(b)
			}
			ref[b] = !ref[b]
			if op%57 == 0 || op > 380 {
				check("ops")
			}
		}
		ib.initEmpty(n)
		if got := ib.appendAscending(nil); len(got) != 0 {
			t.Fatalf("n=%d: initEmpty left %v present", n, got)
		}
	}
}

// TestIdleBoxesMatchesSortedIdleList is the randomized differential for
// the order-maintaining idle index: at every round of a random workload,
// IdleBoxes (bitmap enumeration) must equal the sorted linear scan of
// idleList — the exact output the per-call sort used to produce.
func TestIdleBoxesMatchesSortedIdleList(t *testing.T) {
	sys := buildHomogeneous(t, 64, 40, 2, 4, 10, 5, 2.5, 1.4, nil)
	gen := &uniformGen{rng: stats.NewRNG(902), p: 0.5}
	v := sys.View()
	dst := []int{}
	for r := 1; r <= 150; r++ {
		if _, err := sys.Step(gen); err != nil {
			t.Fatal(err)
		}
		want := make([]int, len(sys.idleList))
		for i, b := range sys.idleList {
			want[i] = int(b)
		}
		sort.Ints(want)
		dst = v.IdleBoxes(dst[:0])
		if len(dst) != len(want) {
			t.Fatalf("round %d: IdleBoxes returned %d boxes, sorted idleList has %d", r, len(dst), len(want))
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("round %d: IdleBoxes[%d] = %d, sorted idleList %d", r, i, dst[i], want[i])
			}
		}
	}
}

// TestVisitIdleEarlyStop pins VisitIdle's early-stop contract: returning
// false from the callback stops the walk immediately — exactly k boxes
// visited for every prefix length k — and the boxes seen are idleList's
// first k in its insertion order.
func TestVisitIdleEarlyStop(t *testing.T) {
	sys := buildHomogeneous(t, 37, 20, 2, 4, 8, 4, 2.5, 1.3, nil)
	gen := &uniformGen{rng: stats.NewRNG(313), p: 0.1}
	v := sys.View()
	idle := 0
	for r := 1; r <= 200; r++ {
		if _, err := sys.Step(gen); err != nil {
			t.Fatal(err)
		}
		if idle = v.NumIdle(); idle >= 3 {
			break
		}
	}
	if idle < 3 {
		t.Fatalf("workload left only %d idle boxes; want ≥ 3 for prefix coverage", idle)
	}
	for k := 0; k <= idle; k++ {
		var seen []int
		v.VisitIdle(func(b int) bool {
			seen = append(seen, b)
			return len(seen) < k
		})
		// A callback that immediately returns false still sees one box.
		wantLen := k
		if wantLen == 0 {
			wantLen = 1
		}
		if len(seen) != wantLen {
			t.Fatalf("early stop at k=%d visited %d boxes", k, len(seen))
		}
		for i, b := range seen {
			if int32(b) != sys.idleList[i] {
				t.Fatalf("k=%d: VisitIdle[%d] = %d, idleList order says %d", k, i, b, sys.idleList[i])
			}
		}
	}
}

// TestIdleIndexInstantViewing covers the admit path that never marks the
// box busy: with every stripe self-possessed the viewing completes
// instantly and the box must remain in the idle set.
func TestIdleIndexInstantViewing(t *testing.T) {
	cat := video.MustCatalog(2, 2, 8)
	full, err := allocation.FullReplication(cat, []int{4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{Alloc: full, Uploads: []float64{2, 2}, Mu: 2, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 0, Video: 0}}}}
	if _, err := sys.Run(gen, 2); err != nil {
		t.Fatal(err)
	}
	v := sys.View()
	if got := v.IdleBoxes(nil); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("IdleBoxes after instant viewing = %v, want [0 1]", got)
	}
	if sys.Report().CompletedViewings != 1 {
		t.Fatal("instant viewing did not complete")
	}
}
