package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
	StdErr float64 // standard error of the mean
}

// Summarize computes descriptive statistics. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
		s.StdErr = s.Std / math.Sqrt(float64(s.N))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Quantile(sorted, 0.50)
	s.P90 = Quantile(sorted, 0.90)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already-sorted
// sample, using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary compactly for logs and example output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// MeanCI95 returns the 95% normal-approximation confidence interval of the
// mean as (low, high).
func (s Summary) MeanCI95() (float64, float64) {
	delta := 1.96 * s.StdErr
	return s.Mean - delta, s.Mean + delta
}

// Histogram is a fixed-width-bin histogram over a closed interval.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
	Total  int
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
// It panics on invalid arguments.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // rounding guard
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of all observations that landed in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Counter tallies labeled integer events; used for per-round event
// accounting in simulations.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Add increments label by delta.
func (c *Counter) Add(label string, delta int64) { c.counts[label] += delta }

// Get returns the tally for label (0 if never added).
func (c *Counter) Get(label string) int64 { return c.counts[label] }

// Labels returns all labels in sorted order.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
