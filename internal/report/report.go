// Package report renders experiment results as aligned text tables,
// Markdown, and CSV. The benchmark harness and the vodbench binary use it
// to print every reproduced table and figure series in a uniform format.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with one header row. Cells are stored as
// strings; use the Add* helpers for formatting numbers consistently.
type Table struct {
	Title string
	Notes []string // free-form caption lines printed under the title
	Cols  []string
	Rows  [][]string
}

// New creates an empty table with the given title and column headers.
func New(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddNote appends a caption line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddRow appends a row of raw cells. It panics if the arity does not match
// the header, which catches experiment-harness bugs early.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Cols) {
		panic(fmt.Sprintf("report: row has %d cells, table %q has %d columns", len(cells), t.Title, len(t.Cols)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowValues appends a row, formatting each value with Cell.
func (t *Table) AddRowValues(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = Cell(v)
	}
	t.AddRow(cells...)
}

// Cell formats a single value for table display.
func Cell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(x float64) string {
	switch {
	case x != x: // NaN
		return "NaN"
	case x != 0 && (x < 1e-3 && x > -1e-3 || x >= 1e7 || x <= -1e7):
		return fmt.Sprintf("%.3e", x)
	case x == float64(int64(x)):
		return fmt.Sprintf("%d", int64(x))
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   %s\n", n)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the table to a string.
func (t *Table) Text() string {
	var b strings.Builder
	_ = t.WriteText(&b) // strings.Builder never errors
	return b.String()
}

// WriteMarkdown renders a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
	}
	b.WriteString("| " + strings.Join(t.Cols, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Cols)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders RFC-4180-ish CSV (quotes cells containing separators).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is a named (x, y) sequence — the unit of "figure" reproduction.
// A figure is one or more series over a common x-axis.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Figure groups series sharing an x-axis, mirroring a paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, registers, and returns a named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Table converts the figure to a table with one x column and one column per
// series (points matched by index; series may have different lengths).
func (f *Figure) Table() *Table {
	cols := append([]string{f.XLabel}, make([]string, len(f.Series))...)
	for i, s := range f.Series {
		cols[i+1] = s.Name
	}
	t := New(f.Title, cols...)
	t.AddNote("y-axis: %s", f.YLabel)
	n := 0
	for _, s := range f.Series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, len(cols))
		row[0] = ""
		for j, s := range f.Series {
			if i < s.Len() {
				if row[0] == "" {
					row[0] = formatFloat(s.X[i])
				}
				row[j+1] = formatFloat(s.Y[i])
			} else {
				row[j+1] = ""
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Text renders the figure as its table form.
func (f *Figure) Text() string { return f.Table().Text() }

// ASCIIPlot renders a crude monochrome scatter of the first series, useful
// for eyeballing shapes in terminal output. Width/height are in characters.
func (f *Figure) ASCIIPlot(width, height int) string {
	if len(f.Series) == 0 || width < 8 || height < 4 {
		return ""
	}
	minX, maxX, minY, maxY := rangeOf(f.Series)
	if !(maxX > minX) {
		maxX = minX + 1
	}
	if !(maxY > minY) {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := 0; i < s.Len(); i++ {
			cx := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
			cy := int(float64(height-1) * (s.Y[i] - minY) / (maxY - minY))
			grid[height-1-cy][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [y: %s in %.4g..%.4g]\n", f.Title, f.YLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " x: %s in %.4g..%.4g", f.XLabel, minX, maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "   [%c] %s", marks[si%len(marks)], s.Name)
	}
	b.WriteString("\n")
	return b.String()
}

func rangeOf(series []*Series) (minX, maxX, minY, maxY float64) {
	first := true
	for _, s := range series {
		for i := 0; i < s.Len(); i++ {
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	return
}
