// Command vodbench runs the reproduction experiment suite: every table and
// figure in the experiment index (DESIGN.md §5) can be regenerated from
// here. Results print as aligned text tables; use -format to get Markdown
// or CSV for EXPERIMENTS.md.
//
// Usage:
//
//	vodbench                 # run everything, quick sizes
//	vodbench -full           # full-size run (minutes)
//	vodbench -run E1,E5      # selected experiments
//	vodbench -list           # list experiment IDs and claims
//	vodbench -scenario s.yaml # run one declarative scenario spec
//	vodbench -format md      # markdown output
//	vodbench -plot           # add ASCII plots of figure series
//	vodbench -seq            # run experiments sequentially
//	vodbench -serial-augment # per-root matcher reference (ablation)
//
// Experiments run concurrently on a worker pool by default (output is
// buffered until every selected experiment finishes and prints in index
// order); -seq restores one-at-a-time streaming output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		runIDs  = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		full    = flag.Bool("full", false, "full-size runs (default: quick)")
		seed    = flag.Uint64("seed", 42, "master random seed")
		workers = flag.Int("workers", 0, "Monte-Carlo trial pool: how many independent trials run concurrently (0 = GOMAXPROCS); for parallelism inside one simulated system see -shards")
		shards  = flag.Int("shards", 0, "intra-run parallelism: shards per simulated round engine (0 = serial engine); results are bit-identical at any shard count")
		format  = flag.String("format", "text", "output format: text, md, csv")
		plot    = flag.Bool("plot", false, "render ASCII plots for figures (text format only)")
		seq     = flag.Bool("seq", false, "run experiments sequentially, streaming output")
		serial  = flag.Bool("serial-augment", false, "use the matcher's per-root serial augmentation reference instead of blocking-flow batch phases")
		scen    = flag.String("scenario", "", "run a declarative scenario spec (YAML/JSON) instead of the experiment suite")
	)
	flag.Parse()
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "vodbench: -shards %d is negative; use 0 for the serial engine or a positive shard count\n", *shards)
		os.Exit(1)
	}

	switch *format {
	case "text", "md", "csv":
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(1)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-20s %s\n", e.ID, e.Name, e.Claim)
		}
		return
	}

	if *scen != "" {
		// Only an explicit -seed overrides the spec's own default seed,
		// so a bare `vodbench -scenario s.yaml` reproduces the spec's
		// committed golden corpus.
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		spec, err := scenario.ParseFile(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opt := scenario.RunOptions{Shards: *shards}
		if seedSet {
			opt.Seed = *seed
		}
		run, err := scenario.Run(spec, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printResult(experiments.Result{
			ID:     "scenario",
			Name:   spec.Name,
			Claim:  "spec-driven workload; same spec + seed reproduces this corpus and report byte-for-byte",
			Tables: run.Tables(),
		}, *format, *plot)
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: !*full, Workers: *workers, SerialAugment: *serial, Shards: *shards}
	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	if *seq {
		for _, e := range selected {
			printResult(e.Run(opts), *format, *plot)
		}
		return
	}
	for _, res := range experiments.RunMany(opts, selected) {
		printResult(res, *format, *plot)
	}
}

func printResult(res experiments.Result, format string, plot bool) {
	switch format {
	case "text":
		fmt.Println(res.Text())
		if plot {
			for _, f := range res.Figures {
				fmt.Println(f.ASCIIPlot(72, 18))
			}
		}
	case "md":
		fmt.Printf("## %s — %s\n\n> %s\n\n", res.ID, res.Name, res.Claim)
		for _, t := range res.Tables {
			if err := t.WriteMarkdown(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		for _, f := range res.Figures {
			if err := f.Table().WriteMarkdown(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case "csv":
		for _, t := range res.Tables {
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		for _, f := range res.Figures {
			if err := f.Table().WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	default:
		panic(fmt.Sprintf("format %q not rejected by flag validation", format))
	}
}
