package hetero

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestHomogeneousProfile(t *testing.T) {
	p := Homogeneous(10, 1.5, 4)
	if p.N() != 10 || p.AvgUpload() != 1.5 || p.AvgStorage() != 4 {
		t.Fatalf("profile wrong: %+v", p)
	}
}

func TestBimodalProfile(t *testing.T) {
	p := Bimodal(10, 0.3, 3.0, 0.5, 2.0)
	rich, poor := 0, 0
	for i, u := range p.Uploads {
		switch u {
		case 3.0:
			rich++
		case 0.5:
			poor++
		default:
			t.Fatalf("unexpected upload %v", u)
		}
		if math.Abs(p.Storage[i]-2*u) > 1e-12 {
			t.Fatalf("storage not proportional at %d", i)
		}
	}
	if rich != 3 || poor != 7 {
		t.Fatalf("rich=%d poor=%d", rich, poor)
	}
}

func TestDSLMix(t *testing.T) {
	rng := stats.NewRNG(3)
	tiers := map[float64]float64{0.5: 0.5, 1.0: 0.3, 4.0: 0.2}
	p := DSLMix(rng, 1000, tiers, 2)
	counts := map[float64]int{}
	for _, u := range p.Uploads {
		counts[u]++
	}
	if len(counts) != 3 {
		t.Fatalf("tiers seen: %v", counts)
	}
	if f := float64(counts[0.5]) / 1000; math.Abs(f-0.5) > 0.06 {
		t.Errorf("tier 0.5 frequency %v", f)
	}
}

func TestPeerAssistedServer(t *testing.T) {
	p := PeerAssistedServer(5, 100, 50, 0, 0)
	if p.Uploads[0] != 100 || p.Storage[0] != 50 {
		t.Fatal("server capacities wrong")
	}
	for i := 1; i < 5; i++ {
		if p.Uploads[i] != 0 || p.Storage[i] != 0 {
			t.Fatal("client capacities wrong")
		}
	}
}

func TestCompensateSimple(t *testing.T) {
	// One poor box (0.5) needing u*+1−2·0.5 = 1.5; one rich box with
	// spare 3−1.5 = 1.5: exactly feasible.
	relays, err := Compensate([]float64{0.5, 3.0}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if relays[0] != 1 || relays[1] != core.NoRelay {
		t.Fatalf("relays = %v", relays)
	}
}

func TestCompensateInfeasible(t *testing.T) {
	if _, err := Compensate([]float64{0.5, 1.6}, 1.5); err == nil {
		t.Fatal("under-provisioned system should fail")
	}
	if _, err := Compensate([]float64{0.5, 0.6}, 1.5); err == nil {
		t.Fatal("all-poor system should fail")
	}
	if _, err := Compensate([]float64{2, 2}, 1.0); err == nil {
		t.Fatal("u* ≤ 1 should fail")
	}
}

func TestCompensateNoPoor(t *testing.T) {
	relays, err := Compensate([]float64{2, 3}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range relays {
		if r != core.NoRelay {
			t.Fatal("rich boxes must have no relay")
		}
	}
}

func TestCompensateRespectsCapacity(t *testing.T) {
	// 4 poor boxes at 0.5 (need 1.5 each); 2 rich at 4.5 (spare 3 each):
	// exactly 2 per relay.
	us := []float64{0.5, 0.5, 0.5, 0.5, 4.5, 4.5}
	relays, err := Compensate(us, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	load := map[int]float64{}
	for b, r := range relays {
		if us[b] < 1.5 {
			if r == core.NoRelay {
				t.Fatalf("poor box %d unassigned", b)
			}
			load[r] += 1.5
		}
	}
	for a, l := range load {
		if l > us[a]-1.5+1e-9 {
			t.Fatalf("relay %d overloaded: %v reserved", a, l)
		}
	}
	rl := SummarizeRelays(us, relays, 1.5)
	if rl.PoorBoxes != 4 || rl.RichBoxes != 2 || rl.Relays != 2 || rl.MaxPerRelay != 2 {
		t.Fatalf("summary: %+v", rl)
	}
	if math.Abs(rl.TotalReserved-6) > 1e-9 {
		t.Fatalf("total reserved %v, want 6", rl.TotalReserved)
	}
}

func TestAllocationSlots(t *testing.T) {
	storage := []float64{1, 6, 6}
	slots, m, err := AllocationSlots(storage, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Total 52 slots; m = 52/8 = 6; 48 slots used; trim 4.
	if m != 6 {
		t.Fatalf("m = %d, want 6", m)
	}
	total := 0
	for _, s := range slots {
		total += s
	}
	if total != 48 {
		t.Fatalf("slot total = %d, want 48", total)
	}
	// No slot count went negative; small box untouched.
	if slots[0] != 4 {
		t.Errorf("small box trimmed: %d", slots[0])
	}
	if _, _, err := AllocationSlots([]float64{0.1}, 4, 2); err == nil {
		t.Error("tiny storage should fail")
	}
	if _, _, err := AllocationSlots([]float64{-1}, 4, 2); err == nil {
		t.Error("negative storage should fail")
	}
	if _, _, err := AllocationSlots([]float64{4}, 0, 2); err == nil {
		t.Error("c=0 should fail")
	}
}

func TestEffectiveStorageBalance(t *testing.T) {
	p := Bimodal(10, 0.5, 3.0, 1.0, 2.0)
	// Proportional with ratio 2 and d/u* = 4/1.5 ≈ 2.67 ≥ 2: balanced.
	if !p.EffectiveStorageBalance(1.5, 1.1) {
		t.Error("proportional population should be balanced")
	}
}

// Property: Compensate never overloads a relay and never leaves a poor
// box unassigned when it succeeds.
func TestQuickCompensateSound(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw%20) + 2
		uStar := 1.2 + rng.Float64()
		us := make([]float64, n)
		for i := range us {
			if rng.Bool(0.4) {
				us[i] = rng.Float64() * uStar // poor
			} else {
				us[i] = uStar + rng.Float64()*6 // rich
			}
		}
		relays, err := Compensate(us, uStar)
		if err != nil {
			return true // infeasible is a legal outcome
		}
		load := make([]float64, n)
		for b, r := range relays {
			if us[b] < uStar {
				if r == core.NoRelay || us[r] < uStar {
					return false
				}
				load[r] += uStar + 1 - 2*us[b]
			} else if r != core.NoRelay {
				return false
			}
		}
		for a, l := range load {
			if l > 0 && us[a] < uStar+l-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: AllocationSlots conserves totals and never exceeds a box's
// storage.
func TestQuickAllocationSlots(t *testing.T) {
	f := func(seed uint64, nRaw, cRaw, kRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw%12) + 1
		c := int(cRaw%8) + 1
		k := int(kRaw%4) + 1
		storage := make([]float64, n)
		for i := range storage {
			storage[i] = 1 + rng.Float64()*8
		}
		slots, m, err := AllocationSlots(storage, c, k)
		if err != nil {
			return true
		}
		total := 0
		for b, s := range slots {
			if s < 0 || float64(s) > storage[b]*float64(c)+1e-6 {
				return false
			}
			total += s
		}
		return total == m*k*c && m >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
