package experiments

import (
	"repro/internal/core"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:   "E9",
		Name: "sourcing-baseline",
		Claim: "sourcing-only designs (Push-to-Peer-style: caches never serve) " +
			"achieve far smaller catalogs than sourcing+swarming at equal resources " +
			"(§1.2 related work vs. Theorem 1)",
		Run: runE9,
	})
}

func runE9(o Options) Result {
	p := homParams{n: pick(o, 24, 48), d: 2, c: 4, T: pick(o, 16, 24), mu: 1.2}
	us := pick(o, []float64{1.5, 2.5}, []float64{1.25, 1.5, 2.0, 2.5, 3.0})
	rounds := pick(o, 40, 80)
	seeds := pick(o, 1, 3)

	tbl := report.New("E9: sourcing-only baseline vs full system",
		"u", "max m (swarming)", "max m (sourcing-only)", "advantage ×")
	fig := report.NewFigure("E9: catalog, swarming vs sourcing-only", "u", "catalog size m")
	sw := fig.AddSeries("sourcing+swarming (ours)")
	so := fig.AddSeries("sourcing-only baseline")

	for _, u := range us {
		p.u = u
		mSwarm, _, err := maxFeasibleCatalog(o, p, rounds, seeds, nil)
		if err != nil {
			tbl.AddRow(report.Cell(u), "error: "+err.Error(), "", "")
			continue
		}
		mSrc, _, err := maxFeasibleCatalog(o, p, rounds, seeds, func(cfg *core.Config) {
			cfg.DisableCacheServing = true
		})
		if err != nil {
			tbl.AddRow(report.Cell(u), "error: "+err.Error(), "", "")
			continue
		}
		sw.Add(u, float64(mSwarm))
		so.Add(u, float64(mSrc))
		adv := 0.0
		if mSrc > 0 {
			adv = float64(mSwarm) / float64(mSrc)
		}
		tbl.AddRowValues(u, mSwarm, mSrc, adv)
	}
	tbl.AddNote("n=%d d=%d c=%d µ=%.2f; identical allocations and adversaries, caches disabled for the baseline",
		p.n, p.d, p.c, p.mu)
	tbl.AddNote("claim shape: swarming dominates, increasingly so at higher u (flash crowds saturate fixed sourcing capacity)")
	return Result{ID: "E9", Name: "sourcing-baseline", Claim: registry["E9"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
