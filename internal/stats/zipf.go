package stats

import "math"

// Zipf samples from a Zipf(s) distribution over {0, 1, ..., n-1}: item i is
// drawn with probability proportional to 1/(i+1)^s. Video-on-demand
// popularity is classically modeled as Zipf-like, so the workload
// generators use this for realistic (non-adversarial) demand mixes.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n items with exponent s >= 0 (s = 0 is the
// uniform distribution). It panics if n <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one item index using the provided generator.
func (z *Zipf) Sample(r *RNG) int {
	x := r.Float64()
	// Binary search for the first cdf entry >= x.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of item i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
