package scenario

import (
	"fmt"
	"math"

	vod "repro"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/video"
)

// VodSpec resolves the spec's system section into a vod.Spec with the
// same defaults vod.New would apply (Storage 4, Duration 100, Growth 1.2,
// Replicas 4), applied here too so the corpus generator sees the
// effective values. Scenario runs are always Resilient: a workload that
// provokes an obstruction should count stalls and keep going, not halt
// the corpus mid-run.
func (s *Spec) VodSpec(seed uint64) vod.Spec {
	sys := s.System
	vs := vod.Spec{
		Boxes:     sys.Boxes,
		Upload:    sys.Upload,
		Storage:   sys.Storage,
		Stripes:   sys.Stripes,
		Replicas:  sys.Replicas,
		Duration:  sys.Duration,
		Growth:    sys.Growth,
		UStar:     sys.UStar,
		Resilient: true,
		Seed:      seed,
	}
	if vs.Storage == 0 {
		vs.Storage = 4
	}
	if vs.Duration == 0 {
		vs.Duration = 100
	}
	if vs.Growth == 0 {
		vs.Growth = 1.2
	}
	if vs.Replicas == 0 {
		vs.Replicas = 4
	}
	if len(sys.Tiers) > 0 {
		uploads := make([]float64, sys.Boxes)
		storages := make([]float64, sys.Boxes)
		// Cumulative rounding so tier sizes always sum to exactly Boxes.
		start, cum := 0, 0.0
		for i, t := range sys.Tiers {
			cum += t.Frac
			end := int(math.Round(cum * float64(sys.Boxes)))
			if i == len(sys.Tiers)-1 {
				end = sys.Boxes
			}
			for b := start; b < end; b++ {
				uploads[b] = t.Upload
				storages[b] = t.Storage
			}
			start = end
		}
		vs.Uploads = uploads
		vs.Storages = storages
	}
	return vs
}

// Expanded is a spec expanded into a concrete corpus.
type Expanded struct {
	Spec *Spec
	// Seed is the seed actually used (the caller's, or the spec default).
	Seed uint64
	// VodSpec is the resolved system configuration the corpus targets.
	VodSpec vod.Spec
	// Catalog is the catalog that configuration achieves.
	Catalog video.Catalog
	// Trace is the generated workload corpus.
	Trace *trace.Trace
	// Dropped counts arrivals the generator suppressed because its
	// admission model found no admissible (box, video) pair — demand the
	// system could not have absorbed anyway.
	Dropped int
}

// Expand generates the deterministic workload corpus for spec + seed.
// seed == 0 selects the spec's default seed. Generation never consults a
// running engine — only the spec and the catalog geometry — so the corpus
// is byte-identical across runs, hosts, and shard counts by construction.
func Expand(s *Spec, seed uint64) (*Expanded, error) {
	if seed == 0 {
		seed = s.Seed
	}
	vs := s.VodSpec(seed)
	sys, err := vod.New(vs)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	cat := sys.Catalog()
	g := newGen(s, vs, cat, seed)
	tr := g.run()
	tr.Meta = fmt.Sprintf("scenario=%s version=%d seed=%d boxes=%d videos=%d stripes=%d duration=%d growth=%v",
		s.Name, Version, seed, vs.Boxes, cat.M, cat.C, cat.T, vs.Growth)
	return &Expanded{Spec: s, Seed: seed, VodSpec: vs, Catalog: cat, Trace: tr, Dropped: g.dropped}, nil
}

// gen is the population model: who is idle, which region they sit in,
// and a mirror of the engine's swarm growth-bound state. The mirror
// re-implements swarm.Tracker's admission arithmetic (membership lasts
// exactly T rounds from entry; allowance = ceil(max(prevSize,1)·µ) −
// size) so the generator emits demands the engine will admit. It is a
// model, not the engine: startup postponement can keep an engine box busy
// past T rounds, which BusySlack absorbs conservatively; any residual
// rejections are deterministic and show up pinned in the golden
// summaries.
type gen struct {
	spec *Spec
	vs   vod.Spec
	cat  video.Catalog
	rng  *stats.RNG

	total int // scenario length in rounds
	busy  int // rounds a box stays ineligible after a demand (T + slack)

	// Idle boxes per region, swap-removed on selection. Region of box b
	// is b·R/n (contiguous equal ranges).
	idle    [][]int
	returns [][]int // returns[r] = boxes becoming eligible again at round r

	// Swarm growth-bound mirror (see swarm.Tracker).
	sizes    []int
	prev     []int
	expiry   [][]int // per video, entry rounds of current members
	exHead   []int
	active   []video.ID
	inActive []bool

	// Per-(window,exponent) Zipf samplers, reused across rounds.
	zipfs map[zipfKey]*stats.Zipf

	churnCursor int // rotating fresh-video cursor shared across phases
	dropped     int

	out []trace.Event
}

type zipfKey struct {
	n int
	s float64
}

func newGen(s *Spec, vs vod.Spec, cat video.Catalog, seed uint64) *gen {
	n := vs.Boxes
	g := &gen{
		spec: s,
		vs:   vs,
		cat:  cat,
		// Decorrelate the workload stream from the allocation stream,
		// which consumes NewRNG(seed) directly.
		rng:      stats.NewRNG(seed ^ 0xd1b54a32d192ed03),
		total:    s.TotalRounds(),
		busy:     cat.T + s.BusySlack,
		idle:     make([][]int, s.Regions),
		sizes:    make([]int, cat.M),
		prev:     make([]int, cat.M),
		expiry:   make([][]int, cat.M),
		exHead:   make([]int, cat.M),
		inActive: make([]bool, cat.M),
		zipfs:    map[zipfKey]*stats.Zipf{},
	}
	g.returns = make([][]int, g.total+2)
	for b := 0; b < n; b++ {
		r := b * s.Regions / n
		g.idle[r] = append(g.idle[r], b)
	}
	return g
}

func (g *gen) zipf(window int, exp float64) *stats.Zipf {
	k := zipfKey{window, exp}
	z := g.zipfs[k]
	if z == nil {
		z = stats.NewZipf(window, exp)
		g.zipfs[k] = z
	}
	return z
}

// beginRound mirrors swarm.Tracker.BeginRound: snapshot prev sizes, then
// expire members whose T rounds have elapsed.
func (g *gen) beginRound(round int) {
	for i := 0; i < len(g.active); {
		v := g.active[i]
		g.prev[v] = g.sizes[v]
		q := g.expiry[v]
		for g.exHead[v] < len(q) && q[g.exHead[v]]+g.cat.T <= round {
			g.exHead[v]++
			g.sizes[v]--
		}
		if g.exHead[v] >= len(q) {
			g.expiry[v] = q[:0]
			g.exHead[v] = 0
		}
		if g.sizes[v] == 0 && g.prev[v] == 0 && g.exHead[v] >= len(g.expiry[v]) {
			last := len(g.active) - 1
			g.active[i] = g.active[last]
			g.active = g.active[:last]
			g.inActive[v] = false
		} else {
			i++
		}
	}
}

func (g *gen) allowance(v video.ID) int {
	base := g.prev[v]
	if base < 1 {
		base = 1
	}
	room := int(math.Ceil(float64(base)*g.vs.Growth)) - g.sizes[v]
	if room < 0 {
		return 0
	}
	return room
}

// emit records one demand and updates both models.
func (g *gen) emit(round, box int, v video.ID) {
	g.out = append(g.out, trace.Event{Round: round, Box: box, Video: v})
	g.sizes[v]++
	g.expiry[v] = append(g.expiry[v], round)
	if !g.inActive[v] {
		g.inActive[v] = true
		g.active = append(g.active, v)
	}
	back := round + g.busy
	if back >= len(g.returns) {
		back = len(g.returns) - 1
	}
	g.returns[back] = append(g.returns[back], box)
}

// takeIdle removes and returns the idle box at position i of region r.
func (g *gen) takeIdle(r, i int) int {
	pool := g.idle[r]
	b := pool[i]
	last := len(pool) - 1
	pool[i] = pool[last]
	g.idle[r] = pool[:last]
	return b
}

// pickIdle draws a uniform idle box across all regions except dark
// (-1 = none dark). Returns -1 when every eligible region is empty.
func (g *gen) pickIdle(dark int) int {
	total := 0
	for r, pool := range g.idle {
		if r != dark {
			total += len(pool)
		}
	}
	if total == 0 {
		return -1
	}
	i := g.rng.Intn(total)
	for r, pool := range g.idle {
		if r == dark {
			continue
		}
		if i < len(pool) {
			return g.takeIdle(r, i)
		}
		i -= len(pool)
	}
	panic("scenario: pickIdle index out of range")
}

// window returns the demandable catalog prefix size at phase round t.
func (g *gen) window(p *Phase, t int) int {
	if p.Catalog == nil {
		return g.cat.M
	}
	w := int(math.Floor(p.Catalog.Initial*float64(g.cat.M) + p.Catalog.Rate*float64(t)))
	if w < 1 {
		w = 1
	}
	if w > g.cat.M {
		w = g.cat.M
	}
	return w
}

// rankVideo maps popularity rank k to a video id at phase round t,
// applying drift rotation and the newest-first orientation.
func rankVideo(pop *Popularity, k, window, t int) video.ID {
	offset := 0
	if pop != nil && pop.Drift > 0 {
		offset = int(math.Floor(pop.Drift * float64(t)))
	}
	pos := (k + offset) % window
	if pop != nil && pop.Newest {
		return video.ID(window - 1 - pos)
	}
	return video.ID(pos)
}

// defaultPopularity is the phase popularity when none is declared.
var defaultPopularity = Popularity{Model: "zipf", S: 0.9}

// sampleVideo draws a video for phase p at phase round t, retrying a
// bounded number of times when the growth-bound mirror says the sampled
// swarm is full. Returns -1 when no admissible video was found.
func (g *gen) sampleVideo(p *Phase, t int) video.ID {
	pop := p.Popularity
	if pop == nil {
		pop = &defaultPopularity
	}
	w := g.window(p, t)
	const tries = 8
	for i := 0; i < tries; i++ {
		var rank int
		if pop.Model == "uniform" {
			rank = g.rng.Intn(w)
		} else {
			rank = g.zipf(w, pop.S).Sample(g.rng)
		}
		v := rankVideo(pop, rank, w, t)
		if g.allowance(v) > 0 {
			return v
		}
	}
	return -1
}

// diurnalFactor modulates an arrival intensity by the phase's cycle.
func diurnalFactor(d *Diurnal, t int) float64 {
	if d == nil {
		return 1
	}
	return 1 + d.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(d.Period))
}

// poisson draws a Poisson(lambda) count (Knuth's product method, split
// into chunks so the running product never underflows).
func (g *gen) poisson(lambda float64) int {
	total := 0
	for lambda > 500 {
		total += g.poisson(500)
		lambda -= 500
	}
	if lambda <= 0 {
		return total
	}
	limit := math.Exp(-lambda)
	p, k := 1.0, 0
	for p > limit {
		k++
		p *= g.rng.Float64()
	}
	return total + k - 1
}

// run executes the scenario, producing events in deterministic order:
// per round, churn wave → flash flood → outage reconnect surge →
// background arrivals.
func (g *gen) run() *trace.Trace {
	surgeLeft, flashLeft := 0, 0
	flashTarget := video.ID(0)
	lastPhase := -1
	for round := 1; round <= g.total; round++ {
		g.beginRound(round)
		for _, b := range g.returns[round] {
			r := b * g.spec.Regions / g.vs.Boxes
			g.idle[r] = append(g.idle[r], b)
		}
		g.returns[round] = nil

		p, t := g.spec.PhaseAt(round)
		if p == nil {
			break
		}
		if pi := g.phaseIndex(p); pi != lastPhase {
			lastPhase = pi
			if p.Outage != nil {
				surgeLeft = p.Outage.Surge
			}
			if p.Arrival != nil && p.Arrival.Process == "flash" {
				flashLeft = p.Arrival.Size // 0 = unbounded
				// Lock the flood onto the video that is hottest as the
				// crowd forms; popularity keeps drifting underneath it.
				flashTarget = rankVideo(p.Popularity, 0, g.window(p, t), t)
			}
		}

		dark := -1
		if p.Outage != nil && t < p.Outage.Down {
			dark = p.Outage.Region
		}

		if p.Churn != nil && t%p.Churn.Period == 0 {
			g.churnWave(round, p.Churn.Wave, dark)
		}
		if p.Arrival != nil && p.Arrival.Process == "flash" {
			flashLeft = g.flashFlood(round, p, t, dark, flashLeft, flashTarget)
		}
		if p.Outage != nil && t >= p.Outage.Down && surgeLeft > 0 {
			surgeLeft = g.reconnectSurge(round, p, t, surgeLeft)
		}
		g.background(round, p, t, dark)
	}
	return &trace.Trace{Events: g.out}
}

func (g *gen) phaseIndex(p *Phase) int {
	for i := range g.spec.Phases {
		if &g.spec.Phases[i] == p {
			return i
		}
	}
	return -1
}

// churnWave emits Wave demands aimed at fresh videos: a rotating cursor
// walks the catalog from the cold end, filling each video up to its
// growth allowance before advancing — maximal playback-cache window
// turnover and (engine-side) fresh right-space registration.
func (g *gen) churnWave(round, wave, dark int) {
	skips := 0
	for emitted := 0; emitted < wave; {
		v := video.ID(g.cat.M - 1 - (g.churnCursor % g.cat.M))
		if g.allowance(v) == 0 {
			g.churnCursor++
			skips++
			if skips >= g.cat.M {
				// Full lap without room anywhere: the bound is global.
				g.dropped += wave - emitted
				return
			}
			continue
		}
		skips = 0
		b := g.pickIdle(dark)
		if b < 0 {
			g.dropped += wave - emitted
			return
		}
		g.emit(round, b, v)
		emitted++
	}
	g.churnCursor++
}

// flashFlood floods the flash target at the maximal admissible rate, so
// the crowd snowballs geometrically under the growth bound (size 2, 3,
// 4, 5, 7, … for µ=1.2). Returns the remaining flood budget.
func (g *gen) flashFlood(round int, p *Phase, t, dark, left int, target video.ID) int {
	if p.Arrival.Size > 0 && left <= 0 {
		return left
	}
	n := g.allowance(target)
	if p.Arrival.Size > 0 && n > left {
		n = left
	}
	for i := 0; i < n; i++ {
		b := g.pickIdle(dark)
		if b < 0 {
			break
		}
		g.emit(round, b, target)
		if p.Arrival.Size > 0 {
			left--
		}
	}
	return left
}

// reconnectSurge drains the outage region's backlog as fast as the
// growth bound admits. Returns the remaining surge budget.
func (g *gen) reconnectSurge(round int, p *Phase, t, left int) int {
	region := p.Outage.Region
	misses := 0
	for left > 0 && len(g.idle[region]) > 0 && misses < 8 {
		v := g.sampleVideo(p, t)
		if v < 0 {
			misses++
			continue
		}
		b := g.takeIdle(region, g.rng.Intn(len(g.idle[region])))
		g.emit(round, b, v)
		left--
	}
	return left
}

// background runs the phase's base arrival process.
func (g *gen) background(round int, p *Phase, t, dark int) {
	a := p.Arrival
	if a == nil {
		return
	}
	switch a.Process {
	case "poisson":
		count := g.poisson(a.Rate * diurnalFactor(a.Diurnal, t))
		for i := 0; i < count; i++ {
			v := g.sampleVideo(p, t)
			if v < 0 {
				g.dropped++
				continue
			}
			b := g.pickIdle(dark)
			if b < 0 {
				g.dropped += count - i
				return
			}
			g.emit(round, b, v)
		}
	case "bernoulli":
		prob := a.P * diurnalFactor(a.Diurnal, t)
		if prob > 1 {
			prob = 1
		}
		// One binomial draw over the eligible idle population, then
		// uniform box picks: identical in distribution to per-box coins,
		// without iterating pools mid-mutation.
		eligible := 0
		for r, pool := range g.idle {
			if r != dark {
				eligible += len(pool)
			}
		}
		count := 0
		for i := 0; i < eligible; i++ {
			if g.rng.Float64() < prob {
				count++
			}
		}
		for i := 0; i < count; i++ {
			v := g.sampleVideo(p, t)
			if v < 0 {
				g.dropped++
				continue
			}
			b := g.pickIdle(dark)
			if b < 0 {
				g.dropped += count - i
				return
			}
			g.emit(round, b, v)
		}
	}
}
