package analysis

import (
	"math"
)

// This file implements the "large n" corollary stated after Theorem 1 for
// random *independent* allocations: box storage loads are unbalanced, so
// the stripe count must additionally grow like log n, at which point
//
//	u′ ≥ u/2,   ν⁻¹ ~ u·c/(u−1),
//	k = O( u/(u−1) · log d′ / log(u/2) · log n )
//
// suffices and the achievable catalog becomes
//
//	m = Ω( (u−1)·log(u/2)/u · d/log d′ · n/log n ).
//
// Note the corollary needs u > 2 for log(u/2) to be positive (the paper's
// asymptotic regime); below that, use the permutation-allocation plan.

// IndependentMinC returns the stripe count for a random independent
// allocation: the maximum of the Theorem 1 bound and ⌈2·log₂ n⌉ (the
// Ω(log n) balance requirement; base-2 with constant 2 keeps the overflow
// probability vanishing at practical sizes — experiment E8).
func IndependentMinC(p HomogeneousParams) (int, error) {
	c, err := MinC(p.U, p.Mu)
	if err != nil {
		return 0, err
	}
	logN := int(math.Ceil(2 * math.Log2(float64(p.N))))
	if logN > c {
		c = logN
	}
	return c, nil
}

// IndependentMinK returns the corollary's replication factor
// k = ⌈ν⁻¹ · 5·log d′ / log(u/2)⌉ evaluated with u′ replaced by its
// large-n lower bound u/2. It fails for u ≤ 2, outside the corollary's
// regime.
func IndependentMinK(p HomogeneousParams, c int) (int, error) {
	if p.U <= 2 {
		return 0, ErrBelowThreshold
	}
	nu := Nu(p.U, c, p.Mu)
	if nu <= 0 {
		return 0, ErrBelowThreshold
	}
	dPrime := DPrime(float64(p.D), p.U)
	k := 5 / nu * math.Log(dPrime) / math.Log(p.U/2)
	return int(math.Ceil(k)), nil
}

// IndependentCatalogBound evaluates the corollary's catalog shape
// (u−1)·log(u/2)/u · d/log d′ · n/log n (zero outside the u > 2 regime).
func IndependentCatalogBound(p HomogeneousParams) float64 {
	if p.U <= 2 || p.N < 2 {
		return 0
	}
	dPrime := DPrime(float64(p.D), p.U)
	return (p.U - 1) * math.Log(p.U/2) / p.U *
		float64(p.D) / math.Log(dPrime) *
		float64(p.N) / math.Log(float64(p.N))
}

// IndependentPlan is the corollary analogue of Plan.
type IndependentPlan struct {
	Params HomogeneousParams
	C      int
	K      int
	M      int
	Bound  float64
}

// NewIndependentPlan derives the full corollary parameterization.
func NewIndependentPlan(p HomogeneousParams) (IndependentPlan, error) {
	if err := p.Validate(); err != nil {
		return IndependentPlan{}, err
	}
	c, err := IndependentMinC(p)
	if err != nil {
		return IndependentPlan{}, err
	}
	k, err := IndependentMinK(p, c)
	if err != nil {
		return IndependentPlan{}, err
	}
	return IndependentPlan{
		Params: p,
		C:      c,
		K:      k,
		M:      CatalogSize(p.N, p.D, k),
		Bound:  IndependentCatalogBound(p),
	}, nil
}
