package core

import "math/bits"

// idleBits is the order-maintaining half of the idle-box index: a
// hierarchical bitmap over box ids mirroring idleList's membership. The
// dense idleList answers VisitIdle/NumIdle in insertion order (that order
// is pinned by golden runs and serialized in checkpoints, so it must not
// change); the bitmap answers IdleBoxes' sorted enumeration directly, in
// O(idle) with no per-call sort — the per-round sort.Ints over ~n idle
// boxes used to be the single largest steady-state allocation-free *time*
// sink of adversarial generators, and the sort itself is O(idle·log idle).
//
// Layout: levels[0] has one bit per box; levels[k][w] bit b summarizes
// whether word w·64+b of levels[k−1] is non-zero. The top level is a
// single word, so membership updates touch at most ⌈log₆₄ n⌉ words (4 at
// 10⁷ boxes) and ascending enumeration skips empty subtrees wholesale.
type idleBits struct {
	levels [][]uint64
}

// initFull sizes the bitmap for n boxes with every box present (the
// all-idle construction state).
func (ib *idleBits) initFull(n int) {
	ib.levels = ib.levels[:0]
	for m := n; ; m = (m + 63) / 64 {
		words := (m + 63) / 64
		if words == 0 {
			words = 1
		}
		level := make([]uint64, words)
		for i := 0; i < m/64; i++ {
			level[i] = ^uint64(0)
		}
		if rem := m % 64; rem != 0 {
			level[m/64] = 1<<rem - 1
		}
		ib.levels = append(ib.levels, level)
		if words == 1 {
			return
		}
	}
}

// initEmpty sizes the bitmap for n boxes with no box present (checkpoint
// decode rebuilds membership from the restored idleList).
func (ib *idleBits) initEmpty(n int) {
	ib.initFull(n)
	for _, level := range ib.levels {
		for i := range level {
			level[i] = 0
		}
	}
}

// set marks box b idle, propagating up while a word turns non-zero.
func (ib *idleBits) set(b int32) {
	for _, level := range ib.levels {
		i := int(b) >> 6
		old := level[i]
		level[i] = old | 1<<(uint(b)&63)
		if old != 0 {
			return
		}
		b = int32(i)
	}
}

// clear marks box b busy, propagating up while a word turns zero.
func (ib *idleBits) clear(b int32) {
	for _, level := range ib.levels {
		i := int(b) >> 6
		level[i] &^= 1 << (uint(b) & 63)
		if level[i] != 0 {
			return
		}
		b = int32(i)
	}
}

// appendAscending appends every present box to dst in ascending order.
func (ib *idleBits) appendAscending(dst []int) []int {
	if len(ib.levels) == 0 {
		return dst
	}
	return ib.walk(len(ib.levels)-1, 0, dst)
}

// walk descends the summary tree from the given word, emitting leaf bits
// in ascending order. Method recursion, not a closure: enumeration must
// stay allocation-free.
func (ib *idleBits) walk(level, word int, dst []int) []int {
	w := ib.levels[level][word]
	for w != 0 {
		idx := word<<6 | bits.TrailingZeros64(w)
		w &= w - 1
		if level == 0 {
			dst = append(dst, idx)
		} else {
			dst = ib.walk(level-1, idx, dst)
		}
	}
	return dst
}
