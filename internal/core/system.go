package core

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/swarm"
	"repro/internal/video"
)

// entry is a playback-cache record: box started receiving the stripe at
// round start and can serve chunk p to any request that is at least one
// chunk behind it, as long as the window t−T ≤ start holds (enforced by
// pruning). A forwarded copy (relay → poor box) trails its backing request
// by lag rounds.
type entry struct {
	box    int32
	start  int32
	req    int32 // backing request slot, or -1 once frozen
	lag    int32
	frozen int32 // progress at freeze time (valid when req == -1)
}

// issuance is a scheduled future request.
type issuance struct {
	round     int
	stripe    video.StripeID
	requester int32
	viewer    int32
	mirror    int32 // box receiving a forwarded copy (lag 1), or -1
}

// System is a runnable instance of the paper's video system.
type System struct {
	cfg     Config
	cat     video.Catalog
	n       int
	caps    []int64
	matcher *bipartite.Matcher
	tracker *swarm.Tracker
	round   int
	failed  bool

	// Request slot arrays (index = matcher left ID).
	reqStripe   []video.StripeID
	reqStart    []int32
	reqBox      []int32 // downloader (the relay for relayed requests)
	reqViewer   []int32 // box whose playback depends on this request
	reqProgress []int32
	reqActive   []bool
	freeSlots   []int32
	activeReqs  int

	entries [][]entry // per stripe, ordered by start

	outstanding []int32 // per viewer box: unfinished requests + pending issuances
	busy        []bool

	pending []issuance // future scheduled requests (small, scanned per round)

	metrics runMetrics
}

// NewSystem validates the configuration and builds the system.
func NewSystem(cfg Config) (*System, error) {
	caps, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	cat := cfg.Alloc.Catalog()
	n := cfg.Alloc.NumBoxes()
	s := &System{
		cfg:         cfg,
		cat:         cat,
		n:           n,
		caps:        caps,
		matcher:     bipartite.NewMatcher(caps),
		tracker:     swarm.NewTracker(cat.M, cat.T, cfg.Mu),
		entries:     make([][]entry, cat.NumStripes()),
		outstanding: make([]int32, n),
		busy:        make([]bool, n),
	}
	s.metrics.init(n)
	return s, nil
}

// Round returns the last simulated round. Rounds are 1-based — a demand
// arriving "during [t−1, t)" is admitted at round t ≥ 1 — so Round is 0
// before the first Step.
func (s *System) Round() int { return s.round }

// Failed reports whether a FailStop obstruction has occurred.
func (s *System) Failed() bool { return s.failed }

// Catalog returns the system's catalog.
func (s *System) Catalog() video.Catalog { return s.cat }

// NumBoxes returns the number of boxes.
func (s *System) NumBoxes() int { return s.n }

// TotalSlots returns the total matcher capacity in stripe slots.
func (s *System) TotalSlots() int64 {
	var t int64
	for _, c := range s.caps {
		t += c
	}
	return t
}

// allocSlot takes a request slot from the free list or grows the arrays.
func (s *System) allocSlot() int32 {
	if len(s.freeSlots) > 0 {
		slot := s.freeSlots[len(s.freeSlots)-1]
		s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
		return slot
	}
	slot := int32(len(s.reqStripe))
	s.reqStripe = append(s.reqStripe, 0)
	s.reqStart = append(s.reqStart, 0)
	s.reqBox = append(s.reqBox, 0)
	s.reqViewer = append(s.reqViewer, 0)
	s.reqProgress = append(s.reqProgress, 0)
	s.reqActive = append(s.reqActive, false)
	return slot
}

// issueRequest creates an active request and its cache entries.
func (s *System) issueRequest(stripe video.StripeID, requester, viewer, mirror int32) {
	slot := s.allocSlot()
	s.reqStripe[slot] = stripe
	s.reqStart[slot] = int32(s.round)
	s.reqBox[slot] = requester
	s.reqViewer[slot] = viewer
	s.reqProgress[slot] = 0
	s.reqActive[slot] = true
	s.activeReqs++
	s.matcher.AddLeft(int(slot))
	if !s.cfg.DisableCacheServing {
		s.entries[stripe] = append(s.entries[stripe], entry{box: requester, start: int32(s.round), req: slot})
		if mirror >= 0 {
			s.entries[stripe] = append(s.entries[stripe],
				entry{box: mirror, start: int32(s.round + 1), req: slot, lag: 1})
		}
	}
	if s.activeReqs > s.metrics.peakRequests {
		s.metrics.peakRequests = s.activeReqs
	}
}

// retireRequest completes a request: frees the slot, freezes its cache
// entries, and releases the viewer when its last request finishes.
func (s *System) retireRequest(slot int32) {
	stripe := s.reqStripe[slot]
	// Freeze cache entries backed by this request at their final progress.
	for i := range s.entries[stripe] {
		e := &s.entries[stripe][i]
		if e.req == slot {
			e.frozen = s.reqProgress[slot] - e.lag
			e.req = -1
		}
	}
	s.matcher.RemoveLeft(int(slot))
	s.reqActive[slot] = false
	s.activeReqs--
	s.freeSlots = append(s.freeSlots, slot)
	s.finishOne(s.reqViewer[slot])
}

// finishOne decrements a viewer's outstanding work and frees the box when
// everything (requests and scheduled issuances) has completed.
func (s *System) finishOne(viewer int32) {
	s.outstanding[viewer]--
	if s.outstanding[viewer] == 0 && s.busy[viewer] {
		s.busy[viewer] = false
		s.metrics.completedViewings++
	}
}

// entryProgress returns how many chunks the entry's box has of the stripe.
func (s *System) entryProgress(e *entry) int32 {
	if e.req >= 0 {
		p := s.reqProgress[e.req] - e.lag
		if p < 0 {
			return 0
		}
		return p
	}
	return e.frozen
}

// adjacency implements bipartite.Adjacency over the allocation and the
// playback caches — the graph G of Section 2.2.
type adjacency struct{ s *System }

// VisitServers enumerates B(x): allocation boxes first (they hold the full
// stripe), then swarm predecessors with enough progress.
func (a adjacency) VisitServers(left int, fn func(right int) bool) {
	s := a.s
	slot := int32(left)
	stripe := s.reqStripe[slot]
	requester := s.reqBox[slot]
	for _, b := range s.cfg.Alloc.ByStripe[stripe] {
		if b != requester {
			if !fn(int(b)) {
				return
			}
		}
	}
	if s.cfg.DisableCacheServing {
		return
	}
	need := s.reqProgress[slot]
	for i := range s.entries[stripe] {
		e := &s.entries[stripe][i]
		if e.box != requester && s.entryProgress(e) > need {
			if !fn(int(e.box)) {
				return
			}
		}
	}
}

// CanServe mirrors VisitServers for a single candidate.
func (a adjacency) CanServe(left, right int) bool {
	s := a.s
	slot := int32(left)
	stripe := s.reqStripe[slot]
	requester := s.reqBox[slot]
	if int32(right) == requester {
		return false
	}
	for _, b := range s.cfg.Alloc.ByStripe[stripe] {
		if int(b) == right {
			return true
		}
	}
	if s.cfg.DisableCacheServing {
		return false
	}
	need := s.reqProgress[slot]
	for i := range s.entries[stripe] {
		e := &s.entries[stripe][i]
		if int(e.box) == right && s.entryProgress(e) > need {
			return true
		}
	}
	return false
}

// pruneEntries drops cache entries whose window has expired: an entry
// started at t_j serves only while t_j ≥ t − T (Section 2.2).
func (s *System) pruneEntries() {
	cutoff := int32(s.round - s.cat.T)
	for st := range s.entries {
		es := s.entries[st]
		keep := 0
		for i := range es {
			if es[i].start >= cutoff {
				es[keep] = es[i]
				keep++
			}
		}
		if keep != len(es) {
			tail := es[keep:]
			for i := range tail {
				tail[i] = entry{}
			}
			s.entries[st] = es[:keep]
		}
	}
}

// selfPossesses reports whether box b already has stripe st available
// locally: stored by allocation, or completely cached from a recent
// viewing (frozen full-progress entry inside the window).
func (s *System) selfPossesses(b int32, st video.StripeID) bool {
	if s.cfg.Alloc.Stores(int(b), st) {
		return true
	}
	if s.cfg.DisableCacheServing {
		return false
	}
	for i := range s.entries[st] {
		e := &s.entries[st][i]
		if e.box == b && e.req == -1 && e.frozen >= int32(s.cat.T) {
			return true
		}
	}
	return false
}

// String summarizes the system state for debugging.
func (s *System) String() string {
	return fmt.Sprintf("system{n=%d %v round=%d active=%d viewers=%d}",
		s.n, s.cat, s.round, s.activeReqs, s.tracker.TotalViewers())
}
