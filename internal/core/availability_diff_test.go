package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/allocation"
	"repro/internal/stats"
	"repro/internal/video"
)

// This file pins the indexed availability substrate to the retained naive
// linear-scan reference, two ways:
//
//  1. A store-level property test drives both implementations with one
//     randomized event stream (adds, freezes, window expiry) and asserts
//     every query — visit sets, canServe, hasFull, live counts — agrees
//     after each round.
//  2. A system-level differential test runs full simulations twice, once
//     per store (Config.NaiveAvailability), and asserts identical step
//     results, obstruction certificates, and reports round by round.
//     Under FailStop every pre-failure round has all requests matched and
//     the Hall-violator sets are invariant across maximum matchings, so
//     runs must agree exactly however the matcher orders its search.

// diffReq is the property driver's model of a request backing entries.
type diffReq struct {
	slot   int32
	stripe video.StripeID
	live   bool
}

func TestAvailabilityStoresAgree(t *testing.T) {
	const (
		numStripes = 24
		numBoxes   = 16
		T          = 9
		rounds     = 120
	)
	rng := stats.NewRNG(0xd1ff)
	idx := newIndexedAvailability(numStripes, T)
	naive := newNaiveAvailability(numStripes, T)
	stores := []availabilityStore{idx, naive}

	var reqProgress []int32
	var reqs []diffReq
	newSlot := func(st video.StripeID) int32 {
		slot := int32(len(reqProgress))
		reqProgress = append(reqProgress, 0)
		reqs = append(reqs, diffReq{slot: slot, stripe: st, live: true})
		return slot
	}

	for round := 1; round <= rounds; round++ {
		for _, s := range stores {
			s.expire(round)
		}
		// A few new requests, occasionally with a lagged mirror entry.
		for i := 0; i < 1+rng.Intn(3); i++ {
			st := video.StripeID(rng.Intn(numStripes))
			box := int32(rng.Intn(numBoxes))
			slot := newSlot(st)
			for _, s := range stores {
				s.add(st, entry{box: box, start: int32(round), req: slot})
			}
			if rng.Bool(0.4) {
				mirror := int32(rng.Intn(numBoxes))
				for _, s := range stores {
					s.add(st, entry{box: mirror, start: int32(round + 1), req: slot, lag: 1})
				}
			}
		}
		// Progress advances on a random subset of live requests.
		for i := range reqs {
			if reqs[i].live && rng.Bool(0.8) {
				reqProgress[reqs[i].slot]++
			}
		}
		// Some requests retire (freeze their entries).
		for i := range reqs {
			r := &reqs[i]
			if r.live && (reqProgress[r.slot] >= int32(T) || rng.Bool(0.05)) {
				for _, s := range stores {
					s.retire(r.stripe, r.slot, reqProgress[r.slot])
				}
				r.live = false
			}
		}

		// Compare every query the system can pose.
		for st := video.StripeID(0); int(st) < numStripes; st++ {
			if idx.live(st) != naive.live(st) {
				t.Fatalf("round %d stripe %d: live %d (indexed) != %d (naive)",
					round, st, idx.live(st), naive.live(st))
			}
			exclude := int32(rng.Intn(numBoxes))
			need := int32(rng.Intn(T + 1))
			collect := func(s availabilityStore) []int {
				var out []int
				s.visit(st, exclude, need, reqProgress, func(right int) bool {
					out = append(out, right)
					return true
				})
				sort.Ints(out)
				return out
			}
			if got, want := collect(idx), collect(naive); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d stripe %d visit(exclude=%d, need=%d): indexed %v, naive %v",
					round, st, exclude, need, got, want)
			}
			for box := int32(0); int(box) < numBoxes; box++ {
				if g, w := idx.canServe(st, box, need, reqProgress), naive.canServe(st, box, need, reqProgress); g != w {
					t.Fatalf("round %d stripe %d canServe(box=%d, need=%d): indexed %v, naive %v",
						round, st, box, need, g, w)
				}
				if g, w := idx.hasFull(st, box, int32(T), int32(round-T)), naive.hasFull(st, box, int32(T), int32(round-T)); g != w {
					t.Fatalf("round %d stripe %d hasFull(box=%d): indexed %v, naive %v",
						round, st, box, g, w)
				}
				// Tighter minStart bounds (the sharded engine's deferred-expiry
				// mask) must agree too, not just the post-expiry no-op bound.
				tight := int32(round - rng.Intn(T))
				if g, w := idx.hasFull(st, box, 0, tight), naive.hasFull(st, box, 0, tight); g != w {
					t.Fatalf("round %d stripe %d hasFull(box=%d, minStart=%d): indexed %v, naive %v",
						round, st, box, tight, g, w)
				}
			}
		}
	}
}

// runDifferential steps an indexed and a naive system in lockstep and
// fails on the first observable divergence.
func runDifferential(t *testing.T, name string, mkSys func(t *testing.T, naive bool) *System, mkGen func() Generator, rounds int) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		indexed := mkSys(t, false)
		naive := mkSys(t, true)
		genI, genN := mkGen(), mkGen()
		for r := 0; r < rounds && !indexed.Failed() && !naive.Failed(); r++ {
			resI, errI := indexed.Step(genI)
			resN, errN := naive.Step(genN)
			if (errI == nil) != (errN == nil) {
				t.Fatalf("round %d: errors diverge: indexed %v, naive %v", r+1, errI, errN)
			}
			if errI != nil {
				t.Fatalf("round %d: %v", r+1, errI)
			}
			if !reflect.DeepEqual(resI, resN) {
				t.Fatalf("round %d: step results diverge:\nindexed: %+v\nnaive:   %+v", r+1, resI, resN)
			}
		}
		if indexed.Failed() != naive.Failed() {
			t.Fatalf("failure state diverges: indexed %v, naive %v", indexed.Failed(), naive.Failed())
		}
		repI, repN := indexed.Report(), naive.Report()
		if !reflect.DeepEqual(repI, repN) {
			t.Fatalf("reports diverge:\nindexed: %+v\nnaive:   %+v", repI, repN)
		}
	})
}

// burstGen forwards the inner generator's demands only on burst rounds,
// so an under-provisioned system stalls, drains, and stalls again.
type burstGen struct {
	inner       Generator
	burstRounds map[int]bool
}

func (g *burstGen) Next(v *View, round int) []Demand {
	if !g.burstRounds[round] {
		return nil
	}
	return g.inner.Next(v, round)
}

// relayedPoorFirst demands videos round-robin, poor boxes before rich —
// the in-package stand-in for the adversary package's PoorFirst.
type relayedPoorFirst struct {
	uStar float64
	next  video.ID
}

func (g *relayedPoorFirst) Next(v *View, _ int) []Demand {
	var out []Demand
	m := v.Catalog().M
	emit := func(b int) {
		if v.SwarmAllowance(g.next) > 0 {
			out = append(out, Demand{Box: b, Video: g.next})
		}
		g.next = video.ID((int(g.next) + 1) % m)
	}
	for b := 0; b < v.NumBoxes(); b++ {
		if v.BoxIdle(b) && v.Upload(b) < g.uStar {
			emit(b)
		}
	}
	for b := 0; b < v.NumBoxes(); b++ {
		if v.BoxIdle(b) && v.Upload(b) >= g.uStar {
			emit(b)
		}
	}
	return out
}

// buildRelayedDiff is buildRelayedSmall with a config hook.
func buildRelayedDiff(t *testing.T, naive bool) *System {
	t.Helper()
	const n = 6
	const c, T, k = 25, 30, 2
	uploads := []float64{0.5, 0.5, 3.0, 3.0, 3.0, 3.0}
	storage := make([]int, n)
	total := 0
	for i := range storage {
		storage[i] = int(uploads[i] * 2 * float64(c))
		total += storage[i]
	}
	m := total / (k * c)
	excess := total - m*k*c
	for b := range storage {
		take := excess
		if take > storage[b]/2 {
			take = storage[b] / 2
		}
		storage[b] -= take
		excess -= take
		if excess == 0 {
			break
		}
	}
	cat := video.MustCatalog(m, c, T)
	alloc, err := allocation.Permutation(stats.NewRNG(11), cat, storage, k)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Alloc:             alloc,
		Uploads:           uploads,
		Mu:                1.05,
		Strategy:          StrategyRelayed,
		UStar:             1.5,
		Relays:            []int{2, 3, NoRelay, NoRelay, NoRelay, NoRelay},
		Paranoid:          true,
		TraceRounds:       true,
		NaiveAvailability: naive,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestIndexedMatchesNaiveAvailability(t *testing.T) {
	homogeneous := func(seed uint64, strategy Strategy, u float64) func(*testing.T, bool) *System {
		return func(t *testing.T, naive bool) *System {
			return buildHomogeneous(t, seed, 24, 2, 4, 12, 4, u, 1.4, func(cfg *Config) {
				cfg.Strategy = strategy
				cfg.NaiveAvailability = naive
				cfg.TraceRounds = true
			})
		}
	}

	runDifferential(t, "preload/uniform", homogeneous(21, StrategyPreload, 2.5),
		func() Generator { return &uniformGen{rng: stats.NewRNG(501), p: 0.4} }, 90)
	runDifferential(t, "preload/flash", homogeneous(22, StrategyPreload, 2.5),
		func() Generator { return genFlashCrowd{target: 0} }, 60)
	runDifferential(t, "naive/uniform", homogeneous(23, StrategyNaive, 2.5),
		func() Generator { return &uniformGen{rng: stats.NewRNG(502), p: 0.4} }, 90)
	runDifferential(t, "naive/flash", homogeneous(24, StrategyNaive, 3.0),
		func() Generator { return genFlashCrowd{target: 1} }, 60)
	runDifferential(t, "relayed/poorfirst", buildRelayedDiff,
		func() Generator { return &relayedPoorFirst{uStar: 1.5} }, 80)

	// Under-provisioned: both stores must fail on the same round with the
	// same Hall-violator certificate.
	underProvisioned := func(t *testing.T, naive bool) *System {
		return buildHomogeneous(t, 8, 10, 1, 4, 12, 1, 0.5, 2.0, func(cfg *Config) {
			cfg.NaiveAvailability = naive
			cfg.TraceRounds = true
		})
	}
	runDifferential(t, "obstruction/avoid", underProvisioned,
		func() Generator { return genAvoidStored{} }, 20)

	// Overload burst, drain, second burst under FailStall: stall rounds
	// force the event-driven engine into its Revalidate-sweep fallback,
	// and the first fully matched round afterwards rebuilds every
	// invalidation certificate — both transitions must stay bit-identical
	// to the always-sweep reference. The reference here is the *indexed*
	// store with SweepRevalidation (not the naive store): under stalls the
	// victim choice among equally maximum matchings depends on server
	// enumeration order, which differs between the two stores, so only
	// same-store pairs are exactly comparable in stall regimes (the
	// naive-store pairs above all run fully matched until failure).
	overloaded := func(t *testing.T, sweep bool) *System {
		return buildHomogeneous(t, 33, 12, 1, 4, 10, 1, 0.75, 3.0, func(cfg *Config) {
			cfg.Failure = FailStall
			cfg.SweepRevalidation = sweep
			cfg.TraceRounds = true
		})
	}
	mkBursts := func() Generator {
		return &burstGen{inner: genAvoidStored{}, burstRounds: map[int]bool{
			1: true, 2: true, 3: true, 30: true, 31: true,
		}}
	}
	runDifferential(t, "stall/recovery", overloaded, mkBursts, 55)

	// The stall scenario must actually stall and then recover, or the
	// sweep-mode transitions it is meant to pin never happen.
	probe := overloaded(t, false)
	rep, err := probe.Run(mkBursts(), 55)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls == 0 {
		t.Fatal("stall/recovery scenario produced no stalls")
	}
	recovered := false
	for i := 1; i < len(rep.Trace); i++ {
		if rep.Trace[i-1].Unmatched > 0 && rep.Trace[i].Unmatched == 0 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("stall/recovery scenario never exited its stall episode")
	}

	// Back-to-back viewings exercise frozen-entry self-possession.
	backToBack := func(t *testing.T, naive bool) *System {
		return buildHomogeneous(t, 25, 12, 2, 3, 8, 4, 2.0, 1.5, func(cfg *Config) {
			cfg.NaiveAvailability = naive
			cfg.TraceRounds = true
		})
	}
	runDifferential(t, "preload/backtoback", backToBack,
		func() Generator {
			return &scripted{byRound: map[int][]Demand{
				1:  {{Box: 0, Video: 0}},
				11: {{Box: 0, Video: 1}},
				12: {{Box: 1, Video: 0}},
			}}
		}, 30)
}
