package core

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/video"
)

// entry is a playback-cache record: box started receiving the stripe at
// round start and can serve chunk p to any request that is at least one
// chunk behind it, as long as the window t−T ≤ start holds (enforced by
// expiry). A forwarded copy (relay → poor box) trails its backing request
// by lag rounds.
type entry struct {
	box    int32
	start  int32
	req    int32 // backing request slot, or -1 once frozen
	lag    int32
	frozen int32 // progress at freeze time (valid when req == -1)
}

// entryChunks returns how many chunks the entry's box has of its stripe;
// reqProgress is the system's per-slot progress array.
func entryChunks(e *entry, reqProgress []int32) int32 {
	if e.req >= 0 {
		p := reqProgress[e.req] - e.lag
		if p < 0 {
			return 0
		}
		return p
	}
	return e.frozen
}

// availEvent records that one or more entries of (stripe, box) froze or
// expired this round: a previously valid server edge under that key can
// now decay, so assignments to box for stripe must be re-examined. Events
// are the substrate of the engine's event-driven matcher invalidation —
// they name exactly the (stripe, box) keys whose serving power changed,
// so the engine never has to sweep the full assignment set.
type availEvent struct {
	stripe video.StripeID
	box    int32
}

// availabilityStore indexes the playback-cache entries that, together with
// the static allocation, define the server sets B(x) of Section 2.2. The
// production implementation is indexedAvailability; naiveAvailability is
// the retained linear-scan reference the differential tests pin it to.
//
// Both stores are shard-aware: stripes partition across shards by
// stripe mod S, and every mutable structure a shard's expiry touches
// (free lists, key maps, expiry rings, event logs) is per-shard, so the
// sharded engine can run expireShard concurrently for distinct shards
// while adds and retires stay serial. With one shard the layout and
// behavior are exactly the historical serial store.
type availabilityStore interface {
	// setShards partitions the store into S stripe shards (call once,
	// before any add). translate maps (shard, box) to the sharded
	// matcher's shard-local right id so visitLocal can emit pre-translated
	// ids; nil leaves local ids unresolved (-1).
	setShards(S int, translate func(shard int, box int32) int32)
	// add records a new cache entry for stripe st.
	add(st video.StripeID, e entry)
	// expire drops every entry whose serving window has closed at the
	// given round (start < round−T).
	expire(round int)
	// expireShard is expire restricted to one stripe shard; distinct
	// shards may run concurrently.
	expireShard(round, shard int)
	// retire freezes all entries backed by request slot req at final
	// progress final (each entry freezes at final−lag).
	retire(st video.StripeID, req int32, final int32)
	// visit calls fn for every entry of st whose box is not exclude and
	// whose progress exceeds need, stopping early if fn returns false.
	visit(st video.StripeID, exclude int32, need int32, reqProgress []int32, fn func(right int) bool)
	// visitLocal is visit with each box's cached shard-local right id
	// (-1 when no translator resolved it at add time).
	visitLocal(st video.StripeID, exclude int32, need int32, reqProgress []int32, fn func(right int, local int32) bool)
	// visitHead returns the starting position of stripe st's entry walk
	// for visitStep — an implementation-defined token, not a box id.
	// Together they are the pull-style (cursor) form of visit, used by
	// the adjacency's bipartite.CursorAdjacency implementation so the
	// matcher's searches enumerate servers without callback closures.
	// The emitted sequence is exactly visit's; positions stay valid as
	// long as the store is quiescent (no add/retire/expire), which holds
	// throughout the matching phase.
	visitHead(st video.StripeID) int32
	// visitStep scans from position h for the next entry of st passing
	// visit's filter (box != exclude, chunks > need), returning its box,
	// its cached shard-local right id (-1 when unresolved), and the
	// position after it. Exhaustion returns box -1.
	visitStep(st video.StripeID, h int32, exclude int32, need int32, reqProgress []int32) (box, local, next int32)
	// canServe reports whether box has an entry for st with progress
	// beyond need.
	canServe(st video.StripeID, box int32, need int32, reqProgress []int32) bool
	// hasFull reports whether box holds a frozen full copy of st (frozen
	// progress ≥ full) still inside the window. minStart re-states the
	// window bound (start ≥ round−T) explicitly: expiry normally enforces
	// it structurally, but the sharded engine defers expiry into the
	// matching stage, after admission has already queried hasFull — the
	// bound masks exactly the entries due to expire this round. Callers
	// on an already-expired store pass a bound every surviving entry
	// meets, making it a no-op.
	hasFull(st video.StripeID, box int32, full int32, minStart int32) bool
	// live returns the number of entries currently indexed for st.
	live(st video.StripeID) int
	// margin summarizes box's serving credential for st beyond need: ok
	// reports whether any entry serves (chunks > need, i.e. canServe),
	// hasLive whether a live request-backed entry does (such an edge
	// cannot decay while every request keeps progressing), and bestFrozen
	// the maximum frozen progress among serving frozen entries — the round
	// budget before a frozen-only edge is overtaken by the requester.
	margin(st video.StripeID, box int32, need int32, reqProgress []int32) (hasLive bool, bestFrozen int32, ok bool)
	// drainEvents appends the (stripe, box) freeze/expiry events recorded
	// since the last drain and clears the log. Keys may repeat.
	drainEvents(dst []availEvent) []availEvent
	// drainEventsShard drains only the given shard's event log; distinct
	// shards may drain concurrently.
	drainEventsShard(shard int, dst []availEvent) []availEvent
	// encodeState / decodeState serialize the store's full mutable state
	// for checkpointing (see checkpoint.go). decodeState targets a freshly
	// constructed store with the same shape (stripes, T, shard count).
	encodeState(w *ckpt.Writer)
	decodeState(r *ckpt.Reader) error
}

// indexedAvailability is the production store: intrusive per-stripe lists
// of live entries for iteration, a per-(stripe,box) chain index for O(1)
// lookups, and a round-bucketed expiry ring so each round touches only the
// entries whose window actually closes — never the full catalog. All
// linkage runs through one slab, so steady-state operation allocates
// nothing per stripe.
//
// The slab and the per-stripe heads are global, but every entry belongs
// to exactly one stripe shard (stripe mod numShards), and the structures
// expiry mutates — free lists, key maps, expiry rings, event logs — are
// per-shard, so concurrent expireShard calls for distinct shards touch
// disjoint state (slab writes hit only the shard's own entries).
type indexedAvailability struct {
	T         int
	numShards int
	slab      []idxEntry

	byStripe  []int32            // per stripe: head of the live-entry list, −1 empty
	liveCount []int32            // per stripe: live entries
	reqLinks  [][2]int32         // per request slot: backing entry ids or −1
	frees     [][]int32          // per shard: slab free list
	byKeys    []map[uint64]int32 // per shard: (stripe, box) → head of same-key chain
	rings     [][][]int32        // per shard: entry ids bucketed by start mod ring length
	eventLogs [][]availEvent     // per shard

	// translate resolves (shard, box) to the sharded matcher's local right
	// id at add time, caching it in the entry so hot visits skip the
	// translation map. Nil outside the sharded engine.
	translate func(shard int, box int32) int32

	// logEvents enables the freeze/expiry log; the engine turns it on for
	// event-driven invalidation (sweep modes never drain, so it stays off).
	logEvents bool
}

// availKey packs a (stripe, box) pair into one map key.
func availKey(st video.StripeID, box int32) uint64 {
	return uint64(uint32(st))<<32 | uint64(uint32(box))
}

// idxEntry decorates entry with the index back-pointers.
type idxEntry struct {
	entry
	stripe     video.StripeID
	next, prev int32 // intrusive per-stripe live list
	nextKey    int32 // next entry id with the same (stripe, box), or −1
	boxLocal   int32 // shard-local right id of box (−1 when unresolved)
}

// newIndexedAvailability sizes the store for a catalog. The ring needs
// T+3 slots so a bucket is always drained before a start value T+3 newer
// can land in it (live starts span [t−T, t+1] plus the slot being drained);
// one extra slot keeps the margin obvious.
func newIndexedAvailability(numStripes, T int) *indexedAvailability {
	ix := &indexedAvailability{
		T:         T,
		byStripe:  make([]int32, numStripes),
		liveCount: make([]int32, numStripes),
	}
	for st := range ix.byStripe {
		ix.byStripe[st] = -1
	}
	ix.setShards(1, nil)
	return ix
}

func (ix *indexedAvailability) setShards(S int, translate func(shard int, box int32) int32) {
	ix.numShards = S
	ix.translate = translate
	ix.frees = make([][]int32, S)
	ix.byKeys = make([]map[uint64]int32, S)
	ix.rings = make([][][]int32, S)
	ix.eventLogs = make([][]availEvent, S)
	for s := 0; s < S; s++ {
		ix.byKeys[s] = make(map[uint64]int32)
		ix.rings[s] = make([][]int32, ix.T+4)
	}
}

// shardOf maps a stripe to its owning shard.
func (ix *indexedAvailability) shardOf(st video.StripeID) int {
	return int(st) % ix.numShards
}

func (ix *indexedAvailability) add(st video.StripeID, e entry) {
	sh := ix.shardOf(st)
	var id int32
	if free := ix.frees[sh]; len(free) > 0 {
		id = free[len(free)-1]
		ix.frees[sh] = free[:len(free)-1]
	} else {
		id = int32(len(ix.slab))
		ix.slab = append(ix.slab, idxEntry{})
	}
	key := availKey(st, e.box)
	nextKey := int32(-1)
	if prev, ok := ix.byKeys[sh][key]; ok {
		nextKey = prev
	}
	ix.byKeys[sh][key] = id
	head := ix.byStripe[st]
	local := int32(-1)
	if ix.translate != nil {
		local = ix.translate(sh, e.box)
	}
	ix.slab[id] = idxEntry{
		entry:    e,
		stripe:   st,
		next:     head,
		prev:     -1,
		nextKey:  nextKey,
		boxLocal: local,
	}
	if head >= 0 {
		ix.slab[head].prev = id
	}
	ix.byStripe[st] = id
	ix.liveCount[st]++
	ring := ix.rings[sh]
	bucket := int(e.start) % len(ring)
	ring[bucket] = append(ring[bucket], id)
	if e.req >= 0 {
		ix.linkReq(e.req, id)
	}
}

// linkReq records id as one of the (at most two) entries backed by slot req.
func (ix *indexedAvailability) linkReq(req, id int32) {
	for int(req) >= len(ix.reqLinks) {
		ix.reqLinks = append(ix.reqLinks, [2]int32{-1, -1})
	}
	links := &ix.reqLinks[req]
	switch {
	case links[0] < 0:
		links[0] = id
	case links[1] < 0:
		links[1] = id
	default:
		panic(fmt.Sprintf("core: request %d backs more than two cache entries", req))
	}
}

// unlinkReq clears the backlink from slot req to entry id.
func (ix *indexedAvailability) unlinkReq(req, id int32) {
	links := &ix.reqLinks[req]
	switch {
	case links[0] == id:
		links[0] = -1
	case links[1] == id:
		links[1] = -1
	}
}

func (ix *indexedAvailability) expire(round int) {
	for sh := 0; sh < ix.numShards; sh++ {
		ix.expireShard(round, sh)
	}
}

func (ix *indexedAvailability) expireShard(round, shard int) {
	start := round - ix.T - 1
	if start < 1 {
		return
	}
	ring := ix.rings[shard]
	bucket := start % len(ring)
	ids := ring[bucket]
	ring[bucket] = ids[:0]
	for _, id := range ids {
		ix.remove(shard, id)
	}
}

// remove unlinks entry id from the stripe list, the key chain, and its
// backing request, and returns the slab slot to the shard's free list.
// Every structure touched belongs to the entry's stripe shard, so removes
// for distinct shards may run concurrently.
func (ix *indexedAvailability) remove(shard int, id int32) {
	e := &ix.slab[id]
	// Stripe list: unlink.
	if e.prev >= 0 {
		ix.slab[e.prev].next = e.next
	} else {
		ix.byStripe[e.stripe] = e.next
	}
	if e.next >= 0 {
		ix.slab[e.next].prev = e.prev
	}
	ix.liveCount[e.stripe]--
	// Key chain.
	key := availKey(e.stripe, e.box)
	byKey := ix.byKeys[shard]
	if head := byKey[key]; head == id {
		if e.nextKey < 0 {
			delete(byKey, key)
		} else {
			byKey[key] = e.nextKey
		}
	} else {
		for cur := head; cur >= 0; cur = ix.slab[cur].nextKey {
			if ix.slab[cur].nextKey == id {
				ix.slab[cur].nextKey = e.nextKey
				break
			}
		}
	}
	if e.req >= 0 {
		ix.unlinkReq(e.req, id)
	}
	if ix.logEvents {
		ix.eventLogs[shard] = append(ix.eventLogs[shard], availEvent{stripe: e.stripe, box: e.box})
	}
	ix.slab[id] = idxEntry{}
	ix.frees[shard] = append(ix.frees[shard], id)
}

func (ix *indexedAvailability) retire(_ video.StripeID, req int32, final int32) {
	if int(req) >= len(ix.reqLinks) {
		return
	}
	links := &ix.reqLinks[req]
	for i, id := range links {
		if id < 0 {
			continue
		}
		e := &ix.slab[id]
		e.frozen = final - e.lag
		e.req = -1
		links[i] = -1
		if ix.logEvents {
			sh := ix.shardOf(e.stripe)
			ix.eventLogs[sh] = append(ix.eventLogs[sh], availEvent{stripe: e.stripe, box: e.box})
		}
	}
}

func (ix *indexedAvailability) visit(st video.StripeID, exclude int32, need int32, reqProgress []int32, fn func(right int) bool) {
	for id := ix.byStripe[st]; id >= 0; id = ix.slab[id].next {
		e := &ix.slab[id]
		if e.box != exclude && entryChunks(&e.entry, reqProgress) > need {
			if !fn(int(e.box)) {
				return
			}
		}
	}
}

func (ix *indexedAvailability) visitLocal(st video.StripeID, exclude int32, need int32, reqProgress []int32, fn func(right int, local int32) bool) {
	for id := ix.byStripe[st]; id >= 0; id = ix.slab[id].next {
		e := &ix.slab[id]
		if e.box != exclude && entryChunks(&e.entry, reqProgress) > need {
			if !fn(int(e.box), e.boxLocal) {
				return
			}
		}
	}
}

func (ix *indexedAvailability) visitHead(st video.StripeID) int32 { return ix.byStripe[st] }

func (ix *indexedAvailability) visitStep(st video.StripeID, h int32, exclude int32, need int32, reqProgress []int32) (int32, int32, int32) {
	for id := h; id >= 0; id = ix.slab[id].next {
		e := &ix.slab[id]
		if e.box != exclude && entryChunks(&e.entry, reqProgress) > need {
			return e.box, e.boxLocal, e.next
		}
	}
	return -1, -1, -1
}

func (ix *indexedAvailability) canServe(st video.StripeID, box int32, need int32, reqProgress []int32) bool {
	id, ok := ix.byKeys[ix.shardOf(st)][availKey(st, box)]
	if !ok {
		return false
	}
	for ; id >= 0; id = ix.slab[id].nextKey {
		if entryChunks(&ix.slab[id].entry, reqProgress) > need {
			return true
		}
	}
	return false
}

func (ix *indexedAvailability) hasFull(st video.StripeID, box int32, full int32, minStart int32) bool {
	id, ok := ix.byKeys[ix.shardOf(st)][availKey(st, box)]
	if !ok {
		return false
	}
	for ; id >= 0; id = ix.slab[id].nextKey {
		e := &ix.slab[id]
		if e.req == -1 && e.frozen >= full && e.start >= minStart {
			return true
		}
	}
	return false
}

func (ix *indexedAvailability) live(st video.StripeID) int { return int(ix.liveCount[st]) }

func (ix *indexedAvailability) margin(st video.StripeID, box int32, need int32, reqProgress []int32) (hasLive bool, bestFrozen int32, ok bool) {
	id, found := ix.byKeys[ix.shardOf(st)][availKey(st, box)]
	if !found {
		return false, 0, false
	}
	for ; id >= 0; id = ix.slab[id].nextKey {
		e := &ix.slab[id].entry
		if entryChunks(e, reqProgress) <= need {
			continue
		}
		ok = true
		if e.req >= 0 {
			hasLive = true
		} else if e.frozen > bestFrozen {
			bestFrozen = e.frozen
		}
	}
	return hasLive, bestFrozen, ok
}

func (ix *indexedAvailability) drainEvents(dst []availEvent) []availEvent {
	for sh := 0; sh < ix.numShards; sh++ {
		dst = ix.drainEventsShard(sh, dst)
	}
	return dst
}

func (ix *indexedAvailability) drainEventsShard(shard int, dst []availEvent) []availEvent {
	dst = append(dst, ix.eventLogs[shard]...)
	ix.eventLogs[shard] = ix.eventLogs[shard][:0]
	return dst
}
