// Package adversary implements the demand generators used to attack and
// exercise the video system. Theorem 1 is universally quantified over
// demand sequences, which simulation cannot exhaust; instead this package
// provides the known worst-case families — the ones the paper's own lower
// bound arguments use — plus realistic background workloads:
//
//   - FlashCrowd: everyone piles onto one video at the maximal admissible
//     growth rate µ (the Lemma 2 stress case).
//   - AvoidPossession: every box demands a video it stores no data of
//     (the Section 1.3 impossibility argument for u < 1).
//   - DistinctVideos: maximally many simultaneous distinct videos (pure
//     sourcing load, the regime of the authors' earlier IPTPS paper).
//   - WeakestVideos: targets the videos whose allocation servers have the
//     least aggregate upload (a min-cut-seeking heuristic).
//   - Zipf / Poisson: realistic reference workloads.
//   - Churn: staggered waves that maximize cache-window turnover.
//   - Retry: wrapper adding admission-queue retry semantics with Born
//     bookkeeping for start-up delay measurements.
package adversary

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/video"
)

// batchAllowance tracks how many swarm slots of each video a single
// demand batch has already claimed, so generators never emit more demands
// for a video than the growth bound admits in one round.
type batchAllowance struct {
	v    *core.View
	used map[video.ID]int
}

func newBatchAllowance(v *core.View) *batchAllowance {
	return &batchAllowance{v: v, used: make(map[video.ID]int)}
}

// take claims one slot of vid's allowance; false when exhausted.
func (ba *batchAllowance) take(vid video.ID) bool {
	if ba.v.SwarmAllowance(vid)-ba.used[vid] <= 0 {
		return false
	}
	ba.used[vid]++
	return true
}

// FlashCrowd floods Target at the maximal admissible growth rate. When
// Rotate is true it moves to the next video once the crowd has fully
// drained (the swarm grew and then emptied).
type FlashCrowd struct {
	Target video.ID
	Rotate bool

	grew bool
	idle []int // per-round scratch, reused across Next calls
}

// Next implements core.Generator.
func (g *FlashCrowd) Next(v *core.View, _ int) []core.Demand {
	if g.Rotate && g.grew && v.SwarmSize(g.Target) == 0 {
		g.Target = video.ID((int(g.Target) + 1) % v.Catalog().M)
		g.grew = false
	}
	var out []core.Demand
	ba := newBatchAllowance(v)
	g.idle = v.IdleBoxes(g.idle[:0])
	for _, b := range g.idle {
		if !ba.take(g.Target) {
			break
		}
		out = append(out, core.Demand{Box: b, Video: g.Target})
	}
	if len(out) > 0 || v.SwarmSize(g.Target) > 0 {
		g.grew = true
	}
	return out
}

// AvoidPossession is the u < 1 impossibility adversary: each idle box
// demands some video it stores no stripe of, guaranteeing the box
// contributes full download load while its own storage is useless for its
// demand.
type AvoidPossession struct {
	idle []int // per-round scratch, reused across Next calls
}

// Next implements core.Generator.
func (g *AvoidPossession) Next(v *core.View, _ int) []core.Demand {
	var out []core.Demand
	cat := v.Catalog()
	ba := newBatchAllowance(v)
	g.idle = v.IdleBoxes(g.idle[:0])
	for _, b := range g.idle {
		for m := 0; m < cat.M; m++ {
			vid := video.ID(m)
			if v.SwarmAllowance(vid)-ba.used[vid] <= 0 {
				continue
			}
			stored := false
			for i := 0; i < cat.C; i++ {
				if v.Stores(b, cat.Stripe(vid, i)) {
					stored = true
					break
				}
			}
			if !stored {
				ba.used[vid]++
				out = append(out, core.Demand{Box: b, Video: vid})
				break
			}
		}
	}
	return out
}

// DistinctVideos keeps as many pairwise distinct videos playing as
// possible: box b watches video b mod m, re-demanding as soon as it goes
// idle. This maximizes sourcing load: no two viewers share a swarm, so
// playback caches are useless to others.
type DistinctVideos struct {
	idle []int // per-round scratch, reused across Next calls
}

// Next implements core.Generator.
func (g *DistinctVideos) Next(v *core.View, _ int) []core.Demand {
	var out []core.Demand
	m := v.Catalog().M
	ba := newBatchAllowance(v)
	g.idle = v.IdleBoxes(g.idle[:0])
	for _, b := range g.idle {
		vid := video.ID(b % m)
		if ba.take(vid) {
			out = append(out, core.Demand{Box: b, Video: vid})
		}
	}
	return out
}

// WeakestVideos ranks videos by the aggregate upload slots of their
// allocation servers and floods the weakest ones first — a practical
// search for Hall violators in the allocation.
type WeakestVideos struct {
	ranked []video.ID
	idle   []int // per-round scratch, reused across Next calls
}

// Next implements core.Generator.
func (g *WeakestVideos) Next(v *core.View, _ int) []core.Demand {
	if g.ranked == nil {
		g.rank(v)
	}
	var out []core.Demand
	g.idle = v.IdleBoxes(g.idle[:0])
	idle := g.idle
	i := 0
	for _, vid := range g.ranked {
		allow := v.SwarmAllowance(vid)
		for allow > 0 && i < len(idle) {
			out = append(out, core.Demand{Box: idle[i], Video: vid})
			i++
			allow--
		}
		if i >= len(idle) {
			break
		}
	}
	return out
}

func (g *WeakestVideos) rank(v *core.View) {
	cat := v.Catalog()
	type weak struct {
		vid   video.ID
		slots int64
	}
	ws := make([]weak, cat.M)
	for m := 0; m < cat.M; m++ {
		seen := make(map[int32]struct{})
		var slots int64
		for i := 0; i < cat.C; i++ {
			for _, b := range v.StripeHolders(cat.Stripe(video.ID(m), i)) {
				if _, ok := seen[b]; !ok {
					seen[b] = struct{}{}
					slots += v.UploadSlots(int(b))
				}
			}
		}
		ws[m] = weak{video.ID(m), slots}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].slots < ws[j].slots })
	g.ranked = make([]video.ID, cat.M)
	for i, w := range ws {
		g.ranked[i] = w.vid
	}
}

// Zipf is the realistic reference workload: idle boxes demand with
// probability P per round, choosing videos Zipf(S)-distributed.
type Zipf struct {
	RNG *stats.RNG
	P   float64
	S   float64

	dist *stats.Zipf
	idle []int // per-round scratch, reused across Next calls
}

// Next implements core.Generator.
func (g *Zipf) Next(v *core.View, _ int) []core.Demand {
	if g.dist == nil {
		g.dist = stats.NewZipf(v.Catalog().M, g.S)
	}
	var out []core.Demand
	ba := newBatchAllowance(v)
	g.idle = v.IdleBoxes(g.idle[:0])
	for _, b := range g.idle {
		if !g.RNG.Bool(g.P) {
			continue
		}
		vid := video.ID(g.dist.Sample(g.RNG))
		if ba.take(vid) {
			out = append(out, core.Demand{Box: b, Video: vid})
		}
	}
	return out
}

// Poisson draws a Poisson(Lambda) number of demands per round and assigns
// them to uniformly random idle boxes and videos.
type Poisson struct {
	RNG    *stats.RNG
	Lambda float64

	idle []int // per-round scratch, reused across Next calls
}

// Next implements core.Generator.
func (g *Poisson) Next(v *core.View, _ int) []core.Demand {
	count := g.RNG.Poisson(g.Lambda)
	if count == 0 {
		return nil
	}
	g.idle = v.IdleBoxes(g.idle[:0])
	idle := g.idle
	if len(idle) == 0 {
		return nil
	}
	g.RNG.ShuffleInts(idle)
	if count > len(idle) {
		count = len(idle)
	}
	m := v.Catalog().M
	out := make([]core.Demand, 0, count)
	ba := newBatchAllowance(v)
	for i := 0; i < count; i++ {
		vid := video.ID(g.RNG.Intn(m))
		if ba.take(vid) {
			out = append(out, core.Demand{Box: idle[i], Video: vid})
		}
	}
	return out
}

// Churn drives staggered waves: every Period rounds, a wave of WaveSize
// idle boxes demands a fresh video, maximizing turnover of the playback
// cache window (old swarms keep expiring as new ones start).
type Churn struct {
	Period   int
	WaveSize int

	next video.ID
	idle []int // per-round scratch, reused across Next calls
}

// Next implements core.Generator.
func (g *Churn) Next(v *core.View, round int) []core.Demand {
	if g.Period <= 0 || round%g.Period != 0 {
		return nil
	}
	var out []core.Demand
	g.idle = v.IdleBoxes(g.idle[:0])
	idle := g.idle
	m := v.Catalog().M
	ba := newBatchAllowance(v)
	for _, b := range idle {
		if len(out) >= g.WaveSize {
			break
		}
		tried := 0
		for tried < m && !ba.take(g.next) {
			g.next = video.ID((int(g.next) + 1) % m)
			tried++
		}
		if tried == m {
			break
		}
		out = append(out, core.Demand{Box: b, Video: g.next})
	}
	g.next = video.ID((int(g.next) + 1) % m)
	return out
}

// PoorFirst demands videos round-robin, serving boxes below the UStar
// upload threshold before rich ones — the hard case for the Section 4
// relay construction, where deficient boxes concentrate demand.
type PoorFirst struct {
	UStar float64

	next video.ID
	idle []int // per-round scratch, reused across Next calls
}

// Next implements core.Generator.
func (g *PoorFirst) Next(v *core.View, _ int) []core.Demand {
	var out []core.Demand
	m := v.Catalog().M
	ba := newBatchAllowance(v)
	emit := func(b int) {
		for tries := 0; tries < m; tries++ {
			if ba.take(g.next) {
				out = append(out, core.Demand{Box: b, Video: g.next})
				g.next = video.ID((int(g.next) + 1) % m)
				return
			}
			g.next = video.ID((int(g.next) + 1) % m)
		}
	}
	g.idle = v.IdleBoxes(g.idle[:0])
	idle := g.idle
	for _, b := range idle {
		if v.Upload(b) < g.UStar {
			emit(b)
		}
	}
	for _, b := range idle {
		if v.Upload(b) >= g.UStar {
			emit(b)
		}
	}
	return out
}

// Retry wraps a generator with admission-queue semantics: demands the
// system did not admit (box still idle on the next round) are re-submitted
// with their original Born round, so start-up delay measurements include
// queueing time (experiment E7).
type Retry struct {
	Inner core.Generator

	pending []core.Demand
}

// Next implements core.Generator.
func (g *Retry) Next(v *core.View, round int) []core.Demand {
	var out []core.Demand
	// Re-submit pending demands whose box is still idle (anything else
	// was either admitted or is busy with another viewing).
	var still []core.Demand
	for _, d := range g.pending {
		if v.BoxIdle(d.Box) {
			if v.SwarmAllowance(d.Video) > 0 {
				out = append(out, d)
			} else {
				still = append(still, d)
			}
		}
	}
	for _, d := range g.Inner.Next(v, round) {
		if d.Born <= 0 {
			d.Born = round
		}
		out = append(out, d)
	}
	g.pending = append(still, out...)
	return out
}
