package core

// Sharded round engine (Config.Shards > 1).
//
// Stripes are partitioned statically across shards (stripe mod Shards), so
// requests — whose edges only ever reach boxes possessing their stripe —
// partition with them. Each shard owns a bipartite sub-matcher in a
// shard-local right-id space (see bipartite.Sharded) plus the lane state
// below: its slice of the recheck ring, event scratch, and an adjacency
// that translates the Section 2.2 graph into local ids. The hot stages of
// a round (expiry, targeted invalidation, certificate rechecks, blocking-
// flow augmentation, progress) run one goroutine per shard with no shared
// mutable state; box capacity — the one cross-shard resource — is resolved
// afterwards by the deterministic Merge + GlobalAugment serial tail, so
// StepResult is bit-identical at every shard count and independent of
// GOMAXPROCS (see the sharded-vs-serial lockstep differential).

import (
	"fmt"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/video"
)

// lane is one shard's private engine state.
type lane struct {
	id  int
	sys *System

	// Per-shard half of the event-driven invalidation state; exactly the
	// serial engine's recheckRing/availEvents/assignedLog/candScratch,
	// restricted to the lane's stripes (see invalidation.go).
	recheckRing [][]int32
	availEvents []availEvent
	assignedLog []int32
	candScratch []int32

	// fnStack supports the visitLocal trampoline: the matcher's DFS
	// re-enters VisitServers from inside callbacks, so the active callback
	// is a stack, not a slot. tramp is allocated once to keep the hot
	// visit path free of per-call closures.
	fnStack []func(right int) bool
	tramp   func(box int, local int32) bool
}

func (ln *lane) init(s *System, id int) {
	ln.id = id
	ln.sys = s
	ln.tramp = func(box int, local int32) bool {
		if local < 0 {
			local = int32(ln.sys.sharded.Register(ln.id, box))
		}
		return ln.fnStack[len(ln.fnStack)-1](int(local))
	}
}

// preRegisterShardRights materializes every sub-matcher right the
// allocation can ever need: stripe st's holders are exactly the boxes
// st's requests can reach, so registering each holder with st's shard at
// construction covers every future Register call. Without this, rights
// grow lazily at first touch — and a fresh-video churn workload touches
// new (shard, box) pairs every round, costing ~2MB/round in right-record
// and capacity-view growth on the sharded engine (measured by
// BenchmarkStepShardScaling). Registration order only renames shard-local
// right ids; results are unchanged (Config.LazyShardRights restores the
// lazy path for populations too large to pre-register).
func (s *System) preRegisterShardRights() {
	for st, holders := range s.cfg.Alloc.ByStripe {
		sh := s.shardOf(video.StripeID(st))
		for _, b := range holders {
			s.sharded.Register(sh, int(b))
		}
	}
}

// shardAdjacency presents the Section 2.2 graph to one shard's sub-matcher
// in the shard's local right-id space. Only lefts owned by the shard ever
// reach it, so every translation stays within the lane.
type shardAdjacency struct{ ln *lane }

// VisitServers mirrors adjacency.VisitServers, emitting local right ids:
// allocation holders translated through the shard's flat global→local
// table (one array load each; Register materializes the right on first
// touch — safe in the lane's own stage since only the owning shard
// mutates its tables), then swarm predecessors via the store's
// visitLocal (whose cached boxLocal makes the common case a straight
// array read; -1 falls back to registration).
func (a shardAdjacency) VisitServers(left int, fn func(right int) bool) {
	ln := a.ln
	s := ln.sys
	slot := int32(left)
	stripe := s.reqStripe[slot]
	requester := s.reqBox[slot]
	for _, b := range s.cfg.Alloc.ByStripe[stripe] {
		if b != requester {
			if !fn(s.sharded.Register(ln.id, int(b))) {
				return
			}
		}
	}
	if s.cfg.DisableCacheServing {
		return
	}
	ln.fnStack = append(ln.fnStack, fn)
	s.avail.visitLocal(stripe, requester, s.reqProgress[slot], s.reqProgress, ln.tramp)
	ln.fnStack = ln.fnStack[:len(ln.fnStack)-1]
}

// BeginServers implements bipartite.CursorAdjacency for the lane: the
// sub-matcher's hot path, bypassing the fnStack/tramp machinery entirely
// (that pair stays for the VisitServers adapter form). Same staging as
// adjacency's cursor, with every yielded right translated to the shard's
// local id space; Register on first touch is safe here for the same
// reason as in VisitServers — only the owning shard mutates its tables.
func (a shardAdjacency) BeginServers(left int, c *bipartite.Cursor) {
	c.Left = int32(left)
	c.Stage = 0
	c.Index = 0
}

// NextServer implements bipartite.CursorAdjacency on local right ids.
func (a shardAdjacency) NextServer(c *bipartite.Cursor) int {
	ln := a.ln
	s := ln.sys
	slot := c.Left
	stripe := s.reqStripe[slot]
	requester := s.reqBox[slot]
	if c.Stage == 0 {
		holders := s.cfg.Alloc.ByStripe[stripe]
		for int(c.Index) < len(holders) {
			b := holders[c.Index]
			c.Index++
			if b != requester {
				return s.sharded.Register(ln.id, int(b))
			}
		}
		if s.cfg.DisableCacheServing {
			c.Stage = 2
			return -1
		}
		c.Stage = 1
		c.ID = s.avail.visitHead(stripe)
	}
	if c.Stage == 1 {
		box, local, next := s.avail.visitStep(stripe, c.ID, requester, s.reqProgress[slot], s.reqProgress)
		c.ID = next
		if box >= 0 {
			if local < 0 {
				return s.sharded.Register(ln.id, int(box))
			}
			return int(local)
		}
		c.Stage = 2
	}
	return -1
}

// CanServe translates the local right back to its box and defers to the
// global adjacency.
func (a shardAdjacency) CanServe(left, right int) bool {
	s := a.ln.sys
	return adjacency{s}.CanServe(left, s.sharded.Global(a.ln.id, right))
}

// ServerCountHint implements bipartite.Hinted (global information only).
func (a shardAdjacency) ServerCountHint(left int) int {
	return adjacency{a.ln.sys}.ServerCountHint(left)
}

// StableEdge implements bipartite.Hinted on local right ids.
func (a shardAdjacency) StableEdge(left, right int) bool {
	s := a.ln.sys
	return adjacency{s}.StableEdge(left, s.sharded.Global(a.ln.id, right))
}

// runShards runs fn(shard) concurrently for every shard and waits.
// Goroutines are spawned per phase — at most a handful of phases per
// round, so pool bookkeeping would cost more than it saves.
func (s *System) runShards(fn func(sh int)) {
	var wg sync.WaitGroup
	wg.Add(s.numShards)
	for sh := 0; sh < s.numShards; sh++ {
		go func() {
			defer wg.Done()
			fn(sh)
		}()
	}
	wg.Wait()
}

// matchSharded runs the round's matching stages on the sharded engine:
// every shard refreshes its capacity views, repairs flagged assignments
// (or sweeps), and augments over its own sub-graph in parallel; then the
// serial tail merges per-shard loads in fixed shard order, evicts
// oversubscribed claims deterministically, and completes the matching to
// a global maximum with cross-shard alternating paths. Returns the final
// unmatched lefts (ascending).
func (s *System) matchSharded() []int {
	targeted := s.eventDriven && !s.needSweep
	s.runShards(func(sh int) {
		ln := &s.lanes[sh]
		s.sharded.RefreshCapacities(sh)
		adj := shardAdjacency{ln}
		if targeted {
			s.invalidateTargetedShard(ln, adj)
		} else {
			if s.eventDriven {
				s.discardInvalidationBacklogShard(ln)
			}
			s.sharded.Sub(sh).Revalidate(adj)
		}
		s.shardUnmatched[sh] = s.sharded.Sub(sh).AugmentAll(adj)
	})
	spill := s.sharded.Merge()
	return s.sharded.GlobalAugment(adjacency{s}, spill, s.shardUnmatched)
}

// invalidateTargetedShard is invalidateTargeted restricted to one lane:
// same candidate gathering (due rechecks + the lane's freeze/expiry
// events), same batch invalidation, same certificate re-derivation — over
// the lane's sub-matcher and ring. The union over lanes covers exactly
// the candidates the serial engine gathers.
func (s *System) invalidateTargetedShard(ln *lane, adj shardAdjacency) {
	bucket := s.round % len(ln.recheckRing)
	due := ln.recheckRing[bucket]
	ln.recheckRing[bucket] = due[:0]
	cand := append(ln.candScratch[:0], due...)
	ln.availEvents = s.avail.drainEventsShard(ln.id, ln.availEvents[:0])
	sub := s.sharded.Sub(ln.id)
	for _, ev := range ln.availEvents {
		lr := s.sharded.Local(ln.id, int(ev.box))
		if lr < 0 {
			continue
		}
		for _, l := range sub.AssignedLefts(lr) {
			if s.reqStripe[l] == ev.stripe {
				cand = append(cand, l)
			}
		}
	}
	sub.InvalidateBatch(adj, cand)
	prev := int32(-1)
	for _, l := range cand { // sorted and deduped by InvalidateBatch's ordering
		if l == prev {
			continue
		}
		prev = l
		s.scheduleCertificateShard(ln, int(l))
	}
	ln.candScratch = cand
}

// scheduleCertificateShard mirrors scheduleCertificate on a lane's ring.
// Safe in the lane's parallel stage: it reads the store's same-stripe
// index (owned by this shard, quiescent during the stage) and writes only
// the lane's ring.
func (s *System) scheduleCertificateShard(ln *lane, l int) {
	lr := s.sharded.Sub(ln.id).Server(l)
	if lr < 0 {
		return
	}
	r := s.sharded.Global(ln.id, lr)
	slot := int32(l)
	st := s.reqStripe[slot]
	if s.cfg.Alloc.Stores(r, st) {
		return
	}
	need := s.reqProgress[slot]
	hasLive, bestFrozen, ok := s.avail.margin(st, int32(r), need, s.reqProgress)
	switch {
	case !ok:
		s.scheduleRecheckShard(ln, slot, 1)
	case hasLive:
		// Live margin: nothing to watch until an event fires.
	default:
		s.scheduleRecheckShard(ln, slot, int(bestFrozen-need))
	}
}

// scheduleRecheckShard is scheduleRecheck on a lane's ring.
func (s *System) scheduleRecheckShard(ln *lane, l int32, delta int) {
	bucket := (s.round + delta) % len(ln.recheckRing)
	ln.recheckRing[bucket] = append(ln.recheckRing[bucket], l)
}

// discardInvalidationBacklogShard is discardInvalidationBacklog for one
// lane (a sweep round supersedes the lane's targeted work).
func (s *System) discardInvalidationBacklogShard(ln *lane) {
	bucket := s.round % len(ln.recheckRing)
	ln.recheckRing[bucket] = ln.recheckRing[bucket][:0]
	ln.availEvents = s.avail.drainEventsShard(ln.id, ln.availEvents[:0])
}

// certMode is the serially decided disposition of a round's assignment
// logs (see refreshAssignmentCertificates for the episode logic).
type certMode int

const (
	certsDiscard     certMode = iota // stall round: drain logs, keep sweeping
	certsRebuild                     // first clean round after stalls: rebuild all
	certsIncremental                 // steady state: certify new assignments only
)

// refreshAssignmentCertificatesSharded applies refreshAssignmentCertificates
// shard-by-shard: the sweep-episode transition is decided serially, then
// every lane drains its own assignment log and re-derives certificates in
// parallel.
func (s *System) refreshAssignmentCertificatesSharded(unmatched int) {
	mode := certsIncremental
	if unmatched > 0 {
		s.needSweep = true
		mode = certsDiscard
	} else if s.needSweep {
		s.needSweep = false
		mode = certsRebuild
	}
	s.runShards(func(sh int) {
		ln := &s.lanes[sh]
		sub := s.sharded.Sub(sh)
		ln.assignedLog = sub.DrainAssigned(ln.assignedLog[:0])
		switch mode {
		case certsRebuild:
			for _, l := range sub.ActiveLefts() {
				s.scheduleCertificateShard(ln, int(l))
			}
		case certsIncremental:
			for _, l := range ln.assignedLog {
				s.scheduleCertificateShard(ln, int(l))
			}
		}
	})
}

// advanceProgressSharded advances matched requests one chunk, each shard
// walking its own sub-matcher's active lefts (reqProgress writes are
// confined to the owning shard; readers in this phase only touch their
// own lane's slots).
func (s *System) advanceProgressSharded() {
	s.runShards(func(sh int) {
		sub := s.sharded.Sub(sh)
		for _, l := range sub.ActiveLefts() {
			if sub.Server(int(l)) != bipartite.Unassigned {
				s.reqProgress[l]++
			}
		}
	})
}

// verifyMatching is the paranoid-mode check: per-shard sub-matcher
// consistency against the lane adjacency, then the global load table
// against true capacities.
func (s *System) verifyMatching(adj adjacency) error {
	if s.sharded == nil {
		return s.matcher.Verify(adj)
	}
	for sh := 0; sh < s.numShards; sh++ {
		if err := s.sharded.Sub(sh).Verify(shardAdjacency{&s.lanes[sh]}); err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return s.sharded.VerifyLoads()
}
