package scenario

import (
	"fmt"
	"hash/fnv"
	"strings"

	vod "repro"
	"repro/internal/trace"
)

// RunOptions configures an end-to-end scenario run.
type RunOptions struct {
	// Seed overrides the spec's default seed (0 = use the spec's).
	Seed uint64
	// Shards is the engine shard count. Scenario results are bit-identical
	// at every shard count, so this is purely a throughput knob.
	Shards int
}

// Result is one scenario run: the expanded corpus plus the engine report
// obtained by replaying it.
type Result struct {
	Expanded   *Expanded
	CorpusHash string
	Report     vod.Report
}

// Run expands the spec and replays the corpus through a fresh engine.
func Run(s *Spec, opt RunOptions) (*Result, error) {
	ex, err := Expand(s, opt.Seed)
	if err != nil {
		return nil, err
	}
	vs := ex.VodSpec
	vs.Shards = opt.Shards
	sys, err := vod.New(vs)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	rep, err := sys.Run(trace.NewReplayer(ex.Trace), s.TotalRounds())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return &Result{Expanded: ex, CorpusHash: CorpusHash(ex.Trace), Report: rep}, nil
}

// CorpusHash fingerprints a corpus: FNV-1a 64 over its CSV serialization,
// rendered as "fnv1a:%016x". Byte-identity claims in tests and CI compare
// this hash.
func CorpusHash(t *trace.Trace) string {
	h := fnv.New64a()
	if err := t.WriteCSV(h); err != nil {
		// Hash writers never fail; keep the signature churn-free.
		panic(err)
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

// GoldenSummary renders the run as the stable text format pinned by the
// committed golden files. Every line is deterministic: corpus generation
// never consults the engine, and every engine quantity reported here
// (admission counters, canonicalized stalls, Dulmage–Mendelsohn-invariant
// obstruction counts, utilization, startup delays) is bit-identical at
// every shard count.
func (r *Result) GoldenSummary() string {
	ex := r.Expanded
	st := ex.Trace.Summarize()
	rep := r.Report
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s (spec v%d)\n", ex.Spec.Name, Version)
	fmt.Fprintf(&b, "seed: %d\n", ex.Seed)
	fmt.Fprintf(&b, "phases: %s\n", strings.Join(ex.Spec.PhaseNames(), ", "))
	fmt.Fprintf(&b, "system: boxes=%d videos=%d stripes=%d duration=%d growth=%v\n",
		ex.VodSpec.Boxes, ex.Catalog.M, ex.Catalog.C, ex.Catalog.T, ex.VodSpec.Growth)
	fmt.Fprintf(&b, "corpus: events=%d rounds=%d boxes=%d videos=%d peak-round=%d dropped=%d\n",
		st.Events, st.Rounds, st.DistinctBoxes, st.DistinctVids, st.PeakPerRound, ex.Dropped)
	fmt.Fprintf(&b, "corpus-hash: %s\n", r.CorpusHash)
	fmt.Fprintf(&b, "admission: demands=%d admitted=%d rejected-busy=%d rejected-swarm=%d\n",
		rep.Demands, rep.Admitted, rep.RejectedBusy, rep.RejectedSwarm)
	fmt.Fprintf(&b, "outcome: completed=%d stalls=%d obstructions=%d fail-round=%d\n",
		rep.CompletedViewings, rep.Stalls, len(rep.Obstructions), rep.FailRound)
	fmt.Fprintf(&b, "load: peak-requests=%d max-swarm=%d mean-utilization=%.6f\n",
		rep.PeakRequests, rep.MaxSwarm, rep.MeanUtilization)
	fmt.Fprintf(&b, "startup: mean=%.6f p99=%.6f\n",
		rep.StartupDelay.Mean, rep.StartupDelay.P99)
	return b.String()
}
