package experiments

import (
	"repro/internal/allocation"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/video"
)

func init() {
	register(Experiment{
		ID:   "E4",
		Name: "obstruction-prob",
		Claim: "the probability that a random allocation admits an obstruction " +
			"vanishes as k grows (Lemmas 3–4, first-moment bound in the Theorem 1 proof)",
		Run: runE4,
	})
}

// buildFixedCatalog builds a homogeneous system with a *fixed* catalog m
// and replication k, spreading the k·m·c replica slots evenly over boxes
// (unlike buildHom, storage usage grows with k here). Used to isolate the
// effect of k at constant catalog.
func buildFixedCatalog(seed uint64, n, m, c, T, k int, u, mu float64, tweak func(*core.Config)) (*core.System, error) {
	total := k * m * c
	slots := make([]int, n)
	base, rem := total/n, total%n
	for i := range slots {
		slots[i] = base
		if i < rem {
			slots[i]++
		}
	}
	cat, err := video.NewCatalog(m, c, T)
	if err != nil {
		return nil, err
	}
	alloc, err := allocation.Permutation(stats.NewRNG(seed), cat, slots, k)
	if err != nil {
		return nil, err
	}
	uploads := make([]float64, n)
	for i := range uploads {
		uploads[i] = u
	}
	cfg := core.Config{Alloc: alloc, Uploads: uploads, Mu: mu}
	if tweak != nil {
		tweak(&cfg)
	}
	return core.NewSystem(cfg)
}

func runE4(o Options) Result {
	// Full mode grew 4× over the seed population now that round cost
	// tracks live work; the attack suite's per-box generators (e.g.
	// AvoidPossession scans every idle box against the catalog) keep n
	// modest here — the large-n regime is E15's job.
	n := pick(o, 48, 256)
	m := n / 2
	c, T := 4, 20
	u, mu := 1.1, 1.2
	ks := pick(o, []int{1, 2, 4}, []int{1, 2, 3, 4, 6, 8})
	trials := pick(o, 6, 12)
	rounds := pick(o, 60, 80)
	suite := attackSuite()

	fig := report.NewFigure("E4: defeat probability vs replication factor k", "k", "P(defeated)")
	empirical := fig.AddSeries("empirical (adversary suite)")
	coarse := fig.AddSeries("first-moment bound (coarse)")

	tbl := report.New("E4: obstruction probability vs k",
		"k", "defeated/trials", "empirical P", "union bound (coarse)", "union bound (exact)")
	hp := analysis.HomogeneousParams{N: n, U: u, D: (m*4 + n - 1) / n, Mu: mu}
	for _, k := range ks {
		defeated, err := parallelCount(o.workers(), trials, func(i int) (bool, error) {
			seed := mixSeed(o.Seed, uint64(i), uint64(k))
			for _, g := range suite {
				sys, err := buildFixedCatalog(seed, n, m, c, T, k, u, mu, nil)
				if err != nil {
					return false, err
				}
				ok, err := survives(sys, g.make(seed), rounds)
				if err != nil {
					return false, err
				}
				if !ok {
					return true, nil // defeated
				}
			}
			return false, nil
		})
		if err != nil {
			tbl.AddRow(report.Cell(k), "error: "+err.Error(), "", "", "")
			continue
		}
		p := float64(defeated) / float64(trials)
		cb := analysis.UnionBoundCoarse(hp, c, k)
		eb := analysis.UnionBoundExact(hp, m, c, k)
		empirical.Add(float64(k), p)
		coarse.Add(float64(k), cb)
		tbl.AddRowValues(k, report.Cell(float64(defeated))+"/"+report.Cell(float64(trials)), p, cb, eb)
	}
	tbl.AddNote("n=%d m=%d c=%d u=%.2f µ=%.2f trials=%d; empirical defeats lower-bound the true "+
		"obstruction probability (the suite is not the universal adversary); the union bound upper-bounds it",
		n, m, c, u, mu, trials)
	tbl.AddNote("claim shape: both curves decrease toward 0 as k grows")
	return Result{ID: "E4", Name: "obstruction-prob", Claim: registry["E4"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
