package core

import (
	"repro/internal/video"
)

// View is the read-only window demand generators get on the system.
// Adversarial generators use it to aim at the weakest point the current
// state exposes; it exposes nothing a real-world adversary observing the
// system could not infer.
type View struct{ s *System }

// View returns the system's read-only view.
func (s *System) View() *View { return &s.view }

// Round returns the current round.
func (v *View) Round() int { return v.s.round }

// NumBoxes returns the number of boxes.
func (v *View) NumBoxes() int { return v.s.n }

// Catalog returns the catalog.
func (v *View) Catalog() video.Catalog { return v.s.cat }

// BoxIdle reports whether box b can accept a demand this round.
func (v *View) BoxIdle(b int) bool {
	box := &v.s.boxes[b]
	return !box.busy && box.outstanding == 0
}

// Upload returns the normalized upload capacity of box b.
func (v *View) Upload(b int) float64 { return v.s.cfg.Uploads[b] }

// UploadSlots returns the matching capacity of box b in stripe slots
// (after relay reservations).
func (v *View) UploadSlots(b int) int64 { return int64(v.s.boxes[b].capSlots) }

// SwarmSize returns the current swarm size of a video.
func (v *View) SwarmSize(id video.ID) int { return v.s.tracker.Size(id) }

// SwarmAllowance returns how many boxes may still join the video's swarm
// this round under the growth bound µ.
func (v *View) SwarmAllowance(id video.ID) int { return v.s.tracker.Allowance(id) }

// Stores reports whether box b statically stores stripe st.
func (v *View) Stores(b int, st video.StripeID) bool { return v.s.cfg.Alloc.Stores(b, st) }

// Replicas returns the allocation replica count of a stripe.
func (v *View) Replicas(st video.StripeID) int { return v.s.cfg.Alloc.Replicas(st) }

// StripeHolders returns the boxes storing stripe st by allocation.
// The returned slice must not be modified.
func (v *View) StripeHolders(st video.StripeID) []int32 { return v.s.cfg.Alloc.ByStripe[st] }

// IdleBoxes appends the indices of all idle boxes to dst in ascending
// order and returns it. Cost is O(idle) via the system's hierarchical
// idle bitmap — no per-call sort, and it never scans the full
// population. Callers that can accept arbitrary order (or want to stop
// early) should use VisitIdle instead.
func (v *View) IdleBoxes(dst []int) []int {
	return v.s.idleBits.appendAscending(dst)
}

// VisitIdle calls fn for every idle box, stopping early if fn returns
// false. Iteration order is arbitrary (the idle index's internal order)
// but deterministic for a given demand history; cost is O(visited).
func (v *View) VisitIdle(fn func(b int) bool) {
	for _, b := range v.s.idleList {
		if !fn(int(b)) {
			return
		}
	}
}

// NumIdle returns the number of idle boxes in O(1).
func (v *View) NumIdle() int { return len(v.s.idleList) }

// ActiveRequests returns the number of in-flight stripe requests.
func (v *View) ActiveRequests() int { return v.s.activeReqs }

// ServerLoad returns the matcher load of box b this round (slots in use
// as of the previous matching). Note: while matched cardinalities are
// bit-identical at every shard count, *which* maximum matching realizes
// them can differ, so per-box loads may legitimately vary with
// Config.Shards; generators that must stay shard-invariant should not
// branch on it.
func (v *View) ServerLoad(b int) int64 {
	if v.s.sharded != nil {
		return v.s.sharded.Load(b)
	}
	return v.s.matcher.Load(b)
}
