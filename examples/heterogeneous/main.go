// Heterogeneous ISP fleet: a bimodal population of rich (fiber) and poor
// (DSL) boxes. Poor boxes cannot even sustain one video stream upstream
// (u = 0.5 < 1), so the Section 4 construction relays their requests
// through reserved capacity on rich boxes. The example verifies the
// analytical preconditions, builds the relayed system, and stresses it
// with demand that hits the poor boxes first.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	vod "repro"
)

func main() {
	const (
		n     = 120
		uStar = 1.5
		mu    = 1.05
	)
	// 30% DSL boxes at u=0.5, 70% fiber at u=3.0; storage proportional to
	// upload (d_b = 2·u_b) keeps the system u*-storage-balanced.
	pop := vod.Bimodal(n, 0.7, 3.0, 0.5, 2.0)

	plan, err := vod.HeteroPlanFor(pop, uStar, mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: n=%d, average upload %.2f, upload deficit ∆(1) = %.1f\n",
		n, plan.Params.AvgUpload(), plan.Deficit1)
	fmt.Printf("necessary condition u > 1 + ∆(1)/n: %v\n", plan.NecessaryOK)
	fmt.Printf("u*-upload-compensatable: %v; u*-storage-balanced: %v\n",
		plan.Compensatable, plan.Balanced)
	fmt.Printf("Theorem 2 plan: c = %d stripes, k = %d replicas (theory), catalog bound Ω = %.0f\n\n",
		plan.C, plan.K, plan.Bound)

	sys, err := vod.New(vod.Spec{
		Boxes:    n,
		Uploads:  pop.Uploads,
		Storages: pop.Storage,
		UStar:    uStar, // activates relay compensation
		Growth:   mu,
		Duration: 60,
		Replicas: 3, // practical replication; theory's k is far larger
		Seed:     9,
	})
	if err != nil {
		log.Fatal(err)
	}
	cat := sys.Catalog()
	fmt.Printf("built relayed system: catalog %d videos × %d stripes\n", cat.M, cat.C)

	rep, err := sys.Run(vod.NewPoorFirst(uStar), 240)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed viewings: %d, obstructions: %d\n", rep.CompletedViewings, len(rep.Obstructions))
	fmt.Printf("start-up delay: min %v (rich: 4) / max %v (poor, relayed: 6) rounds\n",
		rep.StartupDelay.Min, rep.StartupDelay.Max)
	if rep.Failed {
		fmt.Println("UNEXPECTED: relayed system failed")
	} else {
		fmt.Println("poor boxes were served through their relays without obstruction.")
	}
}
