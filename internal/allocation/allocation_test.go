package allocation

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/video"
)

func TestHomogeneousPermutationExactBalance(t *testing.T) {
	rng := stats.NewRNG(1)
	const n, d, c, T, k = 20, 4, 3, 50, 5
	a, cat, err := HomogeneousPermutation(rng, n, d, c, T, k)
	if err != nil {
		t.Fatal(err)
	}
	if cat.M != d*n/k {
		t.Fatalf("catalog m = %d, want %d", cat.M, d*n/k)
	}
	// Every box stores exactly d*c replicas.
	for b := range a.ByBox {
		if len(a.ByBox[b]) != d*c {
			t.Errorf("box %d stores %d replicas, want %d", b, len(a.ByBox[b]), d*c)
		}
	}
	// Every stripe has exactly k replicas.
	for s := range a.ByStripe {
		if len(a.ByStripe[s]) != k {
			t.Errorf("stripe %d has %d replicas, want %d", s, len(a.ByStripe[s]), k)
		}
	}
	if a.Overflow != 0 {
		t.Errorf("permutation overflow = %d", a.Overflow)
	}
}

func TestPermutationDivisibilityError(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, _, err := HomogeneousPermutation(rng, 10, 3, 2, 50, 7); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestPermutationSlotMismatch(t *testing.T) {
	rng := stats.NewRNG(1)
	cat := video.MustCatalog(4, 2, 10)
	if _, err := Permutation(rng, cat, []int{3, 3}, 1); err == nil {
		t.Fatal("expected slot mismatch error (6 slots, 8 replicas)")
	}
	if _, err := Permutation(rng, cat, []int{4, 4}, 1); err != nil {
		t.Fatalf("exact slots rejected: %v", err)
	}
	if _, err := Permutation(rng, cat, []int{4, -4}, 1); err == nil {
		t.Fatal("expected negative-slot error")
	}
	if _, err := Permutation(rng, cat, []int{4, 4}, 0); err == nil {
		t.Fatal("expected k>=1 error")
	}
}

func TestPermutationHeterogeneousSlots(t *testing.T) {
	rng := stats.NewRNG(3)
	cat := video.MustCatalog(6, 2, 10) // 12 stripes, k=2 -> 24 replicas
	slots := []int{12, 6, 6}
	a, err := Permutation(rng, cat, slots, 2)
	if err != nil {
		t.Fatal(err)
	}
	for b, want := range slots {
		if len(a.ByBox[b]) != want {
			t.Errorf("box %d load %d, want %d", b, len(a.ByBox[b]), want)
		}
	}
}

func TestPermutationDeterminism(t *testing.T) {
	a1, _, err := HomogeneousPermutation(stats.NewRNG(42), 10, 2, 2, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, _ := HomogeneousPermutation(stats.NewRNG(42), 10, 2, 2, 20, 4)
	for s := range a1.ByStripe {
		if len(a1.ByStripe[s]) != len(a2.ByStripe[s]) {
			t.Fatal("determinism broken: different replica counts")
		}
		for i := range a1.ByStripe[s] {
			if a1.ByStripe[s][i] != a2.ByStripe[s][i] {
				t.Fatal("determinism broken: different boxes")
			}
		}
	}
}

func TestIndependentAllocation(t *testing.T) {
	rng := stats.NewRNG(7)
	cat := video.MustCatalog(10, 4, 20)
	n := 30
	slots := make([]int, n)
	for i := range slots {
		slots[i] = 8 // 240 slots for 10*4*3 = 120 replicas: roomy
	}
	a, err := Independent(rng, cat, slots, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := range a.ByStripe {
		total += len(a.ByStripe[s])
	}
	if total+a.Overflow != 3*cat.NumStripes() {
		t.Fatalf("replicas %d + overflow %d != %d", total, a.Overflow, 3*cat.NumStripes())
	}
	// No box exceeds its slots.
	for b := range a.ByBox {
		if len(a.ByBox[b]) > slots[b] {
			t.Errorf("box %d over capacity: %d > %d", b, len(a.ByBox[b]), slots[b])
		}
	}
}

func TestIndependentTightOverflows(t *testing.T) {
	// With slots exactly equal to replicas, collisions are certain for
	// this size; overflow must be counted, never a capacity violation.
	rng := stats.NewRNG(11)
	cat := video.MustCatalog(20, 4, 20)
	n := 16
	slots := make([]int, n)
	for i := range slots {
		slots[i] = 20 * 4 * 2 / n
	}
	a, err := Independent(rng, cat, slots, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overflow == 0 {
		t.Log("note: no overflow this seed (unlikely but legal)")
	}
	st := a.Stats()
	if st.Overflow != a.Overflow {
		t.Error("Stats does not propagate overflow")
	}
}

func TestIndependentErrors(t *testing.T) {
	rng := stats.NewRNG(1)
	cat := video.MustCatalog(2, 2, 10)
	if _, err := Independent(rng, cat, []int{0, 0}, 1); err == nil {
		t.Fatal("expected no-storage error")
	}
	if _, err := Independent(rng, cat, []int{4}, 0); err == nil {
		t.Fatal("expected k>=1 error")
	}
	if _, err := Independent(rng, cat, []int{-1}, 1); err == nil {
		t.Fatal("expected negative-slot error")
	}
}

func TestFullReplicationRoundRobin(t *testing.T) {
	cat := video.MustCatalog(2, 2, 10) // 4 stripes
	slots := []int{4, 4, 4, 4}
	a, err := FullReplication(cat, slots, 4) // 16 replicas over 16 slots
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.ByStripe {
		if len(a.ByStripe[s]) != 4 {
			t.Errorf("stripe %d has %d replicas", s, len(a.ByStripe[s]))
		}
	}
	for b := range a.ByBox {
		if len(a.ByBox[b]) != 4 {
			t.Errorf("box %d load %d", b, len(a.ByBox[b]))
		}
	}
}

func TestFullReplicationExhaustion(t *testing.T) {
	cat := video.MustCatalog(4, 2, 10)
	if _, err := FullReplication(cat, []int{3}, 1); err == nil {
		t.Fatal("expected storage-exhaustion error")
	}
	if _, err := FullReplication(cat, []int{8}, 0); err == nil {
		t.Fatal("expected k>=1 error")
	}
}

func TestStoresAndAccessors(t *testing.T) {
	rng := stats.NewRNG(5)
	a, cat, err := HomogeneousPermutation(rng, 6, 2, 2, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Catalog() != cat {
		t.Error("Catalog accessor mismatch")
	}
	if a.NumBoxes() != 6 {
		t.Errorf("NumBoxes = %d", a.NumBoxes())
	}
	for s := video.StripeID(0); int(s) < cat.NumStripes(); s++ {
		if a.Replicas(s) != 3 {
			t.Errorf("Replicas(%d) = %d", s, a.Replicas(s))
		}
		for _, b := range a.ByStripe[s] {
			if !a.Stores(int(b), s) {
				t.Errorf("Stores(%d,%d) = false for a stored replica", b, s)
			}
		}
	}
	if a.Stores(0, 0) {
		// Only a problem if box 0 genuinely does not store stripe 0.
		found := false
		for _, b := range a.ByStripe[0] {
			if b == 0 {
				found = true
			}
		}
		if !found {
			t.Error("Stores returned true for non-stored stripe")
		}
	}
}

func TestStatsSummary(t *testing.T) {
	rng := stats.NewRNG(13)
	a, _, err := HomogeneousPermutation(rng, 12, 3, 2, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.MaxBoxLoad != 6 || st.BoxLoad.Mean != 6 {
		t.Errorf("box load stats wrong: %+v", st)
	}
	if st.MinStripes != 4 || st.StripeLoad.Mean != 4 {
		t.Errorf("stripe load stats wrong: %+v", st)
	}
}

// Property: permutation allocation is always exactly balanced and complete.
func TestQuickPermutationBalance(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw, cRaw, kRaw uint8) bool {
		n := int(nRaw%20) + 2
		d := int(dRaw%4) + 1
		c := int(cRaw%5) + 1
		k := int(kRaw%4) + 1
		if (d*n)%k != 0 {
			return true // skip invalid combinations
		}
		a, cat, err := HomogeneousPermutation(stats.NewRNG(seed), n, d, c, 10, k)
		if err != nil {
			return false
		}
		for b := range a.ByBox {
			if len(a.ByBox[b]) != d*c {
				return false
			}
		}
		for s := 0; s < cat.NumStripes(); s++ {
			if a.Replicas(video.StripeID(s)) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: independent allocation never overfills a box and conserves
// replicas + overflow.
func TestQuickIndependentConservation(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw%15) + 2
		k := int(kRaw%3) + 1
		cat := video.MustCatalog(6, 3, 10)
		slots := make([]int, n)
		for i := range slots {
			slots[i] = 2 + rng.Intn(10)
		}
		a, err := Independent(rng, cat, slots, k)
		if err != nil {
			return false
		}
		placed := 0
		for b := range a.ByBox {
			if len(a.ByBox[b]) > slots[b] {
				return false
			}
			placed += len(a.ByBox[b])
		}
		return placed+a.Overflow == k*cat.NumStripes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
