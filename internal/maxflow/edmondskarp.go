package maxflow

// EdmondsKarp implements the Edmonds–Karp shortest-augmenting-path
// algorithm, O(VE²). It is intentionally simple and serves as the
// correctness oracle for Dinic and push–relabel in property tests, and as
// a baseline in the solver-ablation experiment (E11).
type EdmondsKarp struct {
	parentEdge []int32
	queue      []int32
}

// Name implements Solver.
func (ek *EdmondsKarp) Name() string { return "edmonds-karp" }

// MaxFlow implements Solver (warm-startable, like Dinic).
func (ek *EdmondsKarp) MaxFlow(g *Network, source, sink int) int64 {
	if source == sink {
		return 0
	}
	n := g.numNodes
	if cap(ek.parentEdge) < n {
		ek.parentEdge = make([]int32, n)
		ek.queue = make([]int32, 0, n)
	}
	ek.parentEdge = ek.parentEdge[:n]

	var total int64
	for {
		for i := range ek.parentEdge {
			ek.parentEdge[i] = -1
		}
		ek.parentEdge[source] = -2
		ek.queue = ek.queue[:0]
		ek.queue = append(ek.queue, int32(source))
		found := false
		for head := 0; head < len(ek.queue) && !found; head++ {
			v := ek.queue[head]
			for _, e := range g.adj[v] {
				if g.cap[e] <= 0 {
					continue
				}
				w := g.to[e]
				if ek.parentEdge[w] != -1 {
					continue
				}
				ek.parentEdge[w] = e
				if int(w) == sink {
					found = true
					break
				}
				ek.queue = append(ek.queue, w)
			}
		}
		if !found {
			return total
		}
		// Bottleneck along the path.
		bottleneck := int64(1) << 62
		for v := int32(sink); int(v) != source; {
			e := ek.parentEdge[v]
			if g.cap[e] < bottleneck {
				bottleneck = g.cap[e]
			}
			v = g.to[e^1]
		}
		for v := int32(sink); int(v) != source; {
			e := ek.parentEdge[v]
			g.cap[e] -= bottleneck
			g.cap[e^1] += bottleneck
			v = g.to[e^1]
		}
		total += bottleneck
	}
}
