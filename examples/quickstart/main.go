// Quickstart: build a homogeneous box fleet, push a realistic Zipf
// workload through it, and read the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	vod "repro"
)

func main() {
	// 200 set-top boxes, each uploading 1.5× the video bitrate and storing
	// 4 videos. Stripes and catalog size are derived automatically: with
	// k=4 replicas per stripe the system stores m = d·n/k = 200 videos.
	sys, err := vod.New(vod.Spec{
		Boxes:   200,
		Upload:  1.5,
		Storage: 4,
		Growth:  1.2, // swarms may grow 20% per round
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	cat := sys.Catalog()
	fmt.Printf("catalog: %d videos × %d stripes, %d rounds each\n", cat.M, cat.C, cat.T)

	// Users arrive with probability 0.3 per idle box per round; popularity
	// follows Zipf(0.9). Retry keeps demands queued through admission
	// control so the start-up delay includes waiting.
	workload := vod.WithRetry(vod.NewZipfWorkload(7, 0.3, 0.9))
	rep, err := sys.Run(workload, 600)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("completed viewings:  %d\n", rep.CompletedViewings)
	fmt.Printf("admitted demands:    %d of %d\n", rep.Admitted, rep.Demands)
	fmt.Printf("mean utilization:    %.1f%% of upload slots\n", 100*rep.MeanUtilization)
	fmt.Printf("start-up delay:      mean %.2f rounds (intrinsic minimum is 3)\n", rep.StartupDelay.Mean)
	fmt.Printf("obstructions:        %d (Theorem 1 predicts none at these parameters)\n", len(rep.Obstructions))
	if rep.Failed {
		fmt.Println("UNEXPECTED: the system failed — see report.Obstructions")
	}
}
