// Package ckpt is the varint binary codec under the engine's
// checkpoint/restore machinery (core.System.EncodeState and friends).
// Writer and Reader are error-sticky: after the first failure every call
// is a no-op and the error surfaces once at the end, so serialization
// code reads as a flat field list instead of an error ladder. Integers
// use unsigned varints (zig-zag for signed values), floats their IEEE
// bits, so state dominated by small counters and -1 sentinels stays
// compact even at millions of boxes.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// maxSliceLen bounds decoded slice lengths so a corrupt or truncated
// stream fails cleanly instead of attempting a huge allocation.
const maxSliceLen = 1 << 32

// Writer serializes values to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush flushes buffered output and returns the first error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

// I64 writes a signed varint (zig-zag).
func (w *Writer) I64(v int64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// I32 writes an int32 as a signed varint.
func (w *Writer) I32(v int32) { w.I64(int64(v)) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	var b uint64
	if v {
		b = 1
	}
	w.U64(b)
}

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// I32s writes a length-prefixed []int32.
func (w *Writer) I32s(s []int32) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.I64(int64(v))
	}
}

// I64s writes a length-prefixed []int64.
func (w *Writer) I64s(s []int64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.I64(v)
	}
}

// Ints writes a length-prefixed []int.
func (w *Writer) Ints(s []int) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.I64(int64(v))
	}
}

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(s []float64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.F64(v)
	}
}

// Bools writes a length-prefixed []bool.
func (w *Writer) Bools(s []bool) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.Bool(v)
	}
}

// Reader deserializes values written by Writer, in the same order.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("ckpt: %w", err))
		return 0
	}
	return v
}

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.fail(fmt.Errorf("ckpt: %w", err))
		return 0
	}
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// I32 reads an int32.
func (r *Reader) I32() int32 { return int32(r.I64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U64() != 0 }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// sliceLen reads and bounds-checks a slice length prefix.
func (r *Reader) sliceLen() int {
	n := r.U64()
	if n > maxSliceLen {
		r.fail(fmt.Errorf("ckpt: slice length %d exceeds limit", n))
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.sliceLen()
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.fail(fmt.Errorf("ckpt: %w", err))
		return nil
	}
	return b
}

// I32s reads a length-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.sliceLen()
	if r.err != nil || n == 0 {
		return nil
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = r.I32()
	}
	return s
}

// I64s reads a length-prefixed []int64.
func (r *Reader) I64s() []int64 {
	n := r.sliceLen()
	if r.err != nil || n == 0 {
		return nil
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = r.I64()
	}
	return s
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.sliceLen()
	if r.err != nil || n == 0 {
		return nil
	}
	s := make([]int, n)
	for i := range s {
		s[i] = r.Int()
	}
	return s
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.sliceLen()
	if r.err != nil || n == 0 {
		return nil
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = r.F64()
	}
	return s
}

// Bools reads a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.sliceLen()
	if r.err != nil || n == 0 {
		return nil
	}
	s := make([]bool, n)
	for i := range s {
		s[i] = r.Bool()
	}
	return s
}
