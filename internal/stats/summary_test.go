package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Min != 5 || s.Max != 5 || s.P50 != 5 {
		t.Fatalf("single summary wrong: %+v", s)
	}
	if s.Std != 0 {
		t.Fatalf("single-element std should be 0, got %v", s.Std)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v, want sqrt(2.5)", s.Std)
	}
	if s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("order stats wrong: %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Errorf("median of {0,10} = %v, want 5", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Errorf("q0 = %v, want 0", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Errorf("q1 = %v, want 10", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("quantile of empty sample should be NaN")
	}
}

func TestMeanCI95Contains(t *testing.T) {
	xs := make([]float64, 1000)
	r := NewRNG(3)
	for i := range xs {
		xs[i] = r.Float64()
	}
	lo, hi := Summarize(xs).MeanCI95()
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("CI [%v,%v] should contain true mean 0.5 for this seed", lo, hi)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d count %d, want 1", i, c)
		}
	}
	h.Add(-1)
	h.Add(10)
	h.Add(100)
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d, want 1 and 2", h.Under, h.Over)
	}
	if h.Total != 13 {
		t.Errorf("total=%d, want 13", h.Total)
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0)=%v, want 0.5", got)
	}
	if f := h.Fraction(0); math.Abs(f-1.0/13) > 1e-12 {
		t.Errorf("Fraction(0)=%v", f)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi <= lo")
		}
	}()
	NewHistogram(1, 1, 5)
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	out := s.String()
	for _, want := range []string{"n=3", "mean=2", "min=1", "max=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestHistogramFractionEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("a", 2)
	c.Add("b", 1)
	c.Add("a", 3)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("zzz") != 0 {
		t.Fatalf("counter values wrong: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestZipfDistribution(t *testing.T) {
	r := NewRNG(77)
	z := NewZipf(100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	const trials = 200000
	counts := make([]int, 100)
	for i := 0; i < trials; i++ {
		counts[z.Sample(r)]++
	}
	// Item 0 should be about twice as frequent as item 1 for s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-2) > 0.15 {
		t.Errorf("count(0)/count(1) = %.3f, want ~2", ratio)
	}
	// Probabilities must sum to 1.
	sum := 0.0
	for i := 0; i < 100; i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(100) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZipfUniformCase(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Errorf("Prob(%d) = %v, want 0.1", i, z.Prob(i))
		}
	}
}

// Property: Summarize respects min <= p50 <= max and mean within [min,max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
