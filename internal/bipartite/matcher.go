// Package bipartite maintains the per-round connection matching of the
// paper's Section 2.2: unit-demand left nodes (stripe requests) are matched
// to capacitated right nodes (boxes, capacity in stripe slots ⌊u_b·c⌋).
//
// The Matcher is incremental: requests persist across rounds, and each
// round only repairs invalidated assignments and augments new or unmatched
// requests, which is dramatically cheaper than recomputing a max flow from
// scratch (ablated in experiment E11). Per-round cost tracks live work:
// active lefts are kept in a dense list (not rediscovered by scanning every
// slot ever allocated), and BFS scratch is reset by epoch stamping in O(1)
// rather than clearing peak-sized arrays. When augmentation stalls, the
// alternating-reachability set from the unmatched requests is exactly a
// Hall violator — the paper's *obstruction* certificate (Lemma 1): a set X
// of requests with total box capacity U_B(X) < |X|/c.
package bipartite

import (
	"fmt"
	"sort"
)

// Unassigned marks a left node with no current server.
const Unassigned = -1

// noStable marks an empty stableTo cache slot (distinct from any right).
const noStable = -2

// Adjacency exposes the dynamic bipartite graph. The simulator implements
// it directly over its swarm and allocation state so that edges never need
// to be materialized.
type Adjacency interface {
	// VisitServers calls fn for every right node currently able to serve
	// left node l, stopping early if fn returns false.
	VisitServers(left int, fn func(right int) bool)
	// CanServe reports whether right can currently serve left.
	CanServe(left, right int) bool
}

// Hinted is an optional Adjacency extension giving the matcher cheap
// paths around dead or settled probes. ServerCountHint returns an upper
// bound on the number of rights able to serve left; zero certifies the
// left currently has no edge at all, which lets Revalidate and AugmentAll
// skip probes without enumerating servers. StableEdge reports that the
// edge (left, right) — known to exist when it was assigned — cannot
// disappear while both endpoints stay live (e.g. the server holds the
// stripe statically), letting Revalidate skip re-validating it each round.
type Hinted interface {
	Adjacency
	ServerCountHint(left int) int
	StableEdge(left, right int) bool
}

// Matcher holds the incremental assignment state.
type Matcher struct {
	caps []int64 // capacity per right node, in slots
	load []int64 // current load per right node

	assigned []int32 // left -> right, or Unassigned
	active   []bool  // left liveness

	// Dense list of active lefts with back-pointers for O(1) removal, so
	// per-round scans cost O(live requests), not O(peak slots).
	activeLefts []int32
	posActive   []int32

	// Per-right list of assigned lefts, with back-pointers for O(1) removal.
	rightLefts [][]int32
	posInRight []int32

	// BFS scratch: visit stamps compare against epoch, making the
	// per-search reset O(1) instead of O(slots + boxes).
	epoch      uint32
	visitL     []uint32
	visitR     []uint32
	parentLeft []int32 // for right r, the left that discovered it
	queue      []int32
	reachedR   []int32 // rights first visited in the current search
	todo       []int32 // AugmentAll worklist scratch

	// Lefts that may need (re-)augmentation: newly added or unassigned
	// since the last AugmentAll. Keeping them explicit makes AugmentAll
	// output-sensitive — it never scans the live set to find them.
	dirty   []int32
	inDirty []bool

	// stableTo[l] caches a right confirmed stable for l (StableEdge), or
	// noStable. Stability depends only on the left's identity and the
	// right, so the cache lives until the left ID is recycled by AddLeft.
	stableTo []int32

	// Assignment log for event-driven callers: when enabled, every left
	// that receives an assignment (including intermediate moves along
	// augmenting paths) is appended here, so the caller can re-derive its
	// invalidation certificate without sweeping the active set. Entries
	// may repeat and may refer to lefts unassigned again later.
	logAssigns bool
	assignLog  []int32

	matchedCount int
}

// markDirty queues l for the next augmentation pass.
func (m *Matcher) markDirty(l int) {
	if !m.inDirty[l] {
		m.inDirty[l] = true
		m.dirty = append(m.dirty, int32(l))
	}
}

// NewMatcher creates a matcher over numRight boxes with the given slot
// capacities (len(caps) == numRight).
func NewMatcher(caps []int64) *Matcher {
	m := &Matcher{
		caps:       append([]int64(nil), caps...),
		load:       make([]int64, len(caps)),
		rightLefts: make([][]int32, len(caps)),
		visitR:     make([]uint32, len(caps)),
		parentLeft: make([]int32, len(caps)),
	}
	return m
}

// NumRight returns the number of right nodes.
func (m *Matcher) NumRight() int { return len(m.caps) }

// Capacity returns the capacity of right node r.
func (m *Matcher) Capacity(r int) int64 { return m.caps[r] }

// Load returns the current load of right node r.
func (m *Matcher) Load(r int) int64 { return m.load[r] }

// MatchedCount returns the number of currently matched left nodes.
func (m *Matcher) MatchedCount() int { return m.matchedCount }

// NumActive returns the number of active left nodes.
func (m *Matcher) NumActive() int { return len(m.activeLefts) }

// SetCapacity adjusts the capacity of right node r. Lowering below the
// current load unassigns arbitrary assigned lefts until feasible; the
// victims are returned so the caller can retry them.
func (m *Matcher) SetCapacity(r int, c int64) []int {
	if c < 0 {
		panic("bipartite: negative capacity")
	}
	m.caps[r] = c
	var victims []int
	for m.load[r] > c {
		lefts := m.rightLefts[r]
		victim := lefts[len(lefts)-1]
		m.unassign(int(victim))
		victims = append(victims, int(victim))
	}
	return victims
}

// EnsureLeft grows internal storage so left IDs up to n-1 are addressable.
func (m *Matcher) EnsureLeft(n int) {
	for len(m.assigned) < n {
		m.assigned = append(m.assigned, Unassigned)
		m.active = append(m.active, false)
		m.posInRight = append(m.posInRight, -1)
		m.posActive = append(m.posActive, -1)
		m.visitL = append(m.visitL, 0)
		m.inDirty = append(m.inDirty, false)
		m.stableTo = append(m.stableTo, noStable)
	}
}

// AddLeft activates a left node (a new stripe request). The ID must be
// dense-ish; the simulator recycles IDs through a free list.
func (m *Matcher) AddLeft(l int) {
	m.EnsureLeft(l + 1)
	if m.active[l] {
		panic(fmt.Sprintf("bipartite: AddLeft(%d) already active", l))
	}
	m.active[l] = true
	m.assigned[l] = Unassigned
	m.stableTo[l] = noStable // recycled ID: stability cache is stale
	m.posActive[l] = int32(len(m.activeLefts))
	m.activeLefts = append(m.activeLefts, int32(l))
	m.markDirty(l)
}

// RemoveLeft deactivates a left node, releasing its server slot.
func (m *Matcher) RemoveLeft(l int) {
	if !m.active[l] {
		panic(fmt.Sprintf("bipartite: RemoveLeft(%d) not active", l))
	}
	if m.assigned[l] != Unassigned {
		m.unassign(l)
	}
	m.active[l] = false
	pos := m.posActive[l]
	last := m.activeLefts[len(m.activeLefts)-1]
	m.activeLefts[pos] = last
	m.posActive[last] = pos
	m.activeLefts = m.activeLefts[:len(m.activeLefts)-1]
	m.posActive[l] = -1
}

// Active reports whether left l is active.
func (m *Matcher) Active(l int) bool { return l < len(m.active) && m.active[l] }

// Server returns the right node assigned to left l, or Unassigned.
func (m *Matcher) Server(l int) int {
	if l >= len(m.assigned) {
		return Unassigned
	}
	return int(m.assigned[l])
}

func (m *Matcher) assign(l, r int) {
	if m.assigned[l] != Unassigned {
		m.unassign(l)
	}
	m.assigned[l] = int32(r)
	m.posInRight[l] = int32(len(m.rightLefts[r]))
	m.rightLefts[r] = append(m.rightLefts[r], int32(l))
	m.load[r]++
	m.matchedCount++
	if m.logAssigns {
		m.assignLog = append(m.assignLog, int32(l))
	}
}

func (m *Matcher) unassign(l int) {
	r := m.assigned[l]
	lefts := m.rightLefts[r]
	pos := m.posInRight[l]
	last := lefts[len(lefts)-1]
	lefts[pos] = last
	m.posInRight[last] = pos
	m.rightLefts[r] = lefts[:len(lefts)-1]
	m.load[r]--
	m.assigned[l] = Unassigned
	m.posInRight[l] = -1
	m.matchedCount--
	m.markDirty(l)
}

// move reassigns l from its current server to r without touching other
// bookkeeping invariants.
func (m *Matcher) move(l, r int) {
	m.unassign(l)
	m.assign(l, r)
}

// revalidateOne re-checks left l's assignment and unassigns it when the
// edge has disappeared, returning true if the assignment was dropped.
// Shared by the full Revalidate sweep and targeted Invalidate calls so
// both paths apply identical stable-edge and dead-probe shortcuts.
func (m *Matcher) revalidateOne(adj Adjacency, hinter Hinted, l int) bool {
	r := m.assigned[l]
	if r == Unassigned {
		return false
	}
	if m.stableTo[l] == r {
		return false
	}
	if hinter != nil {
		if hinter.StableEdge(l, int(r)) {
			m.stableTo[l] = r
			return false
		}
		if hinter.ServerCountHint(l) == 0 {
			m.unassign(l)
			return true
		}
	}
	if !adj.CanServe(l, int(r)) {
		m.unassign(l)
		return true
	}
	return false
}

// Revalidate drops every assignment whose edge has disappeared (server no
// longer possesses the chunk, e.g. a playback cache rolled past the
// window). Returns the number of dropped assignments.
func (m *Matcher) Revalidate(adj Adjacency) int {
	hinter, _ := adj.(Hinted)
	dropped := 0
	for _, l32 := range m.activeLefts {
		if m.revalidateOne(adj, hinter, int(l32)) {
			dropped++
		}
	}
	return dropped
}

// InvalidateBatch is the targeted, event-driven counterpart of the
// Revalidate sweep: callers that know which serving relations changed
// (cache freeze or expiry notifications) invalidate exactly the touched
// lefts, making per-round repair cost proportional to the change volume
// instead of the active set. Candidates are re-checked in active-list
// order — the relative order the sweep uses — so as long as the set
// covers every assignment whose edge actually disappeared, the drops
// (and therefore the dirty-queue order, the per-right list layouts, and
// every subsequent augmentation choice) are bit-for-bit identical to a
// full sweep: targeted repair is indistinguishable from Revalidate, just
// output-sensitive. The slice is sorted in place; duplicates and
// inactive lefts are skipped. Returns the number of drops (each dropped
// left is re-queued for augmentation).
func (m *Matcher) InvalidateBatch(adj Adjacency, lefts []int32) int {
	hinter, _ := adj.(Hinted)
	sort.Slice(lefts, func(i, j int) bool {
		pi, pj := m.posActive[lefts[i]], m.posActive[lefts[j]]
		if pi != pj {
			return pi < pj
		}
		return lefts[i] < lefts[j]
	})
	dropped := 0
	prev := int32(-1)
	for _, l := range lefts {
		if l == prev {
			continue
		}
		prev = l
		if !m.active[l] {
			continue
		}
		if m.revalidateOne(adj, hinter, int(l)) {
			dropped++
		}
	}
	return dropped
}

// AssignedLefts returns the lefts currently assigned to right r. The
// slice is the matcher's internal list: it is invalidated by any assign
// or unassign touching r (unassigning lefts[i] swap-removes it, moving
// the former last element into position i), and must not be modified.
func (m *Matcher) AssignedLefts(r int) []int32 { return m.rightLefts[r] }

// LogAssignments enables (or disables) the assignment log drained by
// DrainAssigned. While enabled, every assign — including intermediate
// moves along augmenting paths — records its left.
func (m *Matcher) LogAssignments(on bool) {
	m.logAssigns = on
	if !on {
		m.assignLog = m.assignLog[:0]
	}
}

// DrainAssigned appends the lefts assigned since the last drain to dst
// and clears the log. Entries may repeat, and a logged left may have been
// unassigned again afterwards — callers must re-check Server.
func (m *Matcher) DrainAssigned(dst []int32) []int32 {
	dst = append(dst, m.assignLog...)
	m.assignLog = m.assignLog[:0]
	return dst
}

// AugmentAll drives the matching to maximum: it repeatedly attempts an
// alternating augmenting path from every unmatched active left until a
// full pass makes no progress (at which point no augmenting path exists
// from the implicit super-source, so the matching is maximum). It returns
// the remaining unmatched lefts in ascending order; a non-empty result
// certifies a Lemma 1 obstruction, extractable via HallViolator.
func (m *Matcher) AugmentAll(adj Adjacency) []int {
	hinter, hinted := adj.(Hinted)
	todo := m.todo[:0]
	for _, l := range m.dirty {
		m.inDirty[l] = false
		if m.active[l] && m.assigned[l] == Unassigned {
			todo = append(todo, l)
		}
	}
	m.dirty = m.dirty[:0]
	for len(todo) > 0 {
		progressed := false
		rest := todo[:0] // safe: writes trail reads
		for _, l := range todo {
			if hinted && hinter.ServerCountHint(int(l)) == 0 {
				rest = append(rest, l)
				continue
			}
			if m.augment(adj, int(l)) {
				progressed = true
			} else {
				rest = append(rest, l)
			}
		}
		todo = rest
		if !progressed {
			break
		}
	}
	if len(todo) == 0 {
		m.todo = todo
		return nil
	}
	unmatched := make([]int, len(todo))
	for i, l := range todo {
		unmatched[i] = int(l)
		// Still unmatched: must be retried on the next call.
		m.markDirty(int(l))
	}
	m.todo = todo[:0]
	sort.Ints(unmatched)
	return unmatched
}

// augment searches one alternating BFS tree rooted at unmatched left root
// and applies the augmenting path if a right node with spare capacity is
// found.
func (m *Matcher) augment(adj Adjacency, root int) bool {
	m.beginSearch()
	m.queue = m.queue[:0]
	m.queue = append(m.queue, int32(root))
	m.visitL[root] = m.epoch
	// prevRight[l] is implicit: for non-root lefts it is assigned[l].
	for head := 0; head < len(m.queue); head++ {
		l := m.queue[head]
		found := -1
		adj.VisitServers(int(l), func(r int) bool {
			if m.visitR[r] == m.epoch {
				return true
			}
			m.visitR[r] = m.epoch
			m.parentLeft[r] = l
			if m.load[r] < m.caps[r] {
				found = r
				return false
			}
			for _, l2 := range m.rightLefts[r] {
				if m.visitL[l2] != m.epoch {
					m.visitL[l2] = m.epoch
					m.queue = append(m.queue, l2)
				}
			}
			return true
		})
		if found >= 0 {
			m.applyPath(found)
			return true
		}
	}
	return false
}

// applyPath walks parent pointers back from the free right node, shifting
// assignments along the alternating path.
func (m *Matcher) applyPath(freeRight int) {
	r := freeRight
	for {
		l := int(m.parentLeft[r])
		if m.assigned[l] == Unassigned {
			m.assign(l, r)
			return
		}
		prev := int(m.assigned[l])
		m.move(l, r)
		r = prev
	}
}

// beginSearch starts a fresh BFS scope: bumping the epoch invalidates all
// visit stamps at once. On the (rare) wrap to zero the stamp arrays are
// cleared so stale marks from 2³²−1 searches ago cannot alias.
func (m *Matcher) beginSearch() {
	m.epoch++
	if m.epoch == 0 {
		for i := range m.visitL {
			m.visitL[i] = 0
		}
		for i := range m.visitR {
			m.visitR[i] = 0
		}
		m.epoch = 1
	}
}

// Violator is a Hall-condition violation certificate: a set of requests
// Lefts whose entire server set Rights has insufficient capacity —
// the paper's "obstruction". Slots == Σ caps(Rights) < len(Lefts).
type Violator struct {
	Lefts  []int
	Rights []int
	Slots  int64
}

// HallViolator extracts the obstruction certificate after AugmentAll has
// returned a non-empty unmatched set. It computes alternating reachability
// from all unmatched lefts; the reached lefts X and rights B(X) satisfy
// U_B(X) < |X| (in slots). Returns nil if every active left is matched.
func (m *Matcher) HallViolator(adj Adjacency) *Violator {
	m.beginSearch()
	m.queue = m.queue[:0]
	m.reachedR = m.reachedR[:0]
	for _, l := range m.activeLefts {
		if m.assigned[l] == Unassigned {
			m.visitL[l] = m.epoch
			m.queue = append(m.queue, l)
		}
	}
	if len(m.queue) == 0 {
		return nil
	}
	for head := 0; head < len(m.queue); head++ {
		l := m.queue[head]
		adj.VisitServers(int(l), func(r int) bool {
			if m.visitR[r] == m.epoch {
				return true
			}
			m.visitR[r] = m.epoch
			m.reachedR = append(m.reachedR, int32(r))
			for _, l2 := range m.rightLefts[r] {
				if m.visitL[l2] != m.epoch {
					m.visitL[l2] = m.epoch
					m.queue = append(m.queue, l2)
				}
			}
			return true
		})
	}
	v := &Violator{
		Lefts:  make([]int, len(m.queue)),
		Rights: make([]int, len(m.reachedR)),
	}
	for i, l := range m.queue {
		v.Lefts[i] = int(l)
	}
	sort.Ints(v.Lefts)
	for i, r := range m.reachedR {
		v.Rights[i] = int(r)
		v.Slots += m.caps[r]
	}
	sort.Ints(v.Rights)
	return v
}

// Verify checks internal consistency and edge validity of the current
// matching; it returns an error describing the first violation found.
// Tests and the simulator's paranoid mode call it.
func (m *Matcher) Verify(adj Adjacency) error {
	var matched int
	loads := make([]int64, len(m.caps))
	activeSeen := 0
	for l := range m.assigned {
		if !m.active[l] {
			if m.assigned[l] != Unassigned {
				return fmt.Errorf("inactive left %d has assignment %d", l, m.assigned[l])
			}
			if m.posActive[l] != -1 {
				return fmt.Errorf("inactive left %d still in active list", l)
			}
			continue
		}
		activeSeen++
		pos := m.posActive[l]
		if pos < 0 || int(pos) >= len(m.activeLefts) || m.activeLefts[pos] != int32(l) {
			return fmt.Errorf("active-list back-pointer corrupt for left %d", l)
		}
		r := m.assigned[l]
		if r == Unassigned {
			if !m.inDirty[l] {
				return fmt.Errorf("unmatched left %d not queued for augmentation", l)
			}
			continue
		}
		matched++
		loads[r]++
		if !adj.CanServe(l, int(r)) {
			return fmt.Errorf("assignment %d->%d has no edge", l, r)
		}
		if m.posInRight[l] < 0 || int(m.posInRight[l]) >= len(m.rightLefts[r]) ||
			m.rightLefts[r][m.posInRight[l]] != int32(l) {
			return fmt.Errorf("back-pointer corrupt for left %d", l)
		}
	}
	if activeSeen != len(m.activeLefts) {
		return fmt.Errorf("active list has %d lefts, actual %d", len(m.activeLefts), activeSeen)
	}
	if matched != m.matchedCount {
		return fmt.Errorf("matchedCount=%d, actual=%d", m.matchedCount, matched)
	}
	for r := range m.caps {
		if loads[r] != m.load[r] {
			return fmt.Errorf("right %d load=%d, actual=%d", r, m.load[r], loads[r])
		}
		if loads[r] > m.caps[r] {
			return fmt.Errorf("right %d over capacity: %d > %d", r, loads[r], m.caps[r])
		}
		if int64(len(m.rightLefts[r])) != loads[r] {
			return fmt.Errorf("right %d list length %d != load %d", r, len(m.rightLefts[r]), loads[r])
		}
	}
	return nil
}
