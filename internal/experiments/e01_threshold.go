package experiments

import (
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:   "E1",
		Name: "threshold",
		Claim: "catalog scalability has a sharp threshold at u = 1: constant " +
			"(≤ d·c) below, large above (§1.3 impossibility + Theorem 1)",
		Run: runE1,
	})
}

func runE1(o Options) Result {
	p := homParams{
		n: pick(o, 24, 48),
		d: 2, c: 4,
		T:  pick(o, 16, 24),
		mu: 1.2,
	}
	us := pick(o,
		[]float64{0.6, 0.9, 1.1, 1.5, 2.0},
		[]float64{0.6, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 1.75, 2.0, 2.5})
	rounds := pick(o, 40, 80)
	seeds := pick(o, 1, 3)

	fig := report.NewFigure("E1: max feasible catalog vs upload capacity", "u", "catalog size m")
	measured := fig.AddSeries("measured")
	capSeries := fig.AddSeries("u<1 cap (d·c)")

	tbl := report.New("E1: threshold at u = 1",
		"u", "max m", "k", "m / (d·c)", "m / n")
	dc := float64(p.d * p.c)
	for _, u := range us {
		p.u = u
		m, k, err := maxFeasibleCatalog(o, p, rounds, seeds, nil)
		if err != nil {
			tbl.AddRow(report.Cell(u), "error: "+err.Error(), "", "", "")
			continue
		}
		measured.Add(u, float64(m))
		capSeries.Add(u, dc)
		tbl.AddRowValues(u, m, k, float64(m)/dc, float64(m)/float64(p.n))
	}
	tbl.AddNote("n=%d d=%d c=%d T=%d µ=%.2f rounds=%d seeds=%d; adversary suite: flash/distinct/weakest/avoid/churn/zipf",
		p.n, p.d, p.c, p.T, p.mu, rounds, seeds)
	tbl.AddNote("claim shape: m pinned near the d·c cap for u<1, m ≫ d·c and growing for u>1")
	return Result{ID: "E1", Name: "threshold", Claim: registry["E1"].Claim,
		Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}
