// Protocol: the paper proves connection matchings exist via max-flow
// (Lemma 1) but notes the result "does not yield directly a practical
// distributed algorithm". This example builds one matching round's worth
// of requests, then compares the centralized optimum against two
// decentralized proposal protocols running over a simulated network —
// including the classic stale-load herding pathology.
//
//	go run ./examples/protocol
package main

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/stats"
)

func main() {
	// One round of a busy system: 600 stripe requests over 150 boxes with
	// 5 upload slots each; each request can be served by 3 allocation
	// holders plus a couple of swarm predecessors.
	rng := stats.NewRNG(2009)
	const nRequests, nBoxes, degree = 600, 150, 3
	inst := protocol.Instance{Caps: make([]int64, nBoxes)}
	for b := range inst.Caps {
		inst.Caps[b] = 5
	}
	for r := 0; r < nRequests; r++ {
		cand := make([]int32, 0, degree+2)
		for _, b := range rng.SampleWithoutReplacement(nBoxes, degree) {
			cand = append(cand, int32(b))
		}
		for e := 0; e < 2; e++ {
			cand = append(cand, int32(rng.Intn(nBoxes)))
		}
		inst.Candidates = append(inst.Candidates, cand)
	}

	// Centralized optimum (what Lemma 1 guarantees exists).
	m := bipartite.NewMatcher(inst.Caps)
	for r := range inst.Candidates {
		m.AddLeft(r)
	}
	m.AugmentAll(adj{inst})
	optimal := m.MatchedCount()
	fmt.Printf("centralized max-flow optimum: %d / %d requests served\n\n", optimal, nRequests)

	cfg := netsim.Config{BaseLatency: 1, Jitter: 0.4, Seed: 7}
	show := func(name string, res protocol.Result) {
		gap := 100 * float64(optimal-res.Matched) / float64(optimal)
		fmt.Printf("%-28s served %4d (gap %5.2f%%)  %5d msgs  converged at t=%.1f\n",
			name, res.Matched, gap, res.Messages, res.Time)
	}
	show("blind proposals:", protocol.Run(inst, cfg))
	show("herd (stale best-first):", protocol.RunInformed(inst, cfg, protocol.VariantHerd))
	show("randomized informed:", protocol.RunInformed(inst, cfg, protocol.VariantRandomInformed))

	fmt.Println("\nevery variant produces a valid maximal matching (≥ half optimal by")
	fmt.Println("theory); the measured gaps show a handful of messages per request")
	fmt.Println("buys a near-optimal decentralized matching.")
}

// adj adapts a protocol.Instance to the bipartite matcher.
type adj struct{ inst protocol.Instance }

func (a adj) VisitServers(l int, fn func(int) bool) {
	for _, s := range a.inst.Candidates[l] {
		if !fn(int(s)) {
			return
		}
	}
}

func (a adj) CanServe(l, r int) bool {
	for _, s := range a.inst.Candidates[l] {
		if int(s) == r {
			return true
		}
	}
	return false
}
