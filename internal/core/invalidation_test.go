package core

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestEventInvalidationMatchesSweepRandomized steps an event-driven
// system and a SweepRevalidation reference in lockstep under a random
// FailStall workload aggressive enough to mix fully matched rounds,
// stall episodes, cache expiry, and frozen-entry decay, comparing the
// complete observable state every round: step results, busy sets,
// request progress, and the actual matching. Both systems use the
// indexed store, so any divergence is the invalidation path's fault.
func TestEventInvalidationMatchesSweepRandomized(t *testing.T) {
	mk := func(sweep bool) *System {
		return buildHomogeneous(t, 41, 18, 1, 4, 9, 2, 0.8, 2.0, func(cfg *Config) {
			cfg.Failure = FailStall
			cfg.SweepRevalidation = sweep
			cfg.TraceRounds = true
		})
	}
	event, sweep := mk(false), mk(true)
	genE := &uniformGen{rng: stats.NewRNG(977), p: 0.8}
	genS := &uniformGen{rng: stats.NewRNG(977), p: 0.8}
	for r := 1; r <= 160; r++ {
		resE, errE := event.Step(genE)
		resS, errS := sweep.Step(genS)
		if errE != nil || errS != nil {
			t.Fatalf("round %d: errors event=%v sweep=%v", r, errE, errS)
		}
		if !reflect.DeepEqual(resE, resS) {
			t.Fatalf("round %d step results diverge:\nevent: %+v\nsweep: %+v", r, resE, resS)
		}
		for b := 0; b < event.n; b++ {
			if event.boxes[b].busy != sweep.boxes[b].busy {
				t.Fatalf("round %d: busy[%d] diverges", r, b)
			}
		}
		for _, slot := range event.activeList {
			if event.reqProgress[slot] != sweep.reqProgress[slot] {
				t.Fatalf("round %d: progress of slot %d diverges: %d vs %d",
					r, slot, event.reqProgress[slot], sweep.reqProgress[slot])
			}
			if se, ss := event.matcher.Server(int(slot)), sweep.matcher.Server(int(slot)); se != ss {
				t.Fatalf("round %d: slot %d assigned %d (event) vs %d (sweep)", r, slot, se, ss)
			}
		}
	}
	repE, repS := event.Report(), sweep.Report()
	if !reflect.DeepEqual(repE, repS) {
		t.Fatalf("reports diverge:\nevent: %+v\nsweep: %+v", repE, repS)
	}
	if repE.Stalls == 0 {
		t.Fatal("workload produced no stalls: sweep-fallback transitions untested")
	}
}
