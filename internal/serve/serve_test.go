package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	vod "repro"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := vod.New(vod.Spec{Boxes: 30, Upload: 2.0, Resilient: true, Shards: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sys, false)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestDemandStepMetrics(t *testing.T) {
	_, ts := newTestServer(t)

	code, out := postJSON(t, ts.URL+"/demand", map[string]int{"box": 3, "video": 0})
	if code != http.StatusOK {
		t.Fatalf("demand: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/demand", map[string]any{
		"demands": []map[string]int{{"box": 5, "video": 1}, {"box": 6, "video": 1}},
	})
	if code != http.StatusOK || out["pending"].(float64) != 3 {
		t.Fatalf("batch demand: %d %v", code, out)
	}

	code, out = postJSON(t, ts.URL+"/step", map[string]int{"rounds": 5})
	if code != http.StatusOK {
		t.Fatalf("step: %d %v", code, out)
	}
	if out["round"].(float64) != 5 {
		t.Fatalf("round after step: %v", out["round"])
	}

	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Round != 5 || m.Demands != 3 || m.Admitted != 3 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.MatcherMode != "sharded-2" {
		t.Fatalf("matcher mode: %q", m.MatcherMode)
	}
	if m.SteppedRounds != 5 || m.RoundsPerSec <= 0 {
		t.Fatalf("step accounting: %+v", m)
	}
	if m.LiveRequests == 0 {
		t.Fatalf("three admitted viewers should hold live requests: %+v", m)
	}
}

// TestStageTimingMetrics pins the /metrics stage-timing fields: after a
// sharded step both halves of the round split are observable (parallel
// dispatches and the serial merge tail) along with their EWMAs.
func TestStageTimingMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	if code, out := postJSON(t, ts.URL+"/step", map[string]int{"rounds": 3}); code != http.StatusOK {
		t.Fatalf("step: %d %v", code, out)
	}
	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.StageParallelNS <= 0 || m.StageSerialNS <= 0 {
		t.Fatalf("sharded stage split not observed: %+v", m)
	}
	if m.StageParallelEWMANS <= 0 || m.StageSerialEWMANS <= 0 {
		t.Fatalf("stage EWMAs not observed: %+v", m)
	}

	// The serial engine reports zeros — the fields mean "sharded split".
	serialSys, err := vod.New(vod.Spec{Boxes: 30, Upload: 2.0, Resilient: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	serialSrv := httptest.NewServer(New(serialSys, false).Handler())
	defer serialSrv.Close()
	if code, out := postJSON(t, serialSrv.URL+"/step", map[string]int{"rounds": 3}); code != http.StatusOK {
		t.Fatalf("serial step: %d %v", code, out)
	}
	var ms Metrics
	getJSON(t, serialSrv.URL+"/metrics", &ms)
	if ms.StageParallelNS != 0 || ms.StageSerialNS != 0 {
		t.Fatalf("serial engine reported a stage split: %+v", ms)
	}
}

// TestServerCloseReleasesWorkers pins the daemon half of the pool
// lifecycle: serving traffic spawns no per-round goroutines, and closing
// the server after handler shutdown returns the process to its goroutine
// baseline (vodserve calls exactly this sequence on SIGTERM).
func TestServerCloseReleasesWorkers(t *testing.T) {
	// Warm: a full build+serve+close cycle creates the runtime's lazy
	// helper goroutines so the measured baseline is stable.
	{
		srv, ts := newTestServer(t)
		postJSON(t, ts.URL+"/step", map[string]int{"rounds": 1})
		ts.Close()
		srv.Close()
	}
	waitGoroutines(t, runtime.NumGoroutine())

	base := runtime.NumGoroutine()
	srv, ts := newTestServer(t)
	for i := 0; i < 10; i++ {
		postJSON(t, ts.URL+"/demand", map[string]int{"box": i, "video": 0})
		postJSON(t, ts.URL+"/step", nil)
	}
	ts.Close() // handler shutdown first, then the engine
	srv.Close()
	waitGoroutines(t, base)

	// A step through a closed server surfaces the engine error.
	if _, err := srv.StepRounds(1); err == nil {
		t.Fatal("StepRounds after Close should error")
	}
}

// waitGoroutines polls until the goroutine count returns to base —
// httptest connections and pool workers park asynchronously.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still live (baseline %d)", runtime.NumGoroutine(), base)
		}
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDemandValidation(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := postJSON(t, ts.URL+"/demand", map[string]int{"box": -1, "video": 0}); code != http.StatusBadRequest {
		t.Fatalf("negative box accepted: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/demand", map[string]int{"box": 0, "video": 9999}); code != http.StatusBadRequest {
		t.Fatalf("out-of-catalog video accepted: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/step", map[string]int{"rounds": -3}); code == http.StatusOK {
		t.Fatal("negative rounds accepted")
	}
}

func TestCapacityEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	if code, out := postJSON(t, ts.URL+"/capacity", map[string]int{"box": 2, "slots": 1}); code != http.StatusOK {
		t.Fatalf("capacity: %d %v", code, out)
	}
	if got := srv.sys.View().UploadSlots(2); got != 1 {
		t.Fatalf("capacity not applied: %d", got)
	}
	if code, _ := postJSON(t, ts.URL+"/capacity", map[string]int{"box": 999, "slots": 1}); code != http.StatusBadRequest {
		t.Fatal("bad box accepted")
	}
}

// TestCheckpointRestartContinuity is the HTTP-level version of the CI
// smoke test: drive demands, checkpoint over HTTP, bring up a second
// daemon from the file, and verify the round clock and counters carried
// over — then verify both daemons continue bit-identically under the
// same demand stream.
func TestCheckpointRestartContinuity(t *testing.T) {
	_, ts := newTestServer(t)

	for i := 0; i < 20; i++ {
		code, out := postJSON(t, ts.URL+"/demand", map[string]int{"box": i, "video": i % 3})
		if code != http.StatusOK {
			t.Fatalf("demand %d: %v", i, out)
		}
		if code, out = postJSON(t, ts.URL+"/step", nil); code != http.StatusOK {
			t.Fatalf("step %d: %v", i, out)
		}
	}
	path := filepath.Join(t.TempDir(), "state.ckpt")
	code, out := postJSON(t, ts.URL+"/checkpoint", map[string]string{"path": path})
	if code != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", code, out)
	}
	if out["round"].(float64) != 20 {
		t.Fatalf("checkpoint round: %v", out)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	restoredSys, err := vod.LoadCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(restoredSys, true).Handler())
	defer ts2.Close()

	var m1, m2 Metrics
	getJSON(t, ts.URL+"/metrics", &m1)
	getJSON(t, ts2.URL+"/metrics", &m2)
	if m2.Round != m1.Round {
		t.Fatalf("round clock did not carry over: %d vs %d", m2.Round, m1.Round)
	}
	if !m2.Restored {
		t.Fatal("restored flag not set")
	}
	if m2.Demands != m1.Demands || m2.Admitted != m1.Admitted || m2.Completed != m1.Completed {
		t.Fatalf("counters did not carry over: %+v vs %+v", m2, m1)
	}

	// Identical demand streams into both daemons must produce identical
	// rounds from here on.
	for i := 0; i < 15; i++ {
		d := map[string]int{"box": (i * 3) % 30, "video": i % 2}
		for _, u := range []string{ts.URL, ts2.URL} {
			if code, out := postJSON(t, u+"/demand", d); code != http.StatusOK {
				t.Fatalf("demand: %v", out)
			}
		}
		_, o1 := postJSON(t, ts.URL+"/step", nil)
		_, o2 := postJSON(t, ts2.URL+"/step", nil)
		if fmt.Sprint(o1) != fmt.Sprint(o2) {
			t.Fatalf("round %d diverged after restore:\n%v\n%v", i, o1, o2)
		}
	}
}

func TestStateEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var st struct {
		Spec  vod.Spec   `json:"spec"`
		Round int        `json:"round"`
		Rep   vod.Report `json:"report"`
	}
	getJSON(t, ts.URL+"/state", &st)
	if st.Spec.Boxes != 30 || st.Round != 0 {
		t.Fatalf("state: %+v", st)
	}
}
