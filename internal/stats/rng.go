// Package stats provides the deterministic random-number generation,
// sampling, and summary-statistics substrate used throughout the
// reproduction. All randomness in the repository flows through RNG so that
// every simulation, allocation, and experiment is exactly reproducible from
// a single uint64 seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is intentionally not cryptographic: experiments need
// speed and replayability, not unpredictability.
//
// The zero value is a valid generator seeded with 0; prefer NewRNG so the
// seed is explicit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator with the given seed. Two generators with the
// same seed produce identical streams forever.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	// Lemire-style rejection sampling to remove modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes the slice in place (Fisher–Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the pair's second value is discarded for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's product method; for large means a normal approximation with
// continuity correction, which is ample for workload generation.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := mean + math.Sqrt(mean)*r.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Split returns a new generator deterministically derived from this one.
// Splitting lets concurrent workers own independent streams while the
// parent stream stays reproducible.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

// SampleWithoutReplacement returns count distinct integers from [0, n),
// uniformly at random, in selection order. It panics if count > n.
func (r *RNG) SampleWithoutReplacement(n, count int) []int {
	if count > n {
		panic("stats: sample larger than population")
	}
	if count*4 >= n {
		// Dense: partial Fisher–Yates.
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		for i := 0; i < count; i++ {
			j := i + r.Intn(n-i)
			p[i], p[j] = p[j], p[i]
		}
		return p[:count]
	}
	// Sparse: rejection via set.
	seen := make(map[int]struct{}, count)
	out := make([]int, 0, count)
	for len(out) < count {
		v := r.Intn(n)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero.
// It panics if all weights are zero or the slice is empty.
func (r *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: WeightedChoice with no positive weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slack: return last positive index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("unreachable")
}
