package protocol

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestInformedTrivialMatch(t *testing.T) {
	inst := Instance{
		Candidates: [][]int32{{0}, {0, 1}},
		Caps:       []int64{1, 1},
	}
	res := RunInformed(inst, cfg(1), VariantRandomInformed)
	if err := res.Verify(inst); err != nil {
		t.Fatal(err)
	}
	if res.Matched != 2 {
		t.Fatalf("matched %d, want 2", res.Matched)
	}
}

func TestInformedPrefersFreeServer(t *testing.T) {
	// Two requests, both preferring the roomy server: the informed variant
	// should split them across servers without any rejection (the blind
	// variant would send both to candidate order position 0).
	inst := Instance{
		Candidates: [][]int32{{0, 1}, {0, 1}},
		Caps:       []int64{1, 5},
	}
	res := RunInformed(inst, cfg(2), VariantHerd)
	if err := res.Verify(inst); err != nil {
		t.Fatal(err)
	}
	if res.Matched != 2 {
		t.Fatalf("matched %d, want 2", res.Matched)
	}
	// Both proposals should have targeted server 1 first (5 free slots),
	// so server 0 holds at most one request.
	count0 := 0
	for _, a := range res.Assignments {
		if a == 0 {
			count0++
		}
	}
	if count0 > 1 {
		t.Fatalf("informed variant overloaded the tight server: %v", res.Assignments)
	}
}

func TestInformedEmptyCandidates(t *testing.T) {
	inst := Instance{Candidates: [][]int32{{}}, Caps: []int64{1}}
	res := RunInformed(inst, cfg(3), VariantRandomInformed)
	if res.Matched != 0 || res.Unserved != 1 {
		t.Fatalf("empty-candidate request should be unserved: %+v", res)
	}
}

func TestInformedDeterministic(t *testing.T) {
	inst := Instance{
		Candidates: [][]int32{{0, 1}, {1, 0}, {0, 1}},
		Caps:       []int64{1, 2},
	}
	a := RunInformed(inst, cfg(6), VariantRandomInformed)
	b := RunInformed(inst, cfg(6), VariantRandomInformed)
	if a.Matched != b.Matched || a.Messages != b.Messages {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestInformedCostsMoreMessages(t *testing.T) {
	inst := Instance{
		Candidates: [][]int32{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}},
		Caps:       []int64{1, 1, 1},
	}
	blind := Run(inst, cfg(7))
	informed := RunInformed(inst, cfg(7), VariantRandomInformed)
	if informed.Messages <= blind.Messages {
		t.Fatalf("informed (%d msgs) should cost more than blind (%d)",
			informed.Messages, blind.Messages)
	}
	if 2*informed.Matched < blind.Matched {
		t.Fatalf("informed matched %d catastrophically below blind %d", informed.Matched, blind.Matched)
	}
}

func TestInformedDuplicateCandidates(t *testing.T) {
	// Duplicate candidate entries must not stall the poll phase (a map
	// collapses them, so the reply count must be taken over distinct
	// servers). Regression test for a real bug.
	// A single request whose candidate list repeats one server: if the
	// poll phase counted raw candidates it would wait for 3 replies from
	// 1 server and stall forever.
	inst := Instance{
		Candidates: [][]int32{{0, 0, 0}},
		Caps:       []int64{1},
	}
	for _, v := range []Variant{VariantHerd, VariantRandomInformed} {
		res := RunInformed(inst, cfg(8), v)
		if err := res.Verify(inst); err != nil {
			t.Fatal(err)
		}
		if res.Matched != 1 {
			t.Fatalf("variant %v: matched %d, want 1 (duplicates stalled the poll?)", v, res.Matched)
		}
	}
}

// variantFor alternates variants across property-test seeds.
func variantFor(seed uint64) Variant {
	if seed%2 == 0 {
		return VariantHerd
	}
	return VariantRandomInformed
}

// Property: the informed variant is always valid and maximal.
func TestQuickInformedValidMaximal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		inst := randomInstance(rng)
		res := RunInformed(inst, cfg(seed), variantFor(seed))
		return res.Verify(inst) == nil && res.Maximality(inst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: informed never matches fewer than half the optimum either.
func TestQuickInformedHalfOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		inst := randomInstance(rng)
		res := RunInformed(inst, cfg(seed), variantFor(seed))
		m := NewExactCount(inst)
		return 2*res.Matched >= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// NewExactCount computes the optimal matching size for tests.
func NewExactCount(inst Instance) int {
	m := newExactMatcher(inst)
	return m
}
