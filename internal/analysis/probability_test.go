package analysis

import (
	"math"
	"testing"
)

func TestLogBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 0},
		{5, 5, 0},
		{5, 2, math.Log(10)},
		{10, 3, math.Log(120)},
	}
	for _, tc := range cases {
		if got := logBinomial(tc.n, tc.k); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("logBinomial(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
	if !math.IsInf(logBinomial(3, 5), -1) || !math.IsInf(logBinomial(3, -1), -1) {
		t.Error("invalid binomial should be -Inf")
	}
}

func TestLemma3LogBound(t *testing.T) {
	// (p/n)^{k·i1} with p=2, n=10, k=3, i1=2 → (0.2)^6.
	got := Lemma3LogBound(2, 10, 3, 2)
	want := 6 * math.Log(0.2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Lemma3 = %v, want %v", got, want)
	}
	if Lemma3LogBound(10, 10, 3, 2) != 0 {
		t.Error("p >= n should bound by 1 (log 0)")
	}
	if !math.IsInf(Lemma3LogBound(0, 10, 3, 2), -1) {
		t.Error("p=0 should be impossible")
	}
}

func TestLemma4ZeroRegime(t *testing.T) {
	p := params(100, 1.5, 4, 1.2)
	c := 8
	k := 10
	// Very few distinct stripes relative to i: Lemma 2 regime, P = 0.
	if got := Lemma4LogP(p, c, k, 1000, 1); !math.IsInf(got, -1) {
		t.Errorf("concentrated multiset should be impossible, got logP=%v", got)
	}
	// Many distinct stripes: positive probability (finite log).
	got := Lemma4LogP(p, c, k, 100, 90)
	if math.IsInf(got, -1) || got > 0 {
		t.Errorf("spread multiset logP = %v, want finite ≤ 0", got)
	}
}

func TestLemma4DecreasesInK(t *testing.T) {
	p := params(100, 1.5, 4, 1.2)
	prev := 1.0
	for _, k := range []int{2, 5, 10, 20} {
		lp := Lemma4LogP(p, 8, k, 50, 45)
		if lp >= prev && prev != 1.0 {
			t.Errorf("Lemma4 bound should shrink with k: %v then %v", prev, lp)
		}
		prev = lp
	}
}

func TestUnionBoundCoarseMonotoneInK(t *testing.T) {
	p := params(200, 1.5, 4, 1.2)
	c, err := RecommendedC(p.U, p.Mu)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, k := range []int{1, 5, 20, 80, 320} {
		b := UnionBoundCoarse(p, c, k)
		if b < 0 || b > 1 {
			t.Fatalf("bound %v outside [0,1]", b)
		}
		if b > prev+1e-12 {
			t.Errorf("bound increased with k: %v then %v at k=%d", prev, b, k)
		}
		prev = b
	}
}

func TestUnionBoundCoarseVanishes(t *testing.T) {
	// For large enough k the bound must drop below 1 and keep falling
	// toward 0 — that is Theorem 1's engine.
	p := params(500, 2.0, 4, 1.1)
	c, _ := RecommendedC(p.U, p.Mu)
	k, ok := KForTargetProbability(p, c, 0.01, 100000)
	if !ok {
		t.Fatal("no k achieves bound 0.01")
	}
	if b := UnionBoundCoarse(p, c, k); b > 0.01 {
		t.Errorf("bound at returned k = %v > target", b)
	}
	if k > 1 {
		if b := UnionBoundCoarse(p, c, k-1); b <= 0.01 {
			t.Errorf("k not minimal: bound at k-1 = %v", b)
		}
	}
}

func TestUnionBoundBelowThresholdIsVacuous(t *testing.T) {
	p := params(200, 1.01, 4, 1.5) // ν < 0 at this c
	if b := UnionBoundCoarse(p, 4, 100); b != 1 {
		t.Errorf("bound below threshold should clamp to 1, got %v", b)
	}
}

func TestUnionBoundExactSmall(t *testing.T) {
	p := params(50, 2.0, 4, 1.1)
	c, _ := RecommendedC(p.U, p.Mu)
	m := 20
	// Exact bound is within [0,1] and decreasing in k.
	prev := 2.0
	for _, k := range []int{1, 4, 16, 64} {
		b := UnionBoundExact(p, m, c, k)
		if b < 0 || b > 1 {
			t.Fatalf("exact bound %v outside [0,1]", b)
		}
		if b > prev+1e-12 {
			t.Errorf("exact bound increased with k: %v -> %v", prev, b)
		}
		prev = b
	}
}

func TestExactAtMostCoarsePlusSlack(t *testing.T) {
	// The coarse bound over-counts multisets; the exact sum should not
	// exceed it by more than floating slack whenever both are meaningful.
	p := params(60, 2.0, 3, 1.1)
	c, _ := RecommendedC(p.U, p.Mu)
	for _, k := range []int{8, 16, 32} {
		exact := UnionBoundExact(p, 30, c, k)
		coarse := UnionBoundCoarse(p, c, k)
		if exact > coarse*10+1e-9 && coarse < 1 {
			t.Errorf("k=%d: exact %v unexpectedly above coarse %v", k, exact, coarse)
		}
	}
}

func TestKForTargetProbabilityGivesUp(t *testing.T) {
	p := params(200, 1.01, 4, 1.5) // hopeless at c=4
	if _, ok := KForTargetProbability(p, 4, 0.01, 50); ok {
		t.Error("should give up below threshold")
	}
}

func TestUnionBoundDecreasesInN(t *testing.T) {
	// P(N_k>0) = O(1/n^{κ-2}): growing n must not grow the bound (for
	// fixed c, k above the threshold).
	mu := 1.1
	u := 2.0
	c, _ := RecommendedC(u, mu)
	k := 200
	prev := 2.0
	for _, n := range []int{100, 200, 400, 800} {
		b := UnionBoundCoarse(params(n, u, 4, mu), c, k)
		if b > prev+1e-12 {
			t.Errorf("bound grew with n: %v -> %v at n=%d", prev, b, n)
		}
		prev = b
	}
}
