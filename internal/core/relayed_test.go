package core

import (
	"strings"
	"testing"

	"repro/internal/allocation"
	"repro/internal/stats"
	"repro/internal/video"
)

// buildRelayedSmall assembles a minimal relayed system inside the core
// package so the Section 4 code paths are covered here too (the richer
// integration suite lives in package hetero).
func buildRelayedSmall(t *testing.T, uPoor float64) *System {
	t.Helper()
	const n = 6
	const c, T, k = 25, 30, 2
	uploads := []float64{uPoor, uPoor, 3.0, 3.0, 3.0, 3.0}
	storage := make([]int, n)
	total := 0
	for i := range storage {
		storage[i] = int(uploads[i] * 2 * float64(c))
		total += storage[i]
	}
	m := total / (k * c)
	excess := total - m*k*c
	for b := range storage {
		take := excess
		if take > storage[b]/2 {
			take = storage[b] / 2
		}
		storage[b] -= take
		excess -= take
		if excess == 0 {
			break
		}
	}
	cat := video.MustCatalog(m, c, T)
	alloc, err := allocation.Permutation(stats.NewRNG(11), cat, storage, k)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Alloc:    alloc,
		Uploads:  uploads,
		Mu:       1.05,
		Strategy: StrategyRelayed,
		UStar:    1.5,
		Relays:   []int{2, 3, NoRelay, NoRelay, NoRelay, NoRelay},
		Paranoid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRelayedPoorViewingLifecycle(t *testing.T) {
	sys := buildRelayedSmall(t, 0.5)
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 0, Video: 0}}}}
	rep, err := sys.Run(gen, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("relayed poor viewing failed: %+v", rep.Obstructions)
	}
	if rep.CompletedViewings != 1 {
		t.Fatalf("completed = %d", rep.CompletedViewings)
	}
	if rep.StartupDelay.Mean != 6 {
		t.Errorf("poor relayed delay = %v, want 6", rep.StartupDelay.Mean)
	}
	// c_b = ⌊0.5·25 − 4·1.05⁴⌋ = ⌊7.64⌋ = 7 direct postponed requests.
	if rep.PostponedRequests == 0 {
		t.Error("no direct postponed requests despite c_b > 0")
	}
	if rep.RelayedRequests == 0 {
		t.Error("no relayed requests")
	}
}

func TestRelayedTinyUploadAllViaRelay(t *testing.T) {
	// u_b so small that c_b = 0: every postponed stripe goes via the relay.
	sys := buildRelayedSmall(t, 0.1)
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 0, Video: 0}}}}
	rep, err := sys.Run(gen, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("tiny-upload viewing failed: %+v", rep.Obstructions)
	}
	if rep.PostponedRequests != 0 {
		t.Errorf("c_b should be 0, got %d direct requests", rep.PostponedRequests)
	}
	if rep.RelayedRequests == 0 {
		t.Error("no relayed requests")
	}
}

func TestRelayedRichViewingLifecycle(t *testing.T) {
	sys := buildRelayedSmall(t, 0.5)
	gen := &scripted{byRound: map[int][]Demand{1: {{Box: 2, Video: 0}}}}
	rep, err := sys.Run(gen, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed || rep.CompletedViewings != 1 {
		t.Fatalf("rich relayed-mode viewing wrong: %+v", rep)
	}
	if rep.StartupDelay.Mean != 4 {
		t.Errorf("rich relayed delay = %v, want 4", rep.StartupDelay.Mean)
	}
	if rep.RelayedRequests != 0 {
		t.Errorf("rich box should not relay, got %d", rep.RelayedRequests)
	}
}

func TestStrategyAndPolicyStrings(t *testing.T) {
	cases := map[string]string{
		StrategyPreload.String(): "preload",
		StrategyNaive.String():   "naive",
		StrategyRelayed.String(): "relayed",
		Strategy(42).String():    "strategy(42)",
		FailStop.String():        "stop",
		FailStall.String():       "stall",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := buildHomogeneous(t, 30, 12, 2, 3, 10, 4, 2.0, 1.5, nil)
	if sys.Round() != 0 {
		t.Errorf("fresh Round = %d", sys.Round())
	}
	if sys.NumBoxes() != 12 {
		t.Errorf("NumBoxes = %d", sys.NumBoxes())
	}
	if sys.Catalog().C != 3 {
		t.Errorf("Catalog = %v", sys.Catalog())
	}
	if !strings.Contains(sys.String(), "system{") {
		t.Errorf("String = %q", sys.String())
	}
	v := sys.View()
	if v.Round() != 0 {
		t.Errorf("view Round = %d", v.Round())
	}
	if v.SwarmSize(0) != 0 {
		t.Errorf("fresh SwarmSize = %d", v.SwarmSize(0))
	}
	if sys.TotalSlots() != 12*6 {
		t.Errorf("TotalSlots = %d", sys.TotalSlots())
	}
}

func TestDirectStripeCountClamps(t *testing.T) {
	// ⌊c·u − 4µ⁴⌋ clamped to [0, c−1].
	if got := directStripeCount(0.01, 10, 1.5); got != 0 {
		t.Errorf("tiny u: c_b = %d", got)
	}
	if got := directStripeCount(5.0, 10, 1.0); got != 9 {
		t.Errorf("huge u: c_b = %d, want c−1 = 9", got)
	}
	// Middle: u=0.5, c=25, µ=1.05: ⌊12.5 − 4.86⌋ = 7.
	if got := directStripeCount(0.5, 25, 1.05); got != 7 {
		t.Errorf("c_b = %d, want 7", got)
	}
}

func TestDemandPanicsOnInvalidInput(t *testing.T) {
	for i, d := range []Demand{
		{Box: -1, Video: 0},
		{Box: 99, Video: 0},
		{Box: 0, Video: -1},
		{Box: 0, Video: 9999},
	} {
		sys := buildHomogeneous(t, 31, 12, 2, 3, 10, 4, 2.0, 1.5, nil)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			gen := &scripted{byRound: map[int][]Demand{1: {d}}}
			_, _ = sys.Run(gen, 1)
		}()
	}
}

func TestRunStopsEarlyOnFailure(t *testing.T) {
	const n, d, c, T, k = 10, 1, 4, 12, 1
	sys := buildHomogeneous(t, 8, n, d, c, T, k, 0.5, 2.0, nil)
	rep, err := sys.Run(genAvoidStored{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("expected failure")
	}
	if rep.Rounds >= 1000 {
		t.Errorf("Run did not stop early: %d rounds", rep.Rounds)
	}
}
